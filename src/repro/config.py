"""The sanctioned environment-access layer.

Every ``REPRO_*`` environment knob is read here (or in the two other
allowlisted layers: the CLI and the campaign env-override layer in
:mod:`repro.api.campaign`) and nowhere else — enforced statically by
lint rule RPL006.  Scattered ``os.environ`` reads make behaviour depend
on ambient process state that specs, manifests and checkpoints never
capture; funnelling them through one module keeps the rule simple:
callers receive a *value*, pin it into an explicit field (spec, problem,
campaign), and workers rebuild from the pinned field, never from their
own environment.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional


def env_width_scale() -> float:
    """Global circuit width multiplier (``REPRO_WIDTH_SCALE``).

    Clamped to ``>= 0.1``; malformed values fall back to ``1.0``.
    Resolved eagerly by :func:`repro.circuits.registry.resolve_width` so
    picklable evaluator specs pin the width at creation time.
    """
    raw = os.environ.get("REPRO_WIDTH_SCALE", "1.0")
    try:
        return max(0.1, float(raw))
    except ValueError:
        return 1.0


def env_cache_dir() -> Optional[Path]:
    """Persistent QoR cache directory (``REPRO_CACHE_DIR``), or ``None``."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


def env_fault_plan() -> Optional[str]:
    """Raw fault-injection plan argument (``REPRO_FAULT_PLAN``), or ``None``.

    Returned unparsed; :meth:`repro.engine.faults.FaultPlan.from_argument`
    accepts the same inline-JSON-or-file-path form as ``--fault-plan``.
    """
    raw = os.environ.get("REPRO_FAULT_PLAN", "").strip()
    return raw or None
