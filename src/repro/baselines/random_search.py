"""Random search over synthesis sequences.

The paper stresses that random search is a surprisingly competitive
baseline for logic-synthesis flow tuning ("A Remark on RS as a Valuable
Baseline").  Following the paper, the sampler is a Latin-hypercube-style
stratified categorical design (their implementation uses pymoo's LHS)
rather than fully independent uniform draws, which spreads the tested
operations evenly over every sequence position.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator


class RandomSearch(SequenceOptimiser):
    """Latin-hypercube random search baseline (the paper's RS)."""

    name = "RS"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        use_latin_hypercube: bool = True,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.use_latin_hypercube = use_latin_hypercube

    def optimise(self, evaluator: QoREvaluator, budget: int) -> OptimisationResult:
        """Evaluate ``budget`` sequences drawn from the stratified sampler."""
        if budget < 1:
            raise ValueError("budget must be at least 1")
        if self.use_latin_hypercube:
            samples = self.space.latin_hypercube_sample(budget, self.rng)
        else:
            samples = self.space.sample(budget, self.rng)
        seen = set()
        for row in samples:
            if evaluator.num_evaluations >= budget:
                break
            key = tuple(row.tolist())
            if key in seen:
                # Replace accidental duplicates with fresh uniform draws so
                # the budget is spent on distinct sequences.
                row = self.space.sample(1, self.rng)[0]
                key = tuple(row.tolist())
            seen.add(key)
            self._evaluate(evaluator, row)
        # Top up if deduplication left unused budget.
        while evaluator.num_evaluations < budget:
            row = self.space.sample(1, self.rng)[0]
            if tuple(row.tolist()) in seen:
                continue
            seen.add(tuple(row.tolist()))
            self._evaluate(evaluator, row)
        return self._build_result(evaluator, evaluator.aig.name)
