"""Random search over synthesis sequences.

The paper stresses that random search is a surprisingly competitive
baseline for logic-synthesis flow tuning ("A Remark on RS as a Valuable
Baseline").  Following the paper, the sampler is a Latin-hypercube-style
stratified categorical design (their implementation uses pymoo's LHS)
rather than fully independent uniform draws, which spreads the tested
operations evenly over every sequence position.

Random search is fully batch-capable: every draw is independent, so the
whole budget is proposed through :meth:`RandomSearch.suggest` and scored
in one :meth:`~repro.qor.QoREvaluator.evaluate_many` call — which an
attached :class:`repro.engine.EvaluationEngine` fans out across worker
processes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser


@register_optimiser("rs", display_name="RS")
class RandomSearch(SequenceOptimiser):
    """Latin-hypercube random search baseline (the paper's RS)."""

    name = "RS"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        use_latin_hypercube: bool = True,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.use_latin_hypercube = use_latin_hypercube
        self._seen: Set[Tuple[int, ...]] = set()
        self._primary_drawn = False

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Up to ``n`` fresh (not previously suggested) sequences.

        The first call draws the stratified primary design; later calls
        top up with uniform draws, replacing accidental duplicates so the
        budget is spent on distinct sequences.
        """
        n = max(1, int(n))
        if not self._primary_drawn:
            self._primary_drawn = True
            if self.use_latin_hypercube:
                samples = self.space.latin_hypercube_sample(n, self.rng)
            else:
                samples = self.space.sample(n, self.rng)
            rows: List[np.ndarray] = []
            for row in samples:
                key = tuple(row.tolist())
                if key in self._seen:
                    # Replace accidental duplicates with fresh uniform
                    # draws so the budget is spent on distinct sequences.
                    row = self.space.sample(1, self.rng)[0]
                    key = tuple(row.tolist())
                    if key in self._seen:
                        continue
                self._seen.add(key)
                rows.append(row)
            if rows:
                return np.array(rows, dtype=int)
            # Everything collided; fall through to the top-up sampler.
        rows = []
        # Stop once every sequence in the space has been suggested —
        # rejection sampling can never produce a fresh row after that.
        while len(rows) < n and len(self._seen) < self.space.cardinality:
            row = self.space.sample(1, self.rng)[0]
            key = tuple(row.tolist())
            if key in self._seen:
                continue
            self._seen.add(key)
            rows.append(row)
        if not rows:
            return np.empty((0, self.space.sequence_length), dtype=int)
        return np.array(rows, dtype=int)

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Random search is memoryless — nothing to update."""

    # ------------------------------------------------------------------
    # Drive hooks (an empty suggest() ends the run: space exhausted)
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self._seen = set()
        self._primary_drawn = False

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        # Sorted for a deterministic payload; only membership matters.
        return {"seen": sorted(list(key) for key in self._seen),
                "primary_drawn": self._primary_drawn}

    def _load_state_dict(self, state: dict) -> None:
        self._seen = {tuple(int(op) for op in key) for key in state["seen"]}
        self._primary_drawn = bool(state["primary_drawn"])
