"""Greedy sequence construction baseline.

The paper's greedy algorithm "builds a unique sequence of length K by
appending transformations that provide the largest immediate QoR
improvement": at position ``k`` every operation in the alphabet is tried
as the next element (with the prefix fixed) and the best one is kept.
The construction therefore consumes ``K · n`` evaluations in the worst
case; if the budget is smaller, construction simply stops early and the
best prefix evaluated so far is reported.

The solver implements the batch protocol
(:meth:`~repro.bo.base.SequenceOptimiser.suggest` /
:meth:`~repro.bo.base.SequenceOptimiser.observe`): all candidate
extensions of the current position are proposed as one batch and scored
through :meth:`~repro.qor.QoREvaluator.evaluate_many`, so an attached
:class:`repro.engine.EvaluationEngine` fans the position out across
worker processes.  Ties are broken by candidate order exactly as the
sequential loop did, so the constructed sequence is identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser


@register_optimiser("greedy", display_name="Greedy")
class GreedySearch(SequenceOptimiser):
    """Position-by-position greedy construction (the paper's Greedy)."""

    name = "Greedy"

    def __init__(self, space: Optional[SequenceSpace] = None, seed: int = 0) -> None:
        super().__init__(space=space, seed=seed)
        self._reset_state()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._prefix: List[int] = []
        self._pending_ops: List[int] = []   # untried ops at the current position
        self._suggested_ops: List[int] = []  # ops proposed in the last batch
        self._best_op: Optional[int] = None
        self._best_qor = np.inf

    def _start_position(self) -> None:
        """Shuffle the alphabet for the next position (seed-dependent ties)."""
        operations = list(range(self.space.num_operations))
        self.rng.shuffle(operations)
        self._pending_ops = operations
        self._best_op = None
        self._best_qor = np.inf

    def _finish_position(self) -> bool:
        """Commit the best operation of the finished position."""
        if self._best_op is None:
            return False
        self._prefix.append(self._best_op)
        return True

    @property
    def _done(self) -> bool:
        return len(self._prefix) >= self.space.sequence_length

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Up to ``n`` candidate prefixes extending the current position.

        Greedy evaluates the prefix itself (shorter sequences are legal
        flows), so each row is the prefix plus one trial operation, padded
        with the protocol's ``-1`` sentinels; drivers strip those before
        evaluation (``SequenceOptimiser._evaluate_batch`` does so, and
        ``SequenceSpace.to_names`` rejects them loudly otherwise).
        """
        n = max(1, int(n))
        if self._done:
            return np.empty((0, self.space.sequence_length), dtype=int)
        if not self._pending_ops and self._best_op is None:
            self._start_position()
        chunk = self._pending_ops[:n]
        self._pending_ops = self._pending_ops[n:]
        self._suggested_ops = chunk
        length = self.space.sequence_length
        rows = np.full((len(chunk), length), -1, dtype=int)
        for row, op in zip(rows, chunk):
            candidate = self._prefix + [op]
            row[: len(candidate)] = candidate
        return rows

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Fold scored candidates into the position's running best."""
        for op, record in zip(self._suggested_ops, records):
            # Strict < keeps the sequential loop's first-wins tie-breaking
            # (candidates arrive in the shuffled trial order).
            if record.qor < self._best_qor:
                self._best_qor = record.qor
                self._best_op = op
        self._suggested_ops = []
        if not self._pending_ops:
            # Position exhausted: commit and open the next one.
            if self._finish_position():
                self._best_op = None
                self._best_qor = np.inf

    # ------------------------------------------------------------------
    # Drive hooks.  The driver chunks batches to the remaining budget,
    # which reproduces the sequential loop's accounting exactly:
    # memoisation hits inside a chunk are free, so a position may take
    # several chunks to finish; an empty suggest() (sequence complete)
    # ends the run.
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self._reset_state()

    def run_metadata(self) -> dict:
        return {"constructed_length": len(self._prefix)}

    # ------------------------------------------------------------------
    # Checkpoint protocol.  At a round boundary ``_suggested_ops`` is
    # always empty (observe clears it), so the snapshot is the committed
    # prefix plus the in-flight position's untried ops and running best.
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        return {
            "prefix": list(self._prefix),
            "pending_ops": list(self._pending_ops),
            "best_op": self._best_op,
            # +inf is the fresh-position sentinel; encoded as null so
            # checkpoint files stay strict (RFC 8259) JSON.
            "best_qor": (float(self._best_qor)
                         if np.isfinite(self._best_qor) else None),
        }

    def _load_state_dict(self, state: dict) -> None:
        self._prefix = [int(op) for op in state["prefix"]]
        self._pending_ops = [int(op) for op in state["pending_ops"]]
        self._suggested_ops = []
        best_op = state["best_op"]
        self._best_op = int(best_op) if best_op is not None else None
        best_qor = state["best_qor"]
        self._best_qor = float(best_qor) if best_qor is not None else np.inf
