"""Greedy sequence construction baseline.

The paper's greedy algorithm "builds a unique sequence of length K by
appending transformations that provide the largest immediate QoR
improvement": at position ``k`` every operation in the alphabet is tried
as the next element (with the prefix fixed) and the best one is kept.
The construction therefore consumes ``K · n`` evaluations in the worst
case; if the budget is smaller, construction simply stops early and the
best prefix evaluated so far is reported.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator


class GreedySearch(SequenceOptimiser):
    """Position-by-position greedy construction (the paper's Greedy)."""

    name = "Greedy"

    def __init__(self, space: Optional[SequenceSpace] = None, seed: int = 0) -> None:
        super().__init__(space=space, seed=seed)

    def optimise(self, evaluator: QoREvaluator, budget: int) -> OptimisationResult:
        """Greedily extend the sequence until length K or budget exhaustion."""
        if budget < 1:
            raise ValueError("budget must be at least 1")
        prefix: List[int] = []
        # Candidate order is shuffled per position so that ties between
        # operations are broken differently across seeds.
        for _ in range(self.space.sequence_length):
            if evaluator.num_evaluations >= budget:
                break
            best_op: Optional[int] = None
            best_qor = np.inf
            operations = list(range(self.space.num_operations))
            self.rng.shuffle(operations)
            for op in operations:
                if evaluator.num_evaluations >= budget:
                    break
                candidate = prefix + [op]
                # Pad the candidate to full length by repeating the last
                # chosen operation?  No — the paper's greedy evaluates the
                # prefix itself: shorter sequences are legal flows.
                qor = evaluator.qor(self.space.to_names(candidate))
                if qor < best_qor:
                    best_qor = qor
                    best_op = op
            if best_op is None:
                break
            prefix.append(best_op)
        return self._build_result(evaluator, evaluator.aig.name)
