"""Genetic-algorithm baseline.

Mirrors the evolutionary search the paper benchmarks (their implementation
uses the ``geneticalgorithm2`` package): a fixed-size population of
sequences evolved with tournament selection, uniform crossover,
per-position categorical mutation and elitism.  Fitness is the (negated)
QoR, and the evaluation budget is shared across generations — the run
stops mid-generation when the budget is exhausted, exactly as a
budget-limited study would run the original package.

The GA is a natural batch optimiser: each generation's population (or
offspring pool) is proposed through :meth:`GeneticAlgorithm.suggest` and
scored in one :meth:`~repro.qor.QoREvaluator.evaluate_many` call, which
an attached :class:`repro.engine.EvaluationEngine` evaluates in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser
from repro.serialise import decode_array, encode_array


@dataclass
class GAConfig:
    """Evolution hyperparameters (defaults follow geneticalgorithm2's)."""

    population_size: int = 20
    mutation_probability: float = 0.1
    crossover_probability: float = 0.9
    tournament_size: int = 3
    elite_fraction: float = 0.1


@register_optimiser("ga", display_name="GA")
class GeneticAlgorithm(SequenceOptimiser):
    """Tournament-selection GA over operation sequences (the paper's GA)."""

    name = "GA"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        config: Optional[GAConfig] = None,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.config = config if config is not None else GAConfig()
        self._population: Optional[np.ndarray] = None
        self._fitness: Optional[np.ndarray] = None
        self._population_size = self.config.population_size
        self._generations = 0

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """The next batch to score: initial population, then offspring.

        A full generation is always produced (so the random stream does
        not depend on the remaining budget) and truncated to ``n`` rows —
        matching how a budget-limited run stops mid-generation.
        """
        n = max(1, int(n))
        if self._population is None:
            rows = self.space.sample(self._population_size, self.rng)
        else:
            rows = np.array(
                self._make_offspring(self._population, self._fitness), dtype=int
            )
        return rows[:n]

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Absorb scored rows: seed the population, then apply elitism."""
        rows = np.atleast_2d(np.asarray(rows, dtype=int))
        fitness = np.array([-record.qor for record in records], dtype=float)
        if self._population is None:
            self._population = rows.copy()
            self._fitness = fitness
        else:
            self._generations += 1
            self._population, self._fitness = self._select_survivors(
                self._population, self._fitness, rows, fitness,
            )

    # ------------------------------------------------------------------
    # Drive hooks
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self._population = None
        self._fitness = None
        self._population_size = min(self.config.population_size, budget)
        self._generations = 0

    def run_metadata(self) -> dict:
        return {"population_size": self._population_size,
                "num_generations": self._generations}

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        return {
            "population": encode_array(self._population),
            "fitness": encode_array(self._fitness),
            "population_size": self._population_size,
            "generations": self._generations,
        }

    def _load_state_dict(self, state: dict) -> None:
        self._population = decode_array(state["population"])
        self._fitness = decode_array(state["fitness"])
        self._population_size = int(state["population_size"])
        self._generations = int(state["generations"])

    # ------------------------------------------------------------------
    def _tournament(self, population: np.ndarray, fitness: np.ndarray) -> np.ndarray:
        """Pick one parent by tournament selection."""
        indices = self.rng.choice(len(population), size=self.config.tournament_size,
                                  replace=True)
        winner = indices[int(np.argmax(fitness[indices]))]
        return population[winner]

    def _make_offspring(self, population: np.ndarray, fitness: np.ndarray) -> List[np.ndarray]:
        """Produce one generation of children via crossover + mutation."""
        cfg = self.config
        num_children = len(population)
        children: List[np.ndarray] = []
        while len(children) < num_children:
            parent_a = self._tournament(population, fitness)
            parent_b = self._tournament(population, fitness)
            if self.rng.random() < cfg.crossover_probability:
                mask = self.rng.random(self.space.sequence_length) < 0.5
                child = np.where(mask, parent_a, parent_b)
            else:
                child = parent_a.copy()
            # Per-position categorical mutation.
            for position in range(self.space.sequence_length):
                if self.rng.random() < cfg.mutation_probability:
                    choices = [op for op in range(self.space.num_operations)
                               if op != child[position]]
                    child[position] = self.rng.choice(choices)
            children.append(child.astype(int))
        return children

    def _select_survivors(
        self,
        population: np.ndarray,
        fitness: np.ndarray,
        offspring: np.ndarray,
        offspring_fitness: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Elitist replacement: keep the best individuals of both pools."""
        elite_count = max(1, int(round(self.config.elite_fraction * len(population))))
        combined = np.vstack([population, offspring])
        combined_fitness = np.concatenate([fitness, offspring_fitness])
        order = np.argsort(-combined_fitness)
        elite = order[:elite_count]
        # Fill the rest of the next generation with the best offspring,
        # falling back to combined ranking if there are not enough children.
        remaining_slots = len(population) - elite_count
        offspring_order = np.argsort(-offspring_fitness) + len(population)
        rest = [idx for idx in offspring_order if idx not in set(elite)][:remaining_slots]
        if len(rest) < remaining_slots:
            extra = [idx for idx in order if idx not in set(elite) and idx not in set(rest)]
            rest.extend(extra[: remaining_slots - len(rest)])
        chosen = np.concatenate([elite, np.array(rest, dtype=int)]) if rest else elite
        return combined[chosen], combined_fitness[chosen]
