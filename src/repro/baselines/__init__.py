"""Baseline optimisers the paper compares BOiLS against.

* :class:`RandomSearch` — Latin-hypercube categorical sampling (the paper's
  RS baseline, built on pymoo's LHS in the original).
* :class:`GreedySearch` — builds one sequence position by position, always
  appending the operation with the best immediate QoR.
* :class:`GeneticAlgorithm` — tournament selection, uniform crossover and
  per-position mutation (the paper uses the ``geneticalgorithm2`` package).
* :mod:`repro.baselines.rl` — DRiLLS-style deep RL (A2C and PPO) and a
  Graph-RL variant with structural AIG features.
"""

from repro.baselines.random_search import RandomSearch
from repro.baselines.greedy import GreedySearch
from repro.baselines.genetic import GeneticAlgorithm
from repro.baselines.rl import A2COptimiser, PPOOptimiser, GraphRLOptimiser

__all__ = [
    "RandomSearch",
    "GreedySearch",
    "GeneticAlgorithm",
    "A2COptimiser",
    "PPOOptimiser",
    "GraphRLOptimiser",
]
