"""The synthesis-flow MDP used by the RL baselines (DRiLLS formulation).

State: a feature vector describing the partially-optimised AIG (node and
level counts relative to the initial circuit, mapped area/delay relative
to the ``resyn2`` reference, one-hot of the previous action and the
normalised step index).

Action: the index of the next synthesis operation to apply.

Episode: exactly ``K`` steps — one complete sequence.  The reward follows
the paper's adaptation of DRiLLS ("we modified the rewards to account for
our goal from Equation (2)"): the per-step reward is the decrease in the
running QoR value, so the episode return telescopes to
``QoR(initial) − QoR(sequence)``, i.e. maximising return minimises QoR.

Each completed episode registers the full sequence with the shared
:class:`repro.qor.QoREvaluator` so that RL runs are accounted in *tested
sequences*, the unit the paper uses for sample-complexity comparisons.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.aig.graph import AIG
from repro.bo.space import SequenceSpace
from repro.mapping.lut_mapper import LutMapper
from repro.qor.evaluator import QoREvaluator
from repro.synth.operations import get_operation


class SynthesisEnvironment:
    """Episodic environment over synthesis sequences for one circuit."""

    def __init__(
        self,
        evaluator: QoREvaluator,
        space: Optional[SequenceSpace] = None,
        use_graph_features: bool = False,
        auto_register: bool = True,
    ) -> None:
        self.evaluator = evaluator
        self.space = space if space is not None else SequenceSpace()
        self.use_graph_features = use_graph_features
        #: When ``True`` (default) every completed episode registers its
        #: sequence with the evaluator directly.  The batch-protocol
        #: optimisers set ``False`` and submit finished sequences through
        #: :meth:`~repro.qor.QoREvaluator.evaluate_many` instead, so an
        #: attached engine can score them in worker processes.
        self.auto_register = auto_register
        self.mapper: LutMapper = evaluator.mapper
        self._initial_aig = evaluator.aig
        self._initial_stats = self._initial_aig.stats()
        initial_mapping = evaluator.initial_result
        self._initial_area = max(1, initial_mapping.area)
        self._initial_delay = max(1, initial_mapping.delay)

        self._current_aig: AIG = self._initial_aig
        self._sequence: List[int] = []
        self._previous_action: Optional[int] = None
        self._current_qor = self._qor_of(self._current_aig)

    # ------------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        return len(self._features())

    @property
    def num_actions(self) -> int:
        return self.space.num_operations

    @property
    def episode_length(self) -> int:
        return self.space.sequence_length

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a new episode from the unoptimised circuit."""
        self._current_aig = self._initial_aig
        self._sequence = []
        self._previous_action = None
        self._current_qor = self._qor_of(self._current_aig)
        return self._features()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool]:
        """Apply one operation; returns ``(next_state, reward, done)``."""
        if len(self._sequence) >= self.episode_length:
            raise RuntimeError("episode is already finished; call reset()")
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range")
        operation = get_operation(self.space.alphabet[action])
        self._current_aig = operation(self._current_aig)
        self._sequence.append(int(action))
        self._previous_action = int(action)

        new_qor = self._qor_of(self._current_aig)
        reward = self._current_qor - new_qor
        self._current_qor = new_qor
        done = len(self._sequence) >= self.episode_length
        if done and self.auto_register:
            # Register the completed sequence with the evaluator so that the
            # run's sample count and history match the other optimisers.
            self.evaluator.evaluate(self.space.to_names(self._sequence))
        return self._features(), reward, done

    def current_sequence(self) -> List[int]:
        return list(self._sequence)

    # ------------------------------------------------------------------
    def _qor_of(self, aig: AIG) -> float:
        # Follows the evaluator's objective (Equation 1 by default), so
        # the per-step reward shaping matches what the run optimises.
        mapping = self.mapper.map(aig)
        return self.evaluator._qor_value(mapping.area, mapping.delay)

    def _features(self) -> np.ndarray:
        """State features of the current partially-optimised AIG."""
        stats = self._current_aig.stats()
        mapping = self.mapper.map(self._current_aig)
        base = [
            stats["ands"] / max(1, self._initial_stats["ands"]),
            stats["levels"] / max(1, self._initial_stats["levels"]),
            mapping.area / self._initial_area,
            mapping.delay / self._initial_delay,
            self._current_qor / self.evaluator.reference_qor,
            len(self._sequence) / self.episode_length,
        ]
        previous = np.zeros(self.num_actions)
        if self._previous_action is not None:
            previous[self._previous_action] = 1.0
        features = np.concatenate([np.array(base, dtype=float), previous])
        if self.use_graph_features:
            features = np.concatenate([features, self._graph_features()])
        return features

    def _graph_features(self) -> np.ndarray:
        """Structural descriptors used by the Graph-RL variant.

        A light-weight stand-in for a graph neural network embedding: the
        level histogram and fanout histogram of the current AIG (each
        normalised), which capture the shape information a message-passing
        network would aggregate.
        """
        aig = self._current_aig
        levels = aig.levels()
        depth = max(1, aig.depth())
        and_levels = [levels[node.var] for node in aig.and_nodes()]
        level_hist, _ = np.histogram(
            np.array(and_levels, dtype=float) / depth if and_levels else np.zeros(1),
            bins=8, range=(0.0, 1.0),
        )
        fanouts = aig.fanout_counts()
        and_fanouts = [fanouts[node.var] for node in aig.and_nodes()]
        fanout_hist, _ = np.histogram(
            np.clip(and_fanouts, 0, 8) if and_fanouts else np.zeros(1),
            bins=8, range=(0, 8),
        )
        num_ands = max(1, aig.num_ands)
        return np.concatenate([
            level_hist.astype(float) / num_ands,
            fanout_hist.astype(float) / num_ands,
        ])
