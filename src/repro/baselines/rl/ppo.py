"""Proximal policy optimisation (PPO) baseline — DRiLLS with PPO updates."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.rl.env import SynthesisEnvironment
from repro.baselines.rl.networks import PolicyValueNetwork
from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser


@register_optimiser("ppo", display_name="DRiLLS (PPO)")
class PPOOptimiser(SequenceOptimiser):
    """Clipped-surrogate PPO over the synthesis MDP.

    Episodes are collected in small batches; each batch is reused for a few
    epochs of clipped policy updates, which is PPO's defining difference
    from A2C.

    The batch protocol mirrors that structure: :meth:`suggest` rolls out
    up to ``episodes_per_batch`` episodes with the fixed current policy
    and returns their sequences as one batch, and :meth:`observe` runs
    the clipped update epochs on the collected batch.  All finished
    sequences are registered through
    :meth:`~repro.qor.QoREvaluator.evaluate_many`, so an attached engine
    scores a whole PPO batch in parallel.

    Near budget exhaustion the caller caps the batch at the *remaining*
    budget so a batch can never overshoot it.  This is slightly more
    conservative than the old per-episode inner loop: a memoised
    duplicate episode costs no budget, so with one evaluation left the
    old loop could still group a duplicate with a fresh episode into one
    update batch where this cap yields two single-episode updates.  The
    budget accounting is identical; only the update grouping in that
    corner differs.
    """

    name = "DRiLLS (PPO)"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        hidden_dim: int = 32,
        learning_rate: float = 3e-3,
        discount: float = 0.99,
        clip_epsilon: float = 0.2,
        update_epochs: int = 4,
        episodes_per_batch: int = 2,
        entropy_coefficient: float = 0.01,
        use_graph_features: bool = False,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.hidden_dim = hidden_dim
        self.learning_rate = learning_rate
        self.discount = discount
        self.clip_epsilon = clip_epsilon
        self.update_epochs = update_epochs
        self.episodes_per_batch = max(1, episodes_per_batch)
        self.entropy_coefficient = entropy_coefficient
        self.use_graph_features = use_graph_features

    # ------------------------------------------------------------------
    # Batch protocol (episode-batch-shaped)
    # ------------------------------------------------------------------
    def attach_environment(self, env: SynthesisEnvironment) -> None:
        """Bind the MDP and build the policy/value networks for it."""
        self._env = env
        self._network = PolicyValueNetwork(
            state_dim=env.state_dim,
            num_actions=env.num_actions,
            hidden_dim=self.hidden_dim,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        self._episode_returns: List[float] = []
        self._pending_batch: List[tuple] = []

    def suggest(self, n: int = 1) -> np.ndarray:
        """Roll out up to ``min(n, episodes_per_batch)`` episodes."""
        if getattr(self, "_env", None) is None:
            raise RuntimeError("attach_environment() must be called before suggest()")
        count = min(max(1, int(n)), self.episodes_per_batch)
        self._pending_batch = []
        rows: List[List[int]] = []
        for _ in range(count):
            states, actions, rewards, old_probs = self._rollout(self._env, self._network)
            self._pending_batch.append((states, actions, rewards, old_probs))
            rows.append(self._env.current_sequence())
        return np.array(rows, dtype=int)

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Clipped-surrogate update epochs on the collected episode batch."""
        batch_states: List[np.ndarray] = []
        batch_actions: List[int] = []
        batch_returns: List[float] = []
        batch_old_probs: List[float] = []
        for states, actions, rewards, old_probs in self._pending_batch:
            returns = self._discounted_returns(rewards)
            batch_states.extend(states)
            batch_actions.extend(actions)
            batch_returns.extend(returns.tolist())
            batch_old_probs.extend(old_probs)
            self._episode_returns.append(float(np.sum(rewards)))
        self._pending_batch = []
        if not batch_states:
            return
        states_arr = np.array(batch_states)
        actions_arr = np.array(batch_actions, dtype=int)
        returns_arr = np.array(batch_returns)
        old_probs_arr = np.array(batch_old_probs)
        values = np.array([self._network.state_value(s) for s in batch_states])
        advantages = returns_arr - values
        if np.std(advantages) > 1e-8:
            advantages = (advantages - advantages.mean()) / advantages.std()
        for _ in range(self.update_epochs):
            self._network.policy_gradient_step(
                states_arr, actions_arr, advantages,
                entropy_coefficient=self.entropy_coefficient,
                old_probs=old_probs_arr,
                clip_epsilon=self.clip_epsilon,
            )
            self._network.value_step(states_arr, returns_arr)

    # ------------------------------------------------------------------
    # Drive hooks: PPO batches are collected until ``budget`` sequences
    # have been tested (the driver passes the remaining budget as ``n``,
    # so a batch never overshoots it).
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self.attach_environment(SynthesisEnvironment(
            evaluator, space=self.space,
            use_graph_features=self.use_graph_features, auto_register=False,
        ))

    def run_metadata(self) -> dict:
        return {"episode_returns": self._episode_returns}

    # ------------------------------------------------------------------
    # Checkpoint protocol (mirrors A2C: round boundaries never hold an
    # in-flight episode batch, and ``prepare`` rebuilds the environment
    # scaffolding the snapshot overwrites).
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        if getattr(self, "_network", None) is None:
            raise RuntimeError("state_dict() requires prepare() to have run")
        return {
            "network": self._network.state_dict(),
            "episode_returns": [float(value) for value in self._episode_returns],
        }

    def _load_state_dict(self, state: dict) -> None:
        if getattr(self, "_network", None) is None:
            raise RuntimeError("load_state_dict() requires prepare() to have run")
        self._network.load_state_dict(dict(state["network"]))
        self._episode_returns = [float(value)
                                 for value in state["episode_returns"]]
        self._pending_batch = []

    # ------------------------------------------------------------------
    def _rollout(self, env: SynthesisEnvironment, network: PolicyValueNetwork):
        states, actions, rewards, old_probs = [], [], [], []
        state = env.reset()
        done = False
        while not done:
            probs = network.action_probabilities(state)
            action = int(self.rng.choice(env.num_actions, p=probs))
            next_state, reward, done = env.step(action)
            states.append(state)
            actions.append(action)
            rewards.append(reward)
            old_probs.append(float(probs[action]))
            state = next_state
        return states, actions, rewards, old_probs

    def _discounted_returns(self, rewards: List[float]) -> np.ndarray:
        returns = np.zeros(len(rewards))
        running = 0.0
        for index in reversed(range(len(rewards))):
            running = rewards[index] + self.discount * running
            returns[index] = running
        return returns
