"""Reinforcement-learning baselines (DRiLLS-style A2C/PPO and Graph-RL).

The paper benchmarks against DRiLLS (Hosny et al., ASP-DAC 2020) with both
A2C and PPO policy updates, and against the graph-based RL of Haaswijk et
al.  These reproductions keep the same Markov decision process — the state
is a vector of statistics of the partially-optimised AIG, an action picks
the next synthesis operation, an episode is one complete K-operation
sequence — with small NumPy multilayer-perceptron policy/value networks
trained by the corresponding update rules.  The networks are deliberately
small: the paper's point is about the *sample complexity of the method
class*, which is governed by the MDP formulation and the on-policy update
rules, not by network capacity.
"""

from repro.baselines.rl.a2c import A2COptimiser
from repro.baselines.rl.ppo import PPOOptimiser
from repro.baselines.rl.graph_rl import GraphRLOptimiser
from repro.baselines.rl.env import SynthesisEnvironment
from repro.baselines.rl.networks import MLP, PolicyValueNetwork

__all__ = [
    "A2COptimiser",
    "PPOOptimiser",
    "GraphRLOptimiser",
    "SynthesisEnvironment",
    "MLP",
    "PolicyValueNetwork",
]
