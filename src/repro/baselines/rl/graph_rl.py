"""Graph-RL baseline (Haaswijk et al., ISCAS 2018).

The original work trains a policy over a graph-convolutional embedding of
the circuit.  Here the same A2C trainer is used, but the state is extended
with structural graph descriptors (level and fanout histograms of the
current AIG) that stand in for the learned message-passing embedding; the
paper itself notes that extracting graph features from large circuits is
the method's practical bottleneck, which is why its results are only
reported for the smaller designs.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.rl.a2c import A2COptimiser
from repro.bo.space import SequenceSpace
from repro.registry import register_optimiser


@register_optimiser("graph-rl", display_name="Graph-RL")
class GraphRLOptimiser(A2COptimiser):
    """A2C with graph-structural state features (the paper's Graph-RL)."""

    name = "Graph-RL"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        hidden_dim: int = 48,
        learning_rate: float = 3e-3,
        discount: float = 0.99,
        entropy_coefficient: float = 0.01,
        max_circuit_ands: Optional[int] = 5000,
    ) -> None:
        super().__init__(
            space=space,
            seed=seed,
            hidden_dim=hidden_dim,
            learning_rate=learning_rate,
            discount=discount,
            entropy_coefficient=entropy_coefficient,
            use_graph_features=True,
        )
        #: Graph-RL is only applied to circuits below this size; the paper
        #: reports "-" for the larger designs because graph extraction does
        #: not scale, and the experiment runner honours the same limit.
        self.max_circuit_ands = max_circuit_ands

    def supports_circuit(self, num_ands: int) -> bool:
        """Whether the method is applicable to a circuit of this size."""
        return self.max_circuit_ands is None or num_ands <= self.max_circuit_ands
