"""Advantage actor-critic (A2C) baseline — DRiLLS with the A2C update rule."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.rl.env import SynthesisEnvironment
from repro.baselines.rl.networks import PolicyValueNetwork
from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser


@register_optimiser("a2c", display_name="DRiLLS (A2C)")
class A2COptimiser(SequenceOptimiser):
    """On-policy actor-critic over the synthesis MDP.

    Every episode is one tested sequence; the optimiser keeps collecting
    episodes, updating the policy/value networks after each one, until the
    evaluation budget (in tested sequences) is exhausted.

    The batch protocol is episode-shaped: :meth:`suggest` rolls out one
    episode with the current policy and returns its sequence, and
    :meth:`observe` performs the A2C update for that episode.  Completed
    sequences are registered through
    :meth:`~repro.qor.QoREvaluator.evaluate_many`, so an attached
    :class:`repro.engine.EvaluationEngine` scores them in the worker
    pool.  (A2C updates after every episode, so its batches are single
    episodes by construction.)
    """

    name = "DRiLLS (A2C)"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        hidden_dim: int = 32,
        learning_rate: float = 3e-3,
        discount: float = 0.99,
        entropy_coefficient: float = 0.01,
        use_graph_features: bool = False,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.hidden_dim = hidden_dim
        self.learning_rate = learning_rate
        self.discount = discount
        self.entropy_coefficient = entropy_coefficient
        self.use_graph_features = use_graph_features

    # ------------------------------------------------------------------
    # Batch protocol (episode-shaped)
    # ------------------------------------------------------------------
    def attach_environment(self, env: SynthesisEnvironment) -> None:
        """Bind the MDP and build the policy/value networks for it."""
        self._env = env
        self._network = PolicyValueNetwork(
            state_dim=env.state_dim,
            num_actions=env.num_actions,
            hidden_dim=self.hidden_dim,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        self._episode_returns: List[float] = []
        self._pending_episode = None

    def suggest(self, n: int = 1) -> np.ndarray:
        """Roll out one episode with the current policy; returns its sequence."""
        if getattr(self, "_env", None) is None:
            raise RuntimeError("attach_environment() must be called before suggest()")
        states, actions, rewards = self._rollout(self._env, self._network)
        self._pending_episode = (states, actions, rewards)
        return np.array([self._env.current_sequence()], dtype=int)

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """A2C update for the episode proposed by the last :meth:`suggest`."""
        assert self._pending_episode is not None
        states, actions, rewards = self._pending_episode
        self._pending_episode = None
        returns = self._discounted_returns(rewards)
        values = np.array([self._network.state_value(s) for s in states])
        advantages = returns - values
        if np.std(advantages) > 1e-8:
            advantages = (advantages - advantages.mean()) / advantages.std()
        self._network.policy_gradient_step(
            np.array(states), np.array(actions), advantages,
            entropy_coefficient=self.entropy_coefficient,
        )
        self._network.value_step(np.array(states), returns)
        self._episode_returns.append(float(np.sum(rewards)))

    # ------------------------------------------------------------------
    # Drive hooks: episodes are collected until ``budget`` sequences have
    # been tested (suggest ignores ``n`` — A2C updates per episode).
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self.attach_environment(SynthesisEnvironment(
            evaluator, space=self.space,
            use_graph_features=self.use_graph_features, auto_register=False,
        ))

    def run_metadata(self) -> dict:
        return {"episode_returns": self._episode_returns}

    # ------------------------------------------------------------------
    # Checkpoint protocol.  At a round boundary there is no in-flight
    # episode (``observe`` consumed it), so the snapshot is the network
    # weights, both Adam states and the episode-return log; ``prepare``
    # must run first (it builds the environment and the network the
    # snapshot overwrites).
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        if getattr(self, "_network", None) is None:
            raise RuntimeError("state_dict() requires prepare() to have run")
        return {
            "network": self._network.state_dict(),
            "episode_returns": [float(value) for value in self._episode_returns],
        }

    def _load_state_dict(self, state: dict) -> None:
        if getattr(self, "_network", None) is None:
            raise RuntimeError("load_state_dict() requires prepare() to have run")
        self._network.load_state_dict(dict(state["network"]))
        self._episode_returns = [float(value)
                                 for value in state["episode_returns"]]
        self._pending_episode = None

    # ------------------------------------------------------------------
    def _rollout(self, env: SynthesisEnvironment, network: PolicyValueNetwork):
        states, actions, rewards = [], [], []
        state = env.reset()
        done = False
        while not done:
            action = network.sample_action(state, self.rng)
            next_state, reward, done = env.step(action)
            states.append(state)
            actions.append(action)
            rewards.append(reward)
            state = next_state
        return states, actions, rewards

    def _discounted_returns(self, rewards: List[float]) -> np.ndarray:
        returns = np.zeros(len(rewards))
        running = 0.0
        for index in reversed(range(len(rewards))):
            running = rewards[index] + self.discount * running
            returns[index] = running
        return returns
