"""Advantage actor-critic (A2C) baseline — DRiLLS with the A2C update rule."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.rl.env import SynthesisEnvironment
from repro.baselines.rl.networks import PolicyValueNetwork
from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator


class A2COptimiser(SequenceOptimiser):
    """On-policy actor-critic over the synthesis MDP.

    Every episode is one tested sequence; the optimiser keeps collecting
    episodes, updating the policy/value networks after each one, until the
    evaluation budget (in tested sequences) is exhausted.
    """

    name = "DRiLLS (A2C)"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        hidden_dim: int = 32,
        learning_rate: float = 3e-3,
        discount: float = 0.99,
        entropy_coefficient: float = 0.01,
        use_graph_features: bool = False,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.hidden_dim = hidden_dim
        self.learning_rate = learning_rate
        self.discount = discount
        self.entropy_coefficient = entropy_coefficient
        self.use_graph_features = use_graph_features

    # ------------------------------------------------------------------
    def optimise(self, evaluator: QoREvaluator, budget: int) -> OptimisationResult:
        """Collect episodes until ``budget`` sequences have been tested."""
        env = SynthesisEnvironment(evaluator, space=self.space,
                                   use_graph_features=self.use_graph_features)
        network = PolicyValueNetwork(
            state_dim=env.state_dim,
            num_actions=env.num_actions,
            hidden_dim=self.hidden_dim,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        episode_returns: List[float] = []
        while evaluator.num_evaluations < budget:
            states, actions, rewards = self._rollout(env, network)
            returns = self._discounted_returns(rewards)
            values = np.array([network.state_value(s) for s in states])
            advantages = returns - values
            if np.std(advantages) > 1e-8:
                advantages = (advantages - advantages.mean()) / advantages.std()
            network.policy_gradient_step(
                np.array(states), np.array(actions), advantages,
                entropy_coefficient=self.entropy_coefficient,
            )
            network.value_step(np.array(states), returns)
            episode_returns.append(float(np.sum(rewards)))

        result = self._build_result(evaluator, evaluator.aig.name)
        result.metadata["episode_returns"] = episode_returns
        return result

    # ------------------------------------------------------------------
    def _rollout(self, env: SynthesisEnvironment, network: PolicyValueNetwork):
        states, actions, rewards = [], [], []
        state = env.reset()
        done = False
        while not done:
            action = network.sample_action(state, self.rng)
            next_state, reward, done = env.step(action)
            states.append(state)
            actions.append(action)
            rewards.append(reward)
            state = next_state
        return states, actions, rewards

    def _discounted_returns(self, rewards: List[float]) -> np.ndarray:
        returns = np.zeros(len(rewards))
        running = 0.0
        for index in reversed(range(len(rewards))):
            running = rewards[index] + self.discount * running
            returns[index] = running
        return returns
