"""Small NumPy neural networks with manual backpropagation.

Only what the RL baselines need: a two-hidden-layer MLP with tanh
activations, a softmax policy head and a scalar value head, trained with
Adam.  Gradients are computed analytically (no autodiff dependency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serialise import decode_array, encode_array


class MLP:
    """Two-hidden-layer tanh MLP mapping feature vectors to a linear output."""

    def __init__(self, input_dim: int, hidden_dim: int, output_dim: int,
                 rng: np.random.Generator) -> None:
        scale1 = np.sqrt(2.0 / input_dim)
        scale2 = np.sqrt(2.0 / hidden_dim)
        self.params: Dict[str, np.ndarray] = {
            "W1": rng.normal(0.0, scale1, size=(input_dim, hidden_dim)),
            "b1": np.zeros(hidden_dim),
            "W2": rng.normal(0.0, scale2, size=(hidden_dim, hidden_dim)),
            "b2": np.zeros(hidden_dim),
            "W3": rng.normal(0.0, scale2, size=(hidden_dim, output_dim)),
            "b3": np.zeros(output_dim),
        }

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Forward pass; returns the output and a cache for backprop."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        z1 = x @ self.params["W1"] + self.params["b1"]
        h1 = np.tanh(z1)
        z2 = h1 @ self.params["W2"] + self.params["b2"]
        h2 = np.tanh(z2)
        out = h2 @ self.params["W3"] + self.params["b3"]
        cache = {"x": x, "h1": h1, "h2": h2}
        return out, cache

    def backward(self, grad_out: np.ndarray, cache: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Backprop a gradient w.r.t. the output; returns parameter grads."""
        x, h1, h2 = cache["x"], cache["h1"], cache["h2"]
        grads: Dict[str, np.ndarray] = {}
        grads["W3"] = h2.T @ grad_out
        grads["b3"] = grad_out.sum(axis=0)
        dh2 = grad_out @ self.params["W3"].T
        dz2 = dh2 * (1.0 - h2 ** 2)
        grads["W2"] = h1.T @ dz2
        grads["b2"] = dz2.sum(axis=0)
        dh1 = dz2 @ self.params["W2"].T
        dz1 = dh1 * (1.0 - h1 ** 2)
        grads["W1"] = x.T @ dz1
        grads["b1"] = dz1.sum(axis=0)
        return grads


class AdamState:
    """Per-parameter Adam moment estimates."""

    def __init__(self, params: Dict[str, np.ndarray], learning_rate: float = 3e-3,
                 beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = {name: np.zeros_like(value) for name, value in params.items()}
        self._v = {name: np.zeros_like(value) for name, value in params.items()}
        self._t = 0

    def update(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """In-place Adam update (gradient *descent*)."""
        self._t += 1
        for name, grad in grads.items():
            self._m[name] = self.beta1 * self._m[name] + (1 - self.beta1) * grad
            self._v[name] = self.beta2 * self._v[name] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[name] / (1 - self.beta1 ** self._t)
            v_hat = self._v[name] / (1 - self.beta2 ** self._t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-exact snapshot of the Adam moment estimates."""
        return {
            "m": {name: encode_array(value) for name, value in self._m.items()},
            "v": {name: encode_array(value) for name, value in self._v.items()},
            "t": self._t,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._m = {str(name): decode_array(value)
                   for name, value in dict(state["m"]).items()}  # type: ignore[arg-type]
        self._v = {str(name): decode_array(value)
                   for name, value in dict(state["v"]).items()}  # type: ignore[arg-type]
        self._t = int(state["t"])  # type: ignore[arg-type]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class PolicyValueNetwork:
    """Actor-critic pair: a policy MLP and a value MLP over the same state."""

    def __init__(self, state_dim: int, num_actions: int, hidden_dim: int = 32,
                 learning_rate: float = 3e-3, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.num_actions = num_actions
        self.policy = MLP(state_dim, hidden_dim, num_actions, rng)
        self.value = MLP(state_dim, hidden_dim, 1, rng)
        self.policy_opt = AdamState(self.policy.params, learning_rate=learning_rate)
        self.value_opt = AdamState(self.value.params, learning_rate=learning_rate)

    # ------------------------------------------------------------------
    def action_probabilities(self, state: np.ndarray) -> np.ndarray:
        logits, _ = self.policy.forward(state)
        return softmax(logits)[0]

    def state_value(self, state: np.ndarray) -> float:
        value, _ = self.value.forward(state)
        return float(value[0, 0])

    def sample_action(self, state: np.ndarray, rng: np.random.Generator) -> int:
        probs = self.action_probabilities(state)
        return int(rng.choice(self.num_actions, p=probs))

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-exact snapshot: both MLPs' weights and both Adam states."""
        return {
            "policy": {name: encode_array(value)
                       for name, value in self.policy.params.items()},
            "value": {name: encode_array(value)
                      for name, value in self.value.params.items()},
            "policy_opt": self.policy_opt.state_dict(),
            "value_opt": self.value_opt.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.policy.params = {str(name): decode_array(value)
                              for name, value in dict(state["policy"]).items()}  # type: ignore[arg-type]
        self.value.params = {str(name): decode_array(value)
                             for name, value in dict(state["value"]).items()}  # type: ignore[arg-type]
        self.policy_opt.load_state_dict(dict(state["policy_opt"]))  # type: ignore[arg-type]
        self.value_opt.load_state_dict(dict(state["value_opt"]))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def policy_gradient_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        entropy_coefficient: float = 0.01,
        old_probs: Optional[np.ndarray] = None,
        clip_epsilon: Optional[float] = None,
    ) -> float:
        """One gradient step on the policy loss.

        Without ``clip_epsilon`` this is the vanilla advantage-weighted
        policy-gradient (A2C) loss; with it, the PPO clipped surrogate.
        Returns the (pre-update) loss value for logging.
        """
        states = np.atleast_2d(states)
        actions = np.asarray(actions, dtype=int)
        advantages = np.asarray(advantages, dtype=float)
        n = states.shape[0]

        logits, cache = self.policy.forward(states)
        probs = softmax(logits)
        chosen = probs[np.arange(n), actions]

        if clip_epsilon is not None and old_probs is not None:
            ratio = chosen / np.maximum(old_probs, 1e-12)
            clipped = np.clip(ratio, 1.0 - clip_epsilon, 1.0 + clip_epsilon)
            use_unclipped = (ratio * advantages) <= (clipped * advantages)
            # Gradient of the surrogate w.r.t. log-prob of the chosen action:
            # zero where the clipped branch is active.
            weight = np.where(use_unclipped, ratio * advantages, 0.0)
            loss = -float(np.mean(np.minimum(ratio * advantages, clipped * advantages)))
        else:
            weight = advantages
            loss = -float(np.mean(np.log(np.maximum(chosen, 1e-12)) * advantages))

        # d loss / d logits for softmax policy gradient with entropy bonus.
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(n), actions] = 1.0
        grad_logits = -(one_hot - probs) * weight[:, None] / n
        entropy_grad = probs * (np.log(np.maximum(probs, 1e-12)) + 1.0)
        grad_logits += entropy_coefficient * entropy_grad / n

        grads = self.policy.backward(grad_logits, cache)
        self.policy_opt.update(self.policy.params, grads)
        return loss

    def value_step(self, states: np.ndarray, returns: np.ndarray) -> float:
        """One MSE gradient step on the value network; returns the loss."""
        states = np.atleast_2d(states)
        returns = np.asarray(returns, dtype=float).reshape(-1, 1)
        predictions, cache = self.value.forward(states)
        error = predictions - returns
        loss = float(np.mean(error ** 2))
        grad = 2.0 * error / states.shape[0]
        grads = self.value.backward(grad, cache)
        self.value_opt.update(self.value.params, grads)
        return loss
