"""BOiLS reproduction: Bayesian Optimisation for Logic Synthesis.

The package is organised in layers, bottom-up:

* :mod:`repro.aig` — And-Inverter Graph representation, AIGER I/O,
  simulation, cuts and truth tables.
* :mod:`repro.synth` — the eleven synthesis operations forming the BOiLS
  search alphabet, plus reference flows (``resyn2``).
* :mod:`repro.mapping` — K-LUT technology mapping providing the area and
  delay numbers behind the QoR metric.
* :mod:`repro.circuits` — generators for the EPFL-style arithmetic
  benchmark circuits.
* :mod:`repro.qor` — the QoR black box (Equation 1 of the paper).
* :mod:`repro.gp` — Gaussian-process regression with the sub-sequence
  string kernel (SSK).
* :mod:`repro.bo` — BOiLS itself (Algorithm 2) and standard BO (SBO).
* :mod:`repro.baselines` — random search, greedy, genetic algorithm and
  reinforcement-learning baselines (A2C, PPO, Graph-RL).
* :mod:`repro.engine` — the parallel execution layer: worker-pool batch
  evaluation, the persistent on-disk QoR cache and the parallel
  (method × circuit × seed) grid runner.
* :mod:`repro.registry` — decorator-based, entry-point-extensible
  registries for optimisers, objectives and circuits.
* :mod:`repro.api` — the declarative public surface: ``Problem`` /
  ``Campaign``, resumable ``CampaignStore`` run directories, and the
  ``run_campaign`` / ``resume_campaign`` / ``run_problem`` drivers.
* :mod:`repro.experiments` — runners regenerating every table and figure
  of the paper's evaluation (legacy shims over :mod:`repro.api`).
"""

import sys

# Deep circuits (long carry chains) make the demand-driven rebuild passes
# recurse proportionally to circuit depth; lift CPython's conservative
# default so paper-scale widths do not hit the limit.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)

__version__ = "1.0.0"

from repro.aig import AIG
from repro.circuits import get_circuit, list_circuits
from repro.qor import QoREvaluator
from repro.synth import OPERATION_ALPHABET, apply_sequence, resyn2

__all__ = [
    "AIG",
    "get_circuit",
    "list_circuits",
    "QoREvaluator",
    "OPERATION_ALPHABET",
    "apply_sequence",
    "resyn2",
    "__version__",
]
