"""JSON-exact array serialisation for the checkpoint protocol.

Checkpoints (``SequenceOptimiser.state_dict`` and the store's
``checkpoints/<cell_id>.json``) must round-trip through ``json.dumps`` /
``json.loads`` *bit-exactly*: a resumed run replays against restored
state, and any drift — a float that re-parses to a different bit
pattern, an int array that comes back as float — would silently fork the
trajectory.  Python floats already serialise via shortest-repr (which is
bit-exact), so the only thing arrays need is an explicit dtype and shape
alongside the nested-list data; these two helpers provide exactly that
and nothing more.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def encode_array(array: Optional[np.ndarray]) -> Optional[Dict[str, object]]:
    """Encode an ndarray as ``{data, dtype, shape}`` (``None`` passes through).

    ``shape`` is stored explicitly so empty and zero-length axes survive
    the round trip (``np.array([])`` alone cannot reconstruct ``(0, 5)``).
    """
    if array is None:
        return None
    array = np.asarray(array)
    return {
        "data": array.tolist(),
        "dtype": array.dtype.str,
        "shape": list(array.shape),
    }


def decode_array(payload: Optional[Dict[str, object]]) -> Optional[np.ndarray]:
    """Rebuild the ndarray encoded by :func:`encode_array`."""
    if payload is None:
        return None
    array = np.array(payload["data"], dtype=np.dtype(str(payload["dtype"])))
    return array.reshape([int(dim) for dim in payload["shape"]])  # type: ignore[union-attr]
