"""Projected Adam optimiser.

The BOiLS paper fits the SSK decay hyperparameters ``(θ_m, θ_g) ∈ [0,1]²``
by minimising the negative log marginal likelihood with *projected*
gradient steps, implemented as "a projected version of Adam" (Section
III-B1).  This module provides exactly that: a small, dependency-free Adam
whose iterates are clipped back into a box after every update.  Gradients
are supplied by the caller (the GP uses finite differences, which keeps
the kernel implementations free of autodiff plumbing).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np


class RefitGate:
    """Skips marginal-likelihood refits once the hyperparameters converge.

    The paper refits the SSK decays every round (``fit_every=1``), which
    means the incremental-Cholesky conditioning path is never taken at
    the paper's defaults — every round pays a full hyperparameter fit.
    In long runs the projected-Adam iterates typically settle after a
    few dozen rounds; from then on each refit recomputes (at full Gram
    cost) essentially the same decays.  This gate watches the fitted
    hyperparameters across successive refits and declares convergence
    once ``patience`` consecutive refits each moved every parameter by
    at most ``tol``; converged rounds skip the refit entirely and take
    the cheap rank-k incremental-conditioning path instead.

    The gate is *opt-in* (``refit_gate=True`` on BOiLS/SBO): with it off
    — the default — trajectories are bit-identical to the paper's
    always-refit schedule, which is what the golden suite pins.  Its
    state participates in the optimiser checkpoint protocol so resumed
    runs gate exactly like uninterrupted ones.
    """

    def __init__(self, tol: float = 1e-3, patience: int = 2) -> None:
        self.tol = float(tol)
        self.patience = max(1, int(patience))
        self._last: Optional[Dict[str, float]] = None
        self._streak = 0
        self.converged = False

    def should_refit(self) -> bool:
        """Whether the next scheduled refit should actually run."""
        return not self.converged

    def record(self, params: Dict[str, float]) -> None:
        """Feed the result of one completed refit into the gate."""
        params = {str(name): float(value) for name, value in params.items()}
        if self.converged:
            return
        if self._last is not None and self._last.keys() == params.keys():
            delta = max(abs(params[name] - self._last[name]) for name in params)
            if delta <= self.tol:
                self._streak += 1
                if self._streak >= self.patience:
                    self.converged = True
            else:
                self._streak = 0
        self._last = params

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "tol": self.tol,
            "patience": self.patience,
            "last": dict(self._last) if self._last is not None else None,
            "streak": self._streak,
            "converged": self.converged,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.tol = float(state["tol"])  # type: ignore[arg-type]
        self.patience = int(state["patience"])  # type: ignore[arg-type]
        last = state.get("last")
        self._last = ({str(k): float(v) for k, v in dict(last).items()}  # type: ignore[arg-type]
                      if last is not None else None)
        self._streak = int(state["streak"])  # type: ignore[arg-type]
        self.converged = bool(state["converged"])


class ProjectedAdam:
    """Adam with box-projection after each step.

    Parameters
    ----------
    lower, upper:
        Box bounds; iterates are clipped element-wise after every update
        (the projection step of the paper's update rule).
    learning_rate, beta1, beta2, epsilon:
        Standard Adam constants.
    """

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower and upper bounds must have the same shape")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = np.zeros_like(self.lower)
        self._v = np.zeros_like(self.lower)
        self._t = 0

    def project(self, x: np.ndarray) -> np.ndarray:
        """Project a point onto the box."""
        return np.clip(x, self.lower, self.upper)

    def step(self, x: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """One projected Adam update of ``x`` given the gradient at ``x``."""
        x = np.asarray(x, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * gradient
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * gradient ** 2
        m_hat = self._m / (1.0 - self.beta1 ** self._t)
        v_hat = self._v / (1.0 - self.beta2 ** self._t)
        updated = x - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        return self.project(updated)

    def reset(self) -> None:
        """Clear the moment estimates (e.g. when restarting a fit)."""
        self._m = np.zeros_like(self.lower)
        self._v = np.zeros_like(self.lower)
        self._t = 0


def finite_difference_gradient(
    objective: Callable[[np.ndarray], float],
    x: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    step: float = 1e-3,
) -> np.ndarray:
    """Central finite-difference gradient respecting box bounds.

    Points perturbed outside the box are clipped back, degrading that
    coordinate to a one-sided difference — which is the right behaviour at
    the boundary of the feasible set.
    """
    x = np.asarray(x, dtype=float)
    gradient = np.zeros_like(x)
    for index in range(x.size):
        forward = x.copy()
        backward = x.copy()
        forward[index] = min(upper[index], x[index] + step)
        backward[index] = max(lower[index], x[index] - step)
        denom = forward[index] - backward[index]
        if denom <= 0:
            gradient[index] = 0.0
            continue
        gradient[index] = (objective(forward) - objective(backward)) / denom
    return gradient


def minimise_with_projected_adam(
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    num_steps: int = 20,
    learning_rate: float = 0.05,
    gradient_step: float = 1e-3,
) -> Tuple[np.ndarray, float]:
    """Minimise ``objective`` over a box with projected Adam.

    Returns the best iterate encountered and its objective value (not
    necessarily the final iterate — Adam is not monotone).
    """
    optimiser = ProjectedAdam(lower, upper, learning_rate=learning_rate)
    x = optimiser.project(np.asarray(x0, dtype=float))
    best_x = x.copy()
    best_value = objective(x)
    for _ in range(num_steps):
        gradient = finite_difference_gradient(objective, x, lower, upper, step=gradient_step)
        x = optimiser.step(x, gradient)
        value = objective(x)
        if value < best_value:
            best_value = value
            best_x = x.copy()
    return best_x, best_value
