"""Exact Gaussian-process regression.

Implements the zero-mean GP of Section III-A of the paper: Cholesky-based
posterior inference (Equation 3), negative log marginal likelihood
(Equation 4) and hyperparameter fitting via projected Adam on the kernel's
box-constrained hyperparameters.  Works with any :class:`repro.gp.kernels.Kernel`,
in particular the sub-sequence string kernel used by BOiLS.

Incremental conditioning
------------------------
A BO loop appends a handful of observations per round and refits.  When
the kernel hyperparameters are unchanged since the last factorisation,
:meth:`GaussianProcess.update_or_fit` extends the existing Cholesky
factor by a rank-k block update — ``O(n²k)`` plus the cross-kernel
columns — instead of rebuilding the full Gram and refactorising from
scratch.  The extension is the exact block-Cholesky identity; the factor
agrees with a from-scratch factorisation to floating-point roundoff, and
the equivalence suite pins seeded optimiser trajectories with the
incremental path against full refactorisation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky, solve_triangular

from repro.gp.kernels.base import Kernel
from repro.gp.optim import finite_difference_gradient, ProjectedAdam
from repro.serialise import decode_array, encode_array


class GaussianProcess:
    """Zero-mean exact GP with observation noise.

    Parameters
    ----------
    kernel:
        Covariance function.
    noise_variance:
        Gaussian observation-noise variance added to the Gram diagonal.
    normalize_y:
        Standardise targets before fitting (recommended for QoR values
        whose scale varies between circuits); predictions are transformed
        back automatically.
    jitter:
        Numerical jitter added to the diagonal when the Cholesky fails.
    """

    def __init__(
        self,
        kernel: Kernel,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
        jitter: float = 1e-8,
    ) -> None:
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.normalize_y = normalize_y
        self.jitter = jitter
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        # State recorded at factorisation time, used to decide whether an
        # incremental extension is valid (hyperparameters unchanged) and
        # to keep the extension's jitter consistent with the factor's.
        self._fit_params: Optional[Tuple[Dict[str, float], float]] = None
        self._jitter_used: float = jitter

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations (no hyperparameter update)."""
        X = np.atleast_2d(np.asarray(X))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must contain the same number of rows")
        self._X = X
        self._set_targets(y)
        self._factorise()
        return self

    def _factorise(self) -> None:
        assert self._X is not None and self._y is not None
        gram = self.kernel(self._X)
        n = gram.shape[0]
        noisy = gram + (self.noise_variance + self.jitter) * np.eye(n)
        jitter = self.jitter
        for _ in range(8):
            try:
                self._chol = cholesky(noisy, lower=True)
                break
            except np.linalg.LinAlgError:
                jitter *= 10.0
                noisy = gram + (self.noise_variance + jitter) * np.eye(n)
        else:  # pragma: no cover - pathological kernels only
            raise np.linalg.LinAlgError("kernel matrix is not positive definite")
        self._alpha = cho_solve((self._chol, True), self._y)
        self._jitter_used = jitter
        self._fit_params = (self.kernel.get_params(), self.noise_variance)

    # ------------------------------------------------------------------
    # Incremental conditioning
    # ------------------------------------------------------------------
    def update_or_fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition on ``(X, y)``, reusing the current factor when valid.

        Dispatch rules:

        * same inputs, unchanged hyperparameters → reuse the Cholesky
          factor and only re-solve for the (possibly re-standardised)
          targets;
        * the previous inputs are a prefix of ``X`` and hyperparameters
          are unchanged → extend the factor by a rank-k block update;
        * anything else → full :meth:`fit`.
        """
        X = np.atleast_2d(np.asarray(X))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must contain the same number of rows")
        n_old = self._X.shape[0] if self._X is not None else 0
        reusable = (
            self._X is not None
            and self._chol is not None
            and self._fit_params == (self.kernel.get_params(), self.noise_variance)
            and X.shape[0] >= n_old
            and X.shape[1:] == self._X.shape[1:]
            and np.array_equal(X[:n_old], self._X)
        )
        if not reusable:
            return self.fit(X, y)
        if X.shape[0] == n_old:
            self._set_targets(y)
            self._alpha = cho_solve((self._chol, True), self._y)
            return self
        try:
            return self._extend(X, y)
        except np.linalg.LinAlgError:
            # The appended block made the factor numerically unextendable;
            # fall back to a full (jitter-escalating) refactorisation.
            return self.fit(X, y)

    def _set_targets(self, y: np.ndarray) -> None:
        if self.normalize_y and y.size > 1 and np.std(y) > 0:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y))
        else:
            self._y_mean = float(np.mean(y)) if y.size else 0.0
            self._y_std = 1.0
        self._y = (y - self._y_mean) / self._y_std

    def _extend(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Rank-k block extension of the current Cholesky factor.

        With ``K_full = [[K11, K12], [K12ᵀ, K22]]`` and ``K11 = L11 L11ᵀ``
        already factorised, the extended factor is::

            L21 = (L11⁻¹ K12)ᵀ
            L22 = chol(K22 + σ²I - L21 L21ᵀ)

        Only the ``k`` new cross-kernel columns and an ``O(n²k)`` solve
        are computed; the ``O(n³)`` refactorisation and the full-Gram
        kernel evaluation are skipped entirely.
        """
        assert self._X is not None and self._chol is not None
        n_old = self._X.shape[0]
        X_new = X[n_old:]
        k = X_new.shape[0]
        k_cross = self.kernel(self._X, X_new)
        k_block = self.kernel(X_new)
        l21 = solve_triangular(self._chol, k_cross, lower=True).T
        schur = k_block + (self.noise_variance + self._jitter_used) * np.eye(k)
        schur -= l21 @ l21.T
        l22 = cholesky(schur, lower=True)

        n = n_old + k
        chol = np.zeros((n, n), dtype=self._chol.dtype)
        chol[:n_old, :n_old] = self._chol
        chol[n_old:, :n_old] = l21
        chol[n_old:, n_old:] = l22
        self._chol = chol
        self._X = X
        self._set_targets(y)
        self._alpha = cho_solve((chol, True), self._y)
        return self

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-exact snapshot of the conditioning state.

        Captures the training data *and* the numerical internals — the
        Cholesky factor, the solved ``alpha``, the standardisation
        constants, the jitter actually used and the hyperparameters the
        factor was computed under.  Restoring all of them (rather than
        refitting from the data) matters for bit-identical resume: a
        freshly refactorised Gram can differ from an incrementally
        extended factor in the last bit, so a resumed BO round must
        continue from the *same* factor the interrupted run held.
        """
        fit_params = None
        if self._fit_params is not None:
            params, noise = self._fit_params
            fit_params = {"params": dict(params), "noise_variance": noise}
        return {
            "kernel_params": self.kernel.get_params(),
            "noise_variance": self.noise_variance,
            "normalize_y": self.normalize_y,
            "jitter": self.jitter,
            "jitter_used": self._jitter_used,
            "X": encode_array(self._X),
            "y": encode_array(self._y),
            "y_mean": self._y_mean,
            "y_std": self._y_std,
            "chol": encode_array(self._chol),
            "alpha": encode_array(self._alpha),
            "fit_params": fit_params,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse operation)."""
        self.kernel.set_params(**{str(k): float(v) for k, v
                                  in dict(state["kernel_params"]).items()})  # type: ignore[arg-type]
        self.noise_variance = float(state["noise_variance"])  # type: ignore[arg-type]
        self.normalize_y = bool(state["normalize_y"])
        self.jitter = float(state["jitter"])  # type: ignore[arg-type]
        self._jitter_used = float(state["jitter_used"])  # type: ignore[arg-type]
        self._X = decode_array(state["X"])  # type: ignore[arg-type]
        self._y = decode_array(state["y"])  # type: ignore[arg-type]
        self._y_mean = float(state["y_mean"])  # type: ignore[arg-type]
        self._y_std = float(state["y_std"])  # type: ignore[arg-type]
        self._chol = decode_array(state["chol"])  # type: ignore[arg-type]
        self._alpha = decode_array(state["alpha"])  # type: ignore[arg-type]
        fit_params = state.get("fit_params")
        if fit_params is None:
            self._fit_params = None
        else:
            self._fit_params = (
                {str(k): float(v) for k, v
                 in dict(fit_params["params"]).items()},  # type: ignore[index]
                float(fit_params["noise_variance"]),  # type: ignore[index]
            )

    # ------------------------------------------------------------------
    # Prediction (Equation 3)
    # ------------------------------------------------------------------
    def predict(
        self, X_test: np.ndarray, return_std: bool = True, include_noise: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Posterior mean (and standard deviation) at the test inputs."""
        if self._X is None or self._chol is None or self._alpha is None:
            raise RuntimeError("predict() called before fit()")
        X_test = np.atleast_2d(np.asarray(X_test))
        k_star = self.kernel(self._X, X_test)          # (n, m)
        mean = k_star.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, None
        v = solve_triangular(self._chol, k_star, lower=True)
        prior_var = self.kernel.diag(X_test)
        var = prior_var - np.sum(v ** 2, axis=0)
        if include_noise:
            var = var + self.noise_variance
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def posterior_covariance(self, X_test: np.ndarray) -> np.ndarray:
        """Full posterior covariance matrix at the test inputs."""
        if self._X is None or self._chol is None:
            raise RuntimeError("posterior_covariance() called before fit()")
        X_test = np.atleast_2d(np.asarray(X_test))
        k_star = self.kernel(self._X, X_test)
        v = solve_triangular(self._chol, k_star, lower=True)
        cov = self.kernel(X_test) - v.T @ v
        return cov * self._y_std ** 2

    def sample_prior(self, X: np.ndarray, num_samples: int = 1,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw function samples from the GP prior (used for Figure 2)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        X = np.atleast_2d(np.asarray(X))
        cov = self.kernel(X) + self.jitter * np.eye(X.shape[0])
        return rng.multivariate_normal(np.zeros(X.shape[0]), cov, size=num_samples)

    def sample_posterior(self, X: np.ndarray, num_samples: int = 1,
                         rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw function samples from the GP posterior (used for Figure 2)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        X = np.atleast_2d(np.asarray(X))
        mean, _ = self.predict(X, return_std=False)
        cov = self.posterior_covariance(X) + self.jitter * np.eye(X.shape[0])
        return rng.multivariate_normal(mean, cov, size=num_samples)

    # ------------------------------------------------------------------
    # Marginal likelihood (Equation 4) and hyperparameter fitting
    # ------------------------------------------------------------------
    def negative_log_marginal_likelihood(self) -> float:
        """NLL of the current fit (standardised targets)."""
        if self._chol is None or self._alpha is None or self._y is None:
            raise RuntimeError("negative_log_marginal_likelihood() called before fit()")
        n = self._y.shape[0]
        log_det = 2.0 * np.sum(np.log(np.diag(self._chol)))
        data_fit = float(self._y @ self._alpha)
        return 0.5 * (data_fit + log_det + n * np.log(2.0 * np.pi))

    def fit_hyperparameters(
        self,
        X: np.ndarray,
        y: np.ndarray,
        num_steps: int = 20,
        learning_rate: float = 0.05,
        param_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Fit kernel hyperparameters by projected Adam on the NLL.

        Parameters
        ----------
        param_names:
            Subset of kernel hyperparameters to optimise; defaults to all
            of them.  (BOiLS optimises ``theta_match``/``theta_gap``; the
            signal variance is kept fitted as well since targets are
            standardised.)

        Returns
        -------
        The fitted hyperparameter dictionary (also set on the kernel).
        """
        X = np.atleast_2d(np.asarray(X))
        y = np.asarray(y, dtype=float).ravel()
        names = list(param_names) if param_names is not None else self.kernel.param_names()
        bounds = self.kernel.param_bounds()
        lower = np.array([bounds[name][0] for name in names])
        upper = np.array([bounds[name][1] for name in names])

        def objective(vector: np.ndarray) -> float:
            self.kernel.set_params(**{name: float(v) for name, v in zip(names, vector)})
            self.fit(X, y)
            return self.negative_log_marginal_likelihood()

        x0 = np.array([self.kernel.get_params()[name] for name in names])
        optimiser = ProjectedAdam(lower, upper, learning_rate=learning_rate)
        x = optimiser.project(x0)
        best_x = x.copy()
        best_value = objective(x)
        for _ in range(num_steps):
            gradient = finite_difference_gradient(objective, x, lower, upper)
            x = optimiser.step(x, gradient)
            value = objective(x)
            if value < best_value:
                best_value = value
                best_x = x.copy()
        self.kernel.set_params(**{name: float(v) for name, v in zip(names, best_x)})
        self.fit(X, y)
        return self.kernel.get_params()
