"""Gaussian-process machinery used by BOiLS and the SBO baseline."""

from repro.gp.gp import GaussianProcess
from repro.gp.optim import ProjectedAdam
from repro.gp.kernels import (
    Kernel,
    SquaredExponentialKernel,
    Matern52Kernel,
    OverlapKernel,
    TransformedOverlapKernel,
    SubsequenceStringKernel,
)

__all__ = [
    "GaussianProcess",
    "ProjectedAdam",
    "Kernel",
    "SquaredExponentialKernel",
    "Matern52Kernel",
    "OverlapKernel",
    "TransformedOverlapKernel",
    "SubsequenceStringKernel",
]
