"""Kernel interface shared by all covariance functions."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

import numpy as np


class Kernel(ABC):
    """Abstract covariance function.

    A kernel owns a flat dictionary of named hyperparameters together with
    box bounds for each; gradient-free and gradient-based fitters both work
    through :meth:`get_params` / :meth:`set_params`, which keeps the
    fitting code independent of the specific kernel family.
    """

    def __init__(self) -> None:
        self._params: Dict[str, float] = {}
        self._bounds: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Hyperparameter management
    # ------------------------------------------------------------------
    def register_param(self, name: str, value: float, bounds: tuple) -> None:
        """Register a scalar hyperparameter with box bounds ``(low, high)``."""
        low, high = bounds
        self._params[name] = float(np.clip(value, low, high))
        self._bounds[name] = (float(low), float(high))

    def get_params(self) -> Dict[str, float]:
        """Current hyperparameter values."""
        return dict(self._params)

    def set_params(self, **values: float) -> None:
        """Update hyperparameters, clipping each to its registered bounds."""
        for name, value in values.items():
            if name not in self._params:
                raise KeyError(f"unknown hyperparameter {name!r}")
            low, high = self._bounds[name]
            self._params[name] = float(np.clip(value, low, high))

    def param_bounds(self) -> Dict[str, tuple]:
        """Box bounds per hyperparameter."""
        return dict(self._bounds)

    def param_names(self) -> List[str]:
        return list(self._params)

    def param_vector(self) -> np.ndarray:
        """Hyperparameters as a vector (ordered by :meth:`param_names`)."""
        return np.array([self._params[name] for name in self._params], dtype=float)

    def set_param_vector(self, vector: np.ndarray) -> None:
        """Set hyperparameters from a vector ordered like :meth:`param_names`."""
        names = self.param_names()
        if len(vector) != len(names):
            raise ValueError("hyperparameter vector has the wrong length")
        self.set_params(**{name: float(v) for name, v in zip(names, vector)})

    def bounds_arrays(self) -> tuple:
        """Lower/upper bound vectors matching :meth:`param_vector` order."""
        names = self.param_names()
        lows = np.array([self._bounds[name][0] for name in names], dtype=float)
        highs = np.array([self._bounds[name][1] for name in names], dtype=float)
        return lows, highs

    # ------------------------------------------------------------------
    # Covariance computation
    # ------------------------------------------------------------------
    @abstractmethod
    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Covariance matrix between rows of ``X`` and rows of ``Y``.

        ``Y=None`` means ``Y=X`` (the symmetric Gram matrix).
        """

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of the Gram matrix (defaults to the full computation)."""
        return np.diag(self(X))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        params = ", ".join(f"{k}={v:.4g}" for k, v in self._params.items())
        return f"{type(self).__name__}({params})"
