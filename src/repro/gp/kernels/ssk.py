"""Sub-sequence string kernel (SSK) over synthesis-operation sequences.

This is the logic-synthesis kernel ``k_LS`` of the BOiLS paper (Section
III-B1): sequences are compared through the weighted counts of the
sub-sequences they share,

    k(seq, seq') = Σ_{u ∈ Σ^≤ℓ}  c_u(seq) · c_u(seq'),

where the contribution of sub-sequence ``u`` to ``seq`` is

    c_u(seq) = θ_m^{|u|} · Σ_{i_1<…<i_|u|} θ_g^{gap(u, i)} · I_u(seq_i),

with ``gap(u, i) = i_|u| − i_1 + 1 − |u|`` (the number of skipped positions
inside the matching span), match decay ``θ_m ∈ [0, 1]`` and gap decay
``θ_g ∈ [0, 1]`` — exactly the weighting illustrated in the paper's
Table I.

The kernel matrix is computed with a vectorised dynamic program (the
standard gap-weighted subsequence DP, batched over all sequence pairs with
:func:`scipy.signal.lfilter` doing the discounted prefix sums), so fitting
a GP on a few hundred sequences stays fast in pure Python.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

import numpy as np
from scipy.signal import lfilter

from repro.gp.kernels.base import Kernel


# ----------------------------------------------------------------------
# Direct (reference) computation of c_u — used by tests and Table I
# ----------------------------------------------------------------------
def subsequence_contribution(
    u: Sequence, seq: Sequence, theta_match: float, theta_gap: float
) -> float:
    """Contribution ``c_u(seq)`` computed by direct enumeration.

    This is the textbook definition (exponential in ``|u|``); it serves as
    the ground truth for the DP implementation and reproduces the worked
    examples of the paper's Table I.
    """
    u = list(u)
    seq = list(seq)
    length = len(u)
    if length == 0 or length > len(seq):
        return 0.0
    total = 0.0
    for indices in combinations(range(len(seq)), length):
        if all(seq[idx] == u[pos] for pos, idx in enumerate(indices)):
            gap = indices[-1] - indices[0] + 1 - length
            total += theta_gap ** gap
    return (theta_match ** length) * total


def exact_kernel_value(
    seq_a: Sequence,
    seq_b: Sequence,
    theta_match: float,
    theta_gap: float,
    max_length: int,
    alphabet: Sequence,
) -> float:
    """Unnormalised kernel value by explicit feature enumeration (slow).

    Only practical for tiny alphabets / orders; used to validate the DP.
    """
    total = 0.0
    for length in range(1, max_length + 1):
        for u in _all_subsequences(alphabet, length):
            total += subsequence_contribution(u, seq_a, theta_match, theta_gap) * \
                subsequence_contribution(u, seq_b, theta_match, theta_gap)
    return total


def _all_subsequences(alphabet: Sequence, length: int):
    if length == 0:
        yield ()
        return
    for prefix in _all_subsequences(alphabet, length - 1):
        for symbol in alphabet:
            yield prefix + (symbol,)


# ----------------------------------------------------------------------
# Batched dynamic program
# ----------------------------------------------------------------------
def _discounted_cumsum(values: np.ndarray, decay: float, axis: int) -> np.ndarray:
    """``out[..., t] = Σ_{s ≤ t} decay^(t-s) · values[..., s]`` along ``axis``."""
    return lfilter([1.0], [1.0, -decay], values, axis=axis)


def ssk_gram(
    X: np.ndarray,
    Y: np.ndarray,
    theta_match: float,
    theta_gap: float,
    max_length: int,
) -> np.ndarray:
    """Unnormalised SSK Gram matrix between integer-encoded sequences.

    Parameters
    ----------
    X, Y:
        Arrays of shape ``(N, L)`` / ``(M, L')`` of integer symbols.
    """
    X = np.atleast_2d(np.asarray(X))
    Y = np.atleast_2d(np.asarray(Y))
    n, len_x = X.shape
    m, len_y = Y.shape
    # match[a, b, i, j] = 1 when X[a, i] == Y[b, j]
    match = (X[:, None, :, None] == Y[None, :, None, :]).astype(float)

    gram = np.zeros((n, m), dtype=float)
    # prev_d[a, b, i, j] = D_{p-1}[i, j]  (discounted prefix sums of M_{p-1})
    prev_d: Optional[np.ndarray] = None
    for p in range(1, max_length + 1):
        if p == 1:
            m_p = match.copy()
        else:
            assert prev_d is not None
            shifted = np.zeros_like(prev_d)
            shifted[:, :, 1:, 1:] = prev_d[:, :, :-1, :-1]
            m_p = match * shifted
        gram += (theta_match ** (2 * p)) * m_p.sum(axis=(2, 3))
        if p < max_length:
            inner = _discounted_cumsum(m_p, theta_gap, axis=2)
            prev_d = _discounted_cumsum(inner, theta_gap, axis=3)
    return gram


def ssk_diag(X: np.ndarray, theta_match: float, theta_gap: float, max_length: int) -> np.ndarray:
    """Diagonal ``k(x, x)`` values, computed pairwise on matched rows."""
    X = np.atleast_2d(np.asarray(X))
    n, length = X.shape
    match = (X[:, :, None] == X[:, None, :]).astype(float)
    diag = np.zeros(n, dtype=float)
    prev_d: Optional[np.ndarray] = None
    for p in range(1, max_length + 1):
        if p == 1:
            m_p = match.copy()
        else:
            assert prev_d is not None
            shifted = np.zeros_like(prev_d)
            shifted[:, 1:, 1:] = prev_d[:, :-1, :-1]
            m_p = match * shifted
        diag += (theta_match ** (2 * p)) * m_p.sum(axis=(1, 2))
        if p < max_length:
            inner = _discounted_cumsum(m_p, theta_gap, axis=1)
            prev_d = _discounted_cumsum(inner, theta_gap, axis=2)
    return diag


class SubsequenceStringKernel(Kernel):
    """The BOiLS sequence kernel with learnable match/gap decays.

    Parameters
    ----------
    max_subsequence_length:
        Order ℓ of the kernel (longest sub-sequence counted).
    theta_match, theta_gap:
        Initial decay hyperparameters, both constrained to ``[0, 1]`` and
        fitted by projected gradient (Adam) on the GP marginal likelihood.
    normalize:
        When ``True`` (default) the kernel is cosine-normalised,
        ``k(x,y)/√(k(x,x)k(y,y))``, which removes the trivial dependence on
        how many repeated symbols a sequence contains.
    variance:
        Output scale multiplying the (optionally normalised) kernel.
    """

    def __init__(
        self,
        max_subsequence_length: int = 3,
        theta_match: float = 0.8,
        theta_gap: float = 0.8,
        normalize: bool = True,
        variance: float = 1.0,
    ) -> None:
        super().__init__()
        if max_subsequence_length < 1:
            raise ValueError("max_subsequence_length must be at least 1")
        self.max_subsequence_length = max_subsequence_length
        self.normalize = normalize
        # The paper constrains both decays to [0, 1]; we stay strictly
        # inside the box to keep the Gram matrix well-conditioned.
        self.register_param("theta_match", theta_match, (1e-3, 1.0))
        self.register_param("theta_gap", theta_gap, (1e-3, 1.0))
        self.register_param("variance", variance, (1e-6, 1e3))

    # ------------------------------------------------------------------
    def contribution(self, u: Sequence, seq: Sequence) -> float:
        """Expose ``c_u(seq)`` with the kernel's current hyperparameters."""
        return subsequence_contribution(
            u, seq, self._params["theta_match"], self._params["theta_gap"]
        )

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        symmetric = Y is None
        Y = X if symmetric else np.atleast_2d(np.asarray(Y))
        theta_m = self._params["theta_match"]
        theta_g = self._params["theta_gap"]
        gram = ssk_gram(X, Y, theta_m, theta_g, self.max_subsequence_length)
        if self.normalize:
            diag_x = ssk_diag(X, theta_m, theta_g, self.max_subsequence_length)
            diag_y = diag_x if symmetric else ssk_diag(
                Y, theta_m, theta_g, self.max_subsequence_length
            )
            denom = np.sqrt(np.outer(np.maximum(diag_x, 1e-12), np.maximum(diag_y, 1e-12)))
            gram = gram / denom
        return self._params["variance"] * gram

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        if self.normalize:
            return np.full(X.shape[0], self._params["variance"])
        theta_m = self._params["theta_match"]
        theta_g = self._params["theta_gap"]
        return self._params["variance"] * ssk_diag(
            X, theta_m, theta_g, self.max_subsequence_length
        )
