"""Sub-sequence string kernel (SSK) over synthesis-operation sequences.

This is the logic-synthesis kernel ``k_LS`` of the BOiLS paper (Section
III-B1): sequences are compared through the weighted counts of the
sub-sequences they share,

    k(seq, seq') = Σ_{u ∈ Σ^≤ℓ}  c_u(seq) · c_u(seq'),

where the contribution of sub-sequence ``u`` to ``seq`` is

    c_u(seq) = θ_m^{|u|} · Σ_{i_1<…<i_|u|} θ_g^{gap(u, i)} · I_u(seq_i),

with ``gap(u, i) = i_|u| − i_1 + 1 − |u|`` (the number of skipped positions
inside the matching span), match decay ``θ_m ∈ [0, 1]`` and gap decay
``θ_g ∈ [0, 1]`` — exactly the weighting illustrated in the paper's
Table I.

The kernel matrix is computed with a vectorised dynamic program (the
standard gap-weighted subsequence DP, batched over all sequence pairs with
:func:`scipy.signal.lfilter` doing the discounted prefix sums), so fitting
a GP on a few hundred sequences stays fast in pure Python.

Hot-path structure
------------------
The DP factors into a theta-independent part and two cheap theta
contractions:

* the *match tensor* ``M[a, b, i, j] = [X[a, i] == Y[b, j]]`` depends only
  on the sequences;
* for a fixed gap decay ``θ_g`` the per-order plane sums
  ``T_p[a, b] = Σ_{i,j} M_p[a, b, i, j]`` depend on ``(X, Y, θ_g)`` but
  not on the match decay;
* the Gram is then just ``Σ_p θ_m^{2p} · T_p`` — a few scalar-times-matrix
  accumulations.

:class:`SubsequenceStringKernel` caches both layers per training set, so
the ``~5·steps`` objective evaluations of a projected-Adam fit rebuild
nothing for unchanged ``θ_g`` (finite-difference probes of ``θ_m`` are
almost free) and only rerun the DP for new gap decays.  The symmetric
train Gram runs the DP on upper-triangle planes only and mirrors the
result.  The pre-caching implementation is preserved in
:mod:`repro.gp.kernels._reference` and the equivalence suite pins the two
against each other.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gp.kernels.base import Kernel


# ----------------------------------------------------------------------
# Direct (reference) computation of c_u — used by tests and Table I
# ----------------------------------------------------------------------
def subsequence_contribution(
    u: Sequence, seq: Sequence, theta_match: float, theta_gap: float
) -> float:
    """Contribution ``c_u(seq)`` computed by direct enumeration.

    This is the textbook definition (exponential in ``|u|``); it serves as
    the ground truth for the DP implementation and reproduces the worked
    examples of the paper's Table I.
    """
    u = list(u)
    seq = list(seq)
    length = len(u)
    if length == 0 or length > len(seq):
        return 0.0
    total = 0.0
    for indices in combinations(range(len(seq)), length):
        if all(seq[idx] == u[pos] for pos, idx in enumerate(indices)):
            gap = indices[-1] - indices[0] + 1 - length
            total += theta_gap ** gap
    return (theta_match ** length) * total


def exact_kernel_value(
    seq_a: Sequence,
    seq_b: Sequence,
    theta_match: float,
    theta_gap: float,
    max_length: int,
    alphabet: Sequence,
) -> float:
    """Unnormalised kernel value by explicit feature enumeration (slow).

    Only practical for tiny alphabets / orders; used to validate the DP.
    """
    total = 0.0
    for length in range(1, max_length + 1):
        for u in _all_subsequences(alphabet, length):
            total += subsequence_contribution(u, seq_a, theta_match, theta_gap) * \
                subsequence_contribution(u, seq_b, theta_match, theta_gap)
    return total


def _all_subsequences(alphabet: Sequence, length: int):
    if length == 0:
        yield ()
        return
    for prefix in _all_subsequences(alphabet, length - 1):
        for symbol in alphabet:
            yield prefix + (symbol,)


# ----------------------------------------------------------------------
# Batched dynamic program
# ----------------------------------------------------------------------
def _discounted_cumsum(values: np.ndarray, decay: float, axis: int) -> np.ndarray:
    """``out[..., t] = Σ_{s ≤ t} decay^(t-s) · values[..., s]`` along ``axis``.

    Plain strided recursion ``y[t] = x[t] + decay · y[t-1]``.  This is the
    same float-operation sequence as ``scipy.signal.lfilter([1], [1, -g])``
    (direct form II transposed with ``b0 = 1``), so the output is
    bit-identical to the reference implementation's — but without
    lfilter's internal axis shuffling it runs ~3× faster on the short
    sequence lengths this kernel sees.
    """
    out = values.copy()
    view = np.moveaxis(out, axis, 0)
    for t in range(1, view.shape[0]):
        view[t] += decay * view[t - 1]
    return out


def _plane_order_sums(
    match: np.ndarray, theta_gap: float, max_length: int
) -> List[np.ndarray]:
    """Per-order plane sums ``T_p[pair] = Σ_{i,j} M_p[pair, i, j]``.

    ``match`` is a stack of ``(L, L')`` match planes (one per sequence
    pair).  The DP is the gap-weighted subsequence recursion; every float
    operation matches the reference implementation elementwise, so the
    returned sums are bit-identical to accumulating the reference
    ``m_p.sum`` terms.  Only ``theta_gap`` enters here — the match decay
    is applied later as a scalar contraction.
    """
    sums: List[np.ndarray] = []
    prev_d: Optional[np.ndarray] = None
    for p in range(1, max_length + 1):
        if p == 1:
            m_p = match
        else:
            assert prev_d is not None
            m_p = np.zeros_like(match)
            np.multiply(match[:, 1:, 1:], prev_d[:, :-1, :-1], out=m_p[:, 1:, 1:])
        sums.append(m_p.sum(axis=(1, 2)))
        if p < max_length:
            inner = _discounted_cumsum(m_p, theta_gap, axis=1)
            prev_d = _discounted_cumsum(inner, theta_gap, axis=2)
    return sums


def _contract_order_sums(sums: Sequence[np.ndarray], theta_match: float) -> np.ndarray:
    """``Σ_p θ_m^{2p} · T_p`` with the reference accumulation order."""
    total = np.zeros_like(sums[0])
    for p, plane_sum in enumerate(sums, start=1):
        total += (theta_match ** (2 * p)) * plane_sum
    return total


def _cross_match_planes(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Match planes for every (row of X, row of Y) pair: ``(N·M, L, L')``."""
    n, len_x = X.shape
    m, len_y = Y.shape
    match = (X[:, None, :, None] == Y[None, :, None, :]).astype(float)
    return match.reshape(n * m, len_x, len_y)


def _diag_match_planes(X: np.ndarray) -> np.ndarray:
    """Match planes of every row against itself: ``(N, L, L)``."""
    return (X[:, :, None] == X[:, None, :]).astype(float)


def ssk_gram(
    X: np.ndarray,
    Y: np.ndarray,
    theta_match: float,
    theta_gap: float,
    max_length: int,
) -> np.ndarray:
    """Unnormalised SSK Gram matrix between integer-encoded sequences.

    Parameters
    ----------
    X, Y:
        Arrays of shape ``(N, L)`` / ``(M, L')`` of integer symbols.
    """
    X = np.atleast_2d(np.asarray(X))
    Y = np.atleast_2d(np.asarray(Y))
    n = X.shape[0]
    m = Y.shape[0]
    sums = _plane_order_sums(_cross_match_planes(X, Y), theta_gap, max_length)
    return _contract_order_sums(sums, theta_match).reshape(n, m)


def ssk_diag(X: np.ndarray, theta_match: float, theta_gap: float, max_length: int) -> np.ndarray:
    """Diagonal ``k(x, x)`` values, computed pairwise on matched rows."""
    X = np.atleast_2d(np.asarray(X))
    sums = _plane_order_sums(_diag_match_planes(X), theta_gap, max_length)
    return _contract_order_sums(sums, theta_match)


class SubsequenceStringKernel(Kernel):
    """The BOiLS sequence kernel with learnable match/gap decays.

    Parameters
    ----------
    max_subsequence_length:
        Order ℓ of the kernel (longest sub-sequence counted).
    theta_match, theta_gap:
        Initial decay hyperparameters, both constrained to ``[0, 1]`` and
        fitted by projected gradient (Adam) on the GP marginal likelihood.
    normalize:
        When ``True`` (default) the kernel is cosine-normalised,
        ``k(x,y)/√(k(x,x)k(y,y))``, which removes the trivial dependence on
        how many repeated symbols a sequence contains.
    variance:
        Output scale multiplying the (optionally normalised) kernel.

    Notes
    -----
    Symmetric Gram computations cache the theta-independent match tensor
    per input set and the per-order plane sums per gap decay (see the
    module docstring), so repeated evaluations during hyperparameter
    fitting only pay for genuinely new ``θ_g`` values.  The symmetric
    Gram is computed on upper-triangle pairs and mirrored: entries on and
    above the diagonal are bit-identical to the reference implementation,
    and the mirrored lower triangle repairs the reference's ulp-level
    asymmetry (it summed each transposed plane in a different order).
    """

    #: Bound on cached ``(X, Y)`` match-tensor states (LRU).
    MAX_MATCH_STATES = 4
    #: Bound on cached per-``θ_g`` order-sum lists per state (FIFO).
    MAX_GAP_SUMS = 160

    def __init__(
        self,
        max_subsequence_length: int = 3,
        theta_match: float = 0.8,
        theta_gap: float = 0.8,
        normalize: bool = True,
        variance: float = 1.0,
    ) -> None:
        super().__init__()
        if max_subsequence_length < 1:
            raise ValueError("max_subsequence_length must be at least 1")
        self.max_subsequence_length = max_subsequence_length
        self.normalize = normalize
        # The paper constrains both decays to [0, 1]; we stay strictly
        # inside the box to keep the Gram matrix well-conditioned.
        self.register_param("theta_match", theta_match, (1e-3, 1.0))
        self.register_param("theta_gap", theta_gap, (1e-3, 1.0))
        self.register_param("variance", variance, (1e-6, 1e3))
        # key -> {"match": planes, "sums": OrderedDict theta_gap -> [T_p]}
        # ("sym" states additionally carry the triangle indices).
        self._match_states: "OrderedDict[tuple, dict]" = OrderedDict()

    # ------------------------------------------------------------------
    # Match-tensor cache
    # ------------------------------------------------------------------
    @staticmethod
    def _data_key(X: np.ndarray) -> Tuple:
        return (X.shape, X.dtype.str, X.tobytes())

    def clear_cache(self) -> None:
        """Drop all cached match tensors and order sums."""
        self._match_states.clear()

    def _state(self, kind: str, X: np.ndarray) -> dict:
        """Cached theta-independent state for a symmetric or diag workload."""
        key = (kind, self._data_key(X))
        state = self._match_states.get(key)
        if state is None:
            if kind == "sym":
                n = X.shape[0]
                iu, ju = np.triu_indices(n)
                match = (X[iu][:, :, None] == X[ju][:, None, :]).astype(float)
                state = {"match": match, "iu": iu, "ju": ju, "n": n,
                         "sums": OrderedDict()}
            else:
                state = {"match": _diag_match_planes(X), "sums": OrderedDict()}
            self._match_states[key] = state
            while len(self._match_states) > self.MAX_MATCH_STATES:
                self._match_states.popitem(last=False)
        else:
            self._match_states.move_to_end(key)
        return state

    def _order_sums(self, state: dict, theta_gap: float) -> List[np.ndarray]:
        sums = state["sums"].get(theta_gap)
        if sums is None:
            sums = _plane_order_sums(state["match"], theta_gap,
                                     self.max_subsequence_length)
            state["sums"][theta_gap] = sums
            while len(state["sums"]) > self.MAX_GAP_SUMS:
                state["sums"].popitem(last=False)
        return sums

    def _sym_gram_and_diag(
        self, X: np.ndarray, theta_m: float, theta_g: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetric unnormalised Gram plus its diagonal, from the cache."""
        state = self._state("sym", X)
        values = _contract_order_sums(self._order_sums(state, theta_g), theta_m)
        n = state["n"]
        iu, ju = state["iu"], state["ju"]
        gram = np.zeros((n, n), dtype=float)
        gram[iu, ju] = values
        gram[ju, iu] = values
        return gram, values[iu == ju]

    def _diag_values(self, X: np.ndarray, theta_m: float, theta_g: float) -> np.ndarray:
        state = self._state("diag", X)
        return _contract_order_sums(self._order_sums(state, theta_g), theta_m)

    # ------------------------------------------------------------------
    def contribution(self, u: Sequence, seq: Sequence) -> float:
        """Expose ``c_u(seq)`` with the kernel's current hyperparameters."""
        return subsequence_contribution(
            u, seq, self._params["theta_match"], self._params["theta_gap"]
        )

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        symmetric = Y is None
        theta_m = self._params["theta_match"]
        theta_g = self._params["theta_gap"]
        if symmetric:
            gram, diag_x = self._sym_gram_and_diag(X, theta_m, theta_g)
            diag_y = diag_x
        else:
            Y = np.atleast_2d(np.asarray(Y))
            # Candidate batches change on every prediction call, so the
            # cross Gram is computed transiently (no cache); the training
            # side's diagonal still comes from the cache below.
            gram = ssk_gram(X, Y, theta_m, theta_g, self.max_subsequence_length)
        if self.normalize:
            if not symmetric:
                diag_x = self._diag_values(X, theta_m, theta_g)
                diag_y = self._diag_values(Y, theta_m, theta_g)
            denom = np.sqrt(np.outer(np.maximum(diag_x, 1e-12), np.maximum(diag_y, 1e-12)))
            gram = gram / denom
        return self._params["variance"] * gram

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        if self.normalize:
            return np.full(X.shape[0], self._params["variance"])
        theta_m = self._params["theta_match"]
        theta_g = self._params["theta_gap"]
        return self._params["variance"] * self._diag_values(X, theta_m, theta_g)
