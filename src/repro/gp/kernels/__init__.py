"""Covariance kernels.

Two families are provided:

* continuous kernels over real vectors (squared exponential with ARD,
  Matérn 5/2) — used by the SBO baseline on one-hot encodings and by the
  Figure 2 GP illustration;
* categorical / sequence kernels over integer-encoded operation sequences
  (overlap, transformed overlap, and the sub-sequence string kernel that
  is the heart of BOiLS).
"""

from repro.gp.kernels.base import Kernel
from repro.gp.kernels.continuous import Matern52Kernel, SquaredExponentialKernel
from repro.gp.kernels.categorical import OverlapKernel, TransformedOverlapKernel
from repro.gp.kernels.ssk import SubsequenceStringKernel, subsequence_contribution

__all__ = [
    "Kernel",
    "SquaredExponentialKernel",
    "Matern52Kernel",
    "OverlapKernel",
    "TransformedOverlapKernel",
    "SubsequenceStringKernel",
    "subsequence_contribution",
]
