"""Categorical kernels over integer-encoded operation sequences.

These kernels treat a synthesis sequence as a vector of ``K`` categorical
variables (one per position) and measure similarity positionally — they
have no notion of sub-sequences or shifts, which is exactly the modelling
gap BOiLS's string kernel fills.  The *overlap* kernel is the categorical
analogue of an indicator/Hamming kernel; the *transformed overlap* kernel
(used by CoCaBO / Casmopolitan-style combinatorial BO, reference [16] of
the paper) exponentiates a length-scaled overlap so that the GP can tune
how quickly correlation decays with Hamming distance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gp.kernels.base import Kernel


def _match_counts(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Matrix of per-pair position-match counts."""
    X = np.atleast_2d(np.asarray(X))
    Y = np.atleast_2d(np.asarray(Y))
    return np.sum(X[:, None, :] == Y[None, :, :], axis=2).astype(float)


class OverlapKernel(Kernel):
    """Normalised overlap (1 − Hamming/K) kernel with a signal variance."""

    def __init__(self, sequence_length: int, variance: float = 1.0) -> None:
        super().__init__()
        self.sequence_length = sequence_length
        self.register_param("variance", variance, (1e-6, 1e3))

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        Y = X if Y is None else Y
        matches = _match_counts(X, Y)
        return self._params["variance"] * matches / self.sequence_length

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        return np.full(X.shape[0], self._params["variance"])


class TransformedOverlapKernel(Kernel):
    """Exponentiated overlap kernel ``σ² exp(ℓ · overlap) / exp(ℓ)``.

    With length-scale ``ℓ`` the kernel interpolates between an almost flat
    similarity (small ℓ) and a sharply local one (large ℓ); the division by
    ``exp(ℓ)`` keeps the diagonal equal to ``σ²``.
    """

    def __init__(self, sequence_length: int, lengthscale: float = 1.0,
                 variance: float = 1.0) -> None:
        super().__init__()
        self.sequence_length = sequence_length
        self.register_param("lengthscale", lengthscale, (1e-2, 20.0))
        self.register_param("variance", variance, (1e-6, 1e3))

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        Y = X if Y is None else Y
        overlap = _match_counts(X, Y) / self.sequence_length
        ell = self._params["lengthscale"]
        return self._params["variance"] * np.exp(ell * overlap) / np.exp(ell)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        return np.full(X.shape[0], self._params["variance"])
