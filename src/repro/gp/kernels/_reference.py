"""Reference (pre-optimisation) SSK Gram computation, kept for tests.

Preserves the original full-tensor dynamic program exactly as it shipped
before the match-tensor caching rework of :mod:`repro.gp.kernels.ssk`.
The golden equivalence suite asserts the optimised Gram is bit-identical
to this one; the GP-fitting benchmark measures the speedup ratio the CI
perf gate tracks.  Do not optimise this file.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.signal import lfilter

from repro.gp.kernels.ssk import SubsequenceStringKernel


def _discounted_cumsum(values: np.ndarray, decay: float, axis: int) -> np.ndarray:
    return lfilter([1.0], [1.0, -decay], values, axis=axis)


def ssk_gram_reference(
    X: np.ndarray,
    Y: np.ndarray,
    theta_match: float,
    theta_gap: float,
    max_length: int,
) -> np.ndarray:
    """The original (N, M, L, L') full-tensor DP, rebuilt on every call."""
    X = np.atleast_2d(np.asarray(X))
    Y = np.atleast_2d(np.asarray(Y))
    n, len_x = X.shape
    m, len_y = Y.shape
    match = (X[:, None, :, None] == Y[None, :, None, :]).astype(float)

    gram = np.zeros((n, m), dtype=float)
    prev_d: Optional[np.ndarray] = None
    for p in range(1, max_length + 1):
        if p == 1:
            m_p = match.copy()
        else:
            assert prev_d is not None
            shifted = np.zeros_like(prev_d)
            shifted[:, :, 1:, 1:] = prev_d[:, :, :-1, :-1]
            m_p = match * shifted
        gram += (theta_match ** (2 * p)) * m_p.sum(axis=(2, 3))
        if p < max_length:
            inner = _discounted_cumsum(m_p, theta_gap, axis=2)
            prev_d = _discounted_cumsum(inner, theta_gap, axis=3)
    return gram


def ssk_diag_reference(
    X: np.ndarray, theta_match: float, theta_gap: float, max_length: int
) -> np.ndarray:
    """The original per-row diagonal DP, rebuilt on every call."""
    X = np.atleast_2d(np.asarray(X))
    n, length = X.shape
    match = (X[:, :, None] == X[:, None, :]).astype(float)
    diag = np.zeros(n, dtype=float)
    prev_d: Optional[np.ndarray] = None
    for p in range(1, max_length + 1):
        if p == 1:
            m_p = match.copy()
        else:
            assert prev_d is not None
            shifted = np.zeros_like(prev_d)
            shifted[:, 1:, 1:] = prev_d[:, :-1, :-1]
            m_p = match * shifted
        diag += (theta_match ** (2 * p)) * m_p.sum(axis=(1, 2))
        if p < max_length:
            inner = _discounted_cumsum(m_p, theta_gap, axis=1)
            prev_d = _discounted_cumsum(inner, theta_gap, axis=2)
    return diag


class ReferenceSubsequenceStringKernel(SubsequenceStringKernel):
    """SSK kernel evaluated through the uncached reference DP."""

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        symmetric = Y is None
        Y = X if symmetric else np.atleast_2d(np.asarray(Y))
        theta_m = self._params["theta_match"]
        theta_g = self._params["theta_gap"]
        gram = ssk_gram_reference(X, Y, theta_m, theta_g, self.max_subsequence_length)
        if self.normalize:
            diag_x = ssk_diag_reference(X, theta_m, theta_g, self.max_subsequence_length)
            diag_y = diag_x if symmetric else ssk_diag_reference(
                Y, theta_m, theta_g, self.max_subsequence_length
            )
            denom = np.sqrt(np.outer(np.maximum(diag_x, 1e-12), np.maximum(diag_y, 1e-12)))
            gram = gram / denom
        return self._params["variance"] * gram

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X))
        if self.normalize:
            return np.full(X.shape[0], self._params["variance"])
        theta_m = self._params["theta_match"]
        theta_g = self._params["theta_gap"]
        return self._params["variance"] * ssk_diag_reference(
            X, theta_m, theta_g, self.max_subsequence_length
        )
