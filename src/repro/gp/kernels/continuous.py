"""Continuous-input kernels: squared exponential (ARD) and Matérn 5/2.

These are the standard BO kernels referenced in Section III-A of the paper
(Equation for ``k_SE`` and the mention of Matérn 5/2); in this reproduction
they drive the SBO baseline (over one-hot sequence encodings) and the
Figure 2 GP prior/posterior illustration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gp.kernels.base import Kernel


def _pairwise_sq_dists(X: np.ndarray, Y: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances after per-dimension length-scale division."""
    Xs = X / lengthscales
    Ys = Y / lengthscales
    x_norm = np.sum(Xs ** 2, axis=1)[:, None]
    y_norm = np.sum(Ys ** 2, axis=1)[None, :]
    sq = x_norm + y_norm - 2.0 * Xs @ Ys.T
    return np.maximum(sq, 0.0)


class SquaredExponentialKernel(Kernel):
    """ARD squared-exponential kernel ``σ² exp(-r²/2)``.

    Parameters
    ----------
    input_dim:
        Number of input dimensions (one length-scale per dimension).
    lengthscale:
        Initial length-scale shared by all dimensions.
    variance:
        Initial signal variance σ².
    """

    def __init__(self, input_dim: int, lengthscale: float = 1.0, variance: float = 1.0) -> None:
        super().__init__()
        self.input_dim = input_dim
        for d in range(input_dim):
            self.register_param(f"lengthscale_{d}", lengthscale, (1e-3, 1e3))
        self.register_param("variance", variance, (1e-6, 1e3))

    def _lengthscales(self) -> np.ndarray:
        return np.array(
            [self._params[f"lengthscale_{d}"] for d in range(self.input_dim)], dtype=float
        )

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = X if Y is None else np.atleast_2d(np.asarray(Y, dtype=float))
        sq = _pairwise_sq_dists(X, Y, self._lengthscales())
        return self._params["variance"] * np.exp(-0.5 * sq)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.full(X.shape[0], self._params["variance"])


class Matern52Kernel(Kernel):
    """ARD Matérn-5/2 kernel, the other common BO default."""

    def __init__(self, input_dim: int, lengthscale: float = 1.0, variance: float = 1.0) -> None:
        super().__init__()
        self.input_dim = input_dim
        for d in range(input_dim):
            self.register_param(f"lengthscale_{d}", lengthscale, (1e-3, 1e3))
        self.register_param("variance", variance, (1e-6, 1e3))

    def _lengthscales(self) -> np.ndarray:
        return np.array(
            [self._params[f"lengthscale_{d}"] for d in range(self.input_dim)], dtype=float
        )

    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = X if Y is None else np.atleast_2d(np.asarray(Y, dtype=float))
        sq = _pairwise_sq_dists(X, Y, self._lengthscales())
        r = np.sqrt(sq)
        sqrt5_r = np.sqrt(5.0) * r
        poly = 1.0 + sqrt5_r + 5.0 / 3.0 * sq
        return self._params["variance"] * poly * np.exp(-sqrt5_r)

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.full(X.shape[0], self._params["variance"])
