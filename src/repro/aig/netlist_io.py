"""Shared tokenisation and elaboration helpers for netlist file formats.

The BLIF (:mod:`repro.aig.blif`) and ISCAS ``.bench``
(:mod:`repro.aig.bench`) parsers share the same low-level needs: iterate
over *logical* lines (comments stripped, ``\\`` continuations joined,
blank lines skipped) while remembering source line numbers for error
messages, and elaborate a name-based signal graph into an :class:`AIG`
in dependency order regardless of the textual order of definitions.
Both live here so the two parsers stay thin format front-ends.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.aig.graph import AIG, Literal


class NetlistFormatError(ValueError):
    """Base class for netlist parse errors (BLIF, bench)."""


def logical_lines(
    text: str,
    comment_prefixes: Sequence[str] = ("#",),
    continuation: str = "\\",
) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, text)`` pairs of non-empty logical lines.

    ``line_number`` is the 1-based number of the *first* physical line of
    the logical line (continuations extend it).  Comments run from any of
    ``comment_prefixes`` to the end of the physical line and are removed
    before continuation handling, matching BLIF semantics where a
    comment line inside a continued cover terminates nothing.
    """
    pending: List[str] = []
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw
        for prefix in comment_prefixes:
            cut = line.find(prefix)
            if cut != -1:
                line = line[:cut]
        line = line.rstrip()
        if not line and pending:
            # A comment-only or blank physical line inside a continued
            # logical line must not terminate it.
            continue
        continued = continuation and line.endswith(continuation)
        if continued:
            line = line[: -len(continuation)]
        if not pending:
            pending_start = number
        pending.append(line)
        if continued:
            continue
        joined = " ".join(part for part in pending if part).strip()
        pending = []
        if joined:
            yield pending_start, joined
    if pending:
        joined = " ".join(part for part in pending if part).strip()
        if joined:
            # A trailing continuation with nothing after it is tolerated.
            yield pending_start, joined


def assign_signal_names(
    aig: AIG,
    safe_token: "re.Pattern[str]",
) -> Tuple[Dict[int, str], List[str], Callable[[Optional[str], str], str]]:
    """Stable, collision-free textual names for a writer's signals.

    Returns ``(by_var, po_names, claim)``: a name per variable (PIs keep
    their symbolic names when they are valid ``safe_token``s, AND nodes
    get ``n<var>``), one name per primary output (symbolic or ``y<i>``),
    and the ``claim(preferred, fallback)`` function itself so writers
    can reserve further collision-free names (e.g. for inverter or
    constant helper gates).  Collisions fall back to the canonical name,
    then numbered variants — shared by the BLIF and bench writers so
    both resolve clashes the same way.
    """
    used: set = set()

    def claim(preferred: Optional[str], fallback: str) -> str:
        candidate = (preferred if preferred and safe_token.match(preferred)
                     else fallback)
        if candidate in used:
            candidate = fallback
        suffix = 0
        while candidate in used:
            suffix += 1
            candidate = f"{fallback}_{suffix}"
        used.add(candidate)
        return candidate

    by_var: Dict[int, str] = {}
    for index, pi_var in enumerate(aig.pis):
        by_var[pi_var] = claim(aig.node(pi_var).name, f"x{index}")
    for node in aig.and_nodes():
        by_var[node.var] = claim(None, f"n{node.var}")
    po_names = [claim(po_name, f"y{index}")
                for index, po_name in enumerate(aig.po_names)]
    return by_var, po_names, claim


class SignalGraph:
    """Name-based combinational signal graph elaborated into an AIG.

    Parsers register every named signal definition up front, then
    :meth:`elaborate` resolves names in dependency order (definitions may
    appear in any textual order), detects combinational cycles and
    undefined signals, and builds the AIG through a caller-supplied
    gate-construction callback.

    Parameters
    ----------
    kind:
        Format name used in error messages (``"BLIF"``, ``"bench"``).
    error_class:
        Exception class raised on cycles / undefined signals.
    """

    def __init__(self, kind: str, error_class: type = NetlistFormatError) -> None:
        self.kind = kind
        self.error_class = error_class
        self._definitions: Dict[str, Tuple[Tuple[str, ...], object]] = {}
        self._literals: Dict[str, Literal] = {}

    # ------------------------------------------------------------------
    def define_input(self, name: str, literal: Literal) -> None:
        """Bind an already-created PI (or constant) literal to ``name``."""
        if name in self._literals or name in self._definitions:
            raise self.error_class(
                f"{self.kind}: signal {name!r} is defined more than once")
        self._literals[name] = literal

    def define_gate(self, name: str, fanins: Sequence[str], payload: object) -> None:
        """Register a gate definition to be built during elaboration.

        ``payload`` is passed through to the build callback untouched
        (a gate type for bench, a cover for BLIF).
        """
        if name in self._literals or name in self._definitions:
            raise self.error_class(
                f"{self.kind}: signal {name!r} is defined more than once")
        self._definitions[name] = (tuple(fanins), payload)

    def is_defined(self, name: str) -> bool:
        return name in self._literals or name in self._definitions

    # ------------------------------------------------------------------
    def elaborate(
        self,
        aig: AIG,
        build: Callable[[AIG, object, List[Literal]], Literal],
    ) -> None:
        """Build every registered gate into ``aig`` in dependency order.

        ``build(aig, payload, fanin_literals)`` must return the gate's
        output literal.  Raises on undefined signals and combinational
        cycles, naming the offending signal.
        """
        # Iterative post-order walk: imported circuits can have gate
        # chains deeper than Python's recursion limit.
        in_progress: Dict[str, bool] = {}
        for root in self._definitions:
            if root in self._literals:
                continue
            stack: List[Tuple[str, bool]] = [(root, False)]
            while stack:
                name, expanded = stack.pop()
                if name in self._literals:
                    continue
                if name not in self._definitions:
                    raise self.error_class(
                        f"{self.kind}: signal {name!r} is used but never defined")
                fanins, payload = self._definitions[name]
                if expanded:
                    in_progress.pop(name, None)
                    literals = [self._literals[fanin] for fanin in fanins]
                    self._literals[name] = build(aig, payload, literals)
                    continue
                if name in in_progress:
                    raise self.error_class(
                        f"{self.kind}: combinational cycle through {name!r}")
                in_progress[name] = True
                stack.append((name, True))
                for fanin in fanins:
                    if fanin not in self._literals:
                        stack.append((fanin, False))

    def literal(self, name: str) -> Literal:
        """Literal of an elaborated (or input) signal."""
        try:
            return self._literals[name]
        except KeyError:
            raise self.error_class(
                f"{self.kind}: signal {name!r} is never defined") from None
