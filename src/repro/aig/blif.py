"""BLIF (Berkeley Logic Interchange Format) reader / writer.

Supports the combinational subset of BLIF used by logic-synthesis
benchmark suites: ``.model`` / ``.inputs`` / ``.outputs`` / ``.names``
(single-output SOP covers with ``0``/``1``/``-`` input columns) and
``.end``.  Latches (``.latch``) and subcircuits (``.subckt``) are
rejected with a clear error — the BOiLS experiments operate on
combinational circuits only.  ``.names`` blocks may appear in any order;
elaboration resolves dependencies topologically and reports
combinational cycles by signal name.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.aig.graph import AIG, CONST0, CONST1, Literal, lit_is_compl, lit_not, lit_var
from repro.aig.netlist_io import (
    NetlistFormatError,
    SignalGraph,
    assign_signal_names,
    logical_lines,
)


class BlifError(NetlistFormatError):
    """Raised when a BLIF file cannot be parsed."""


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
#: One SOP cover: list of (input_pattern, output_value) rows.
_Cover = List[Tuple[str, str]]


def read_blif_string(text: str, name: str = "blif") -> AIG:
    """Parse BLIF text into an :class:`AIG`."""
    model_name: Optional[str] = None
    inputs: List[str] = []
    outputs: List[str] = []
    # name -> (fanin names, cover rows); built after the full scan.
    covers: List[Tuple[int, List[str], str, _Cover]] = []
    current: Optional[Tuple[int, List[str], str, _Cover]] = None
    ended = False

    for number, line in logical_lines(text):
        tokens = line.split()
        keyword = tokens[0]
        if ended:
            raise BlifError(f"BLIF line {number}: content after .end")
        if keyword.startswith("."):
            current = None
            if keyword == ".model":
                if model_name is not None:
                    raise BlifError(
                        f"BLIF line {number}: multiple .model declarations "
                        "(hierarchical BLIF is not supported)")
                model_name = tokens[1] if len(tokens) > 1 else name
            elif keyword == ".inputs":
                inputs.extend(tokens[1:])
            elif keyword == ".outputs":
                outputs.extend(tokens[1:])
            elif keyword == ".names":
                if len(tokens) < 2:
                    raise BlifError(f"BLIF line {number}: .names needs a signal")
                current = (number, tokens[1:-1], tokens[-1], [])
                covers.append(current)
            elif keyword == ".end":
                ended = True
            elif keyword in (".latch", ".subckt", ".gate", ".mlatch"):
                raise BlifError(
                    f"BLIF line {number}: {keyword} is not supported "
                    "(combinational single-model BLIF only)")
            # Unknown dot-directives (.default_input_arrival etc.) are
            # ignored, matching common reader behaviour.
        else:
            if current is None:
                raise BlifError(
                    f"BLIF line {number}: cover row {line!r} outside .names")
            _, fanin_names, _, rows = current
            if fanin_names:
                if len(tokens) != 2:
                    raise BlifError(
                        f"BLIF line {number}: expected '<pattern> <value>', "
                        f"got {line!r}")
                pattern, value = tokens
            else:
                if len(tokens) != 1:
                    raise BlifError(
                        f"BLIF line {number}: constant cover takes a single "
                        f"output value, got {line!r}")
                pattern, value = "", tokens[0]
            if len(pattern) != len(fanin_names):
                raise BlifError(
                    f"BLIF line {number}: pattern {pattern!r} has "
                    f"{len(pattern)} columns for {len(fanin_names)} inputs")
            if value not in ("0", "1") or any(c not in "01-" for c in pattern):
                raise BlifError(
                    f"BLIF line {number}: malformed cover row {line!r}")
            rows.append((pattern, value))

    if not outputs:
        raise BlifError("BLIF: no .outputs declared")

    aig = AIG(name=model_name if model_name is not None else name)
    graph = SignalGraph("BLIF", BlifError)
    for input_name in inputs:
        graph.define_input(input_name, aig.add_pi(name=input_name))
    for number, fanin_names, out_name, rows in covers:
        values = {value for _, value in rows}
        if len(values) > 1:
            raise BlifError(
                f"BLIF line {number}: cover for {out_name!r} mixes on-set "
                "and off-set rows")
        graph.define_gate(out_name, fanin_names, rows)
    graph.elaborate(aig, _build_cover)
    for out_name in outputs:
        aig.add_po(graph.literal(out_name), name=out_name)
    return aig


def _build_cover(aig: AIG, payload: object, fanins: List[Literal]) -> Literal:
    """Build one SOP cover: OR of product rows, inverted for off-set rows."""
    rows: _Cover = payload  # type: ignore[assignment]
    if not rows:
        return CONST0  # ".names x" with no rows is constant 0
    products: List[Literal] = []
    for pattern, _ in rows:
        terms = []
        for column, fanin in zip(pattern, fanins):
            if column == "1":
                terms.append(fanin)
            elif column == "0":
                terms.append(lit_not(fanin))
        products.append(aig.add_and_multi(terms) if terms else CONST1)
    result = aig.add_or_multi(products)
    if rows[0][1] == "0":  # off-set cover: rows list where the output is 0
        result = lit_not(result)
    return result


def read_blif(path: Union[str, Path]) -> AIG:
    """Read a BLIF file from disk."""
    path = Path(path)
    return read_blif_string(path.read_text(encoding="utf-8"), name=path.stem)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
_SAFE_TOKEN = re.compile(r"^[^\s#\\]+$")


def write_blif_string(aig: AIG) -> str:
    """Serialise an AIG as combinational BLIF (one ``.names`` per AND)."""
    clean = aig.cleanup()
    by_var, po_names, _ = assign_signal_names(clean, _SAFE_TOKEN)
    lines = [f".model {clean.name}"]
    lines.append(".inputs " + " ".join(by_var[pi] for pi in clean.pis)
                 if clean.num_pis else ".inputs")
    lines.append(".outputs " + " ".join(po_names))
    for node in clean.and_nodes():
        f0, f1 = clean.fanins(node.var)
        lines.append(f".names {by_var[lit_var(f0)]} {by_var[lit_var(f1)]} "
                     f"{by_var[node.var]}")
        bits = ("0" if lit_is_compl(f0) else "1",
                "0" if lit_is_compl(f1) else "1")
        lines.append(f"{bits[0]}{bits[1]} 1")
    for po, po_name in zip(clean.pos, po_names):
        var = lit_var(po)
        if var == 0:
            lines.append(f".names {po_name}")
            if po == CONST1:
                lines.append("1")
        else:
            # Buffer (or inverter, for complemented POs) from the driver.
            lines.append(f".names {by_var[var]} {po_name}")
            lines.append("0 1" if lit_is_compl(po) else "1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(aig: AIG, path: Union[str, Path]) -> None:
    """Write an AIG to ``path`` in BLIF format."""
    Path(path).write_text(write_blif_string(aig), encoding="utf-8")
