"""And-Inverter Graph (AIG) substrate.

This package provides the circuit representation used throughout the
reproduction: an AIG with structural hashing, complemented edges, AIGER
file I/O, bit-parallel simulation, k-feasible cut enumeration and
truth-table utilities.  It plays the role that ABC's internal network
representation plays for the original BOiLS paper.
"""

from repro.aig.graph import AIG, Literal, AigNode
from repro.aig.aiger import read_aiger, write_aiger, read_aiger_string, write_aiger_string
from repro.aig.blif import read_blif, write_blif, read_blif_string, write_blif_string
from repro.aig.bench import read_bench, write_bench, read_bench_string, write_bench_string
from repro.aig.simulation import simulate, simulate_words, random_simulation
from repro.aig.cuts import Cut, enumerate_cuts, cut_truth_table
from repro.aig.verilog import write_verilog, write_lut_verilog, verilog_module
from repro.aig import truth

__all__ = [
    "AIG",
    "Literal",
    "AigNode",
    "read_aiger",
    "write_aiger",
    "read_aiger_string",
    "write_aiger_string",
    "read_blif",
    "write_blif",
    "read_blif_string",
    "write_blif_string",
    "read_bench",
    "write_bench",
    "read_bench_string",
    "write_bench_string",
    "simulate",
    "simulate_words",
    "random_simulation",
    "Cut",
    "enumerate_cuts",
    "cut_truth_table",
    "write_verilog",
    "write_lut_verilog",
    "verilog_module",
    "truth",
]
