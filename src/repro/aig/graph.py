"""Core And-Inverter Graph data structure.

An AIG represents a combinational logic network using only two-input AND
nodes and inverters encoded as edge attributes (complemented edges).  The
encoding follows the AIGER convention:

* every node has an integer *variable index* ``var >= 0``,
* a *literal* is ``2 * var + complement`` where ``complement`` is 0 or 1,
* variable 0 is the constant node, literal 0 is constant false and
  literal 1 is constant true,
* primary inputs and AND nodes occupy variables ``1 .. num_vars - 1``,
* primary outputs are literals referring to any node.

The class maintains structural hashing (no two AND nodes share the same
ordered fanin pair), fanout counts and levels.  All synthesis operations in
:mod:`repro.synth` are expressed in terms of this interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


Literal = int
"""Type alias for an AIGER-style literal (``2 * var + complement``)."""

CONST0: Literal = 0
CONST1: Literal = 1


def lit(var: int, complement: bool = False) -> Literal:
    """Build a literal from a variable index and a complement flag."""
    return 2 * var + int(bool(complement))


def lit_var(literal: Literal) -> int:
    """Return the variable index of a literal."""
    return literal >> 1


def lit_is_compl(literal: Literal) -> bool:
    """Return ``True`` when the literal is complemented."""
    return bool(literal & 1)


def lit_not(literal: Literal) -> Literal:
    """Return the complement of a literal."""
    return literal ^ 1


def lit_regular(literal: Literal) -> Literal:
    """Return the non-complemented version of a literal."""
    return literal & ~1


@dataclass(frozen=True)
class AigNode:
    """Immutable record describing one AIG node.

    Attributes
    ----------
    var:
        Variable index of the node.
    kind:
        One of ``"const"``, ``"pi"`` or ``"and"``.
    fanin0, fanin1:
        Fanin literals for AND nodes (``None`` for constants and PIs).
    name:
        Optional symbolic name (used for PIs/POs round-tripped from AIGER).
    """

    var: int
    kind: str
    fanin0: Optional[Literal] = None
    fanin1: Optional[Literal] = None
    name: Optional[str] = None

    @property
    def is_and(self) -> bool:
        return self.kind == "and"

    @property
    def is_pi(self) -> bool:
        return self.kind == "pi"

    @property
    def is_const(self) -> bool:
        return self.kind == "const"


class AIG:
    """A combinational And-Inverter Graph with structural hashing.

    The graph is append-only: nodes are created through :meth:`add_pi` and
    :meth:`add_and` and never mutated in place.  Synthesis operations build
    a new :class:`AIG` rather than editing an existing one, which keeps the
    data structure simple and makes reasoning about transformations easy
    (this mirrors how most Python logic-synthesis experiments drive ABC:
    each pass produces a new network).
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        # Node storage indexed by variable number.  Index 0 is the constant.
        self._nodes: List[AigNode] = [AigNode(var=0, kind="const")]
        self._pis: List[int] = []           # variable indices of PIs
        self._pos: List[Literal] = []        # output literals
        self._po_names: List[Optional[str]] = []
        # Structural hashing: (fanin0, fanin1) -> var of existing AND node.
        self._strash: Dict[Tuple[Literal, Literal], int] = {}
        # Flat per-variable arrays maintained alongside ``_nodes``: the hot
        # paths (cut enumeration, mapping, cone walks) index these instead
        # of chasing AigNode dataclasses.  The graph is append-only, so the
        # arrays grow in lock-step and never need invalidation.
        self._is_and: bytearray = bytearray(1)
        self._fanin0: List[Literal] = [0]
        self._fanin1: List[Literal] = [0]
        # Cached levels / fanout counts, invalidated on mutation.
        self._levels: Optional[List[int]] = None
        self._fanouts: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: Optional[str] = None) -> Literal:
        """Create a primary input and return its (positive) literal."""
        var = len(self._nodes)
        self._nodes.append(AigNode(var=var, kind="pi", name=name))
        self._pis.append(var)
        self._is_and.append(0)
        self._fanin0.append(0)
        self._fanin1.append(0)
        self._levels = None
        self._fanouts = None
        return lit(var)

    def add_and(self, a: Literal, b: Literal) -> Literal:
        """Create (or reuse) an AND node over literals ``a`` and ``b``.

        Performs constant propagation and structural hashing, so the
        returned literal may refer to an existing node, a fanin or a
        constant.
        """
        self._check_literal(a)
        self._check_literal(b)
        # Normalise operand order for structural hashing.
        if a > b:
            a, b = b, a
        # Constant / trivial cases.
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return lit(existing)
        var = len(self._nodes)
        self._nodes.append(AigNode(var=var, kind="and", fanin0=a, fanin1=b))
        self._strash[key] = var
        self._is_and.append(1)
        self._fanin0.append(a)
        self._fanin1.append(b)
        self._levels = None
        self._fanouts = None
        return lit(var)

    def add_po(self, literal: Literal, name: Optional[str] = None) -> int:
        """Register ``literal`` as a primary output; return the output index."""
        self._check_literal(literal)
        self._pos.append(literal)
        self._po_names.append(name)
        self._fanouts = None
        return len(self._pos) - 1

    def set_po(self, index: int, literal: Literal) -> None:
        """Redirect an existing primary output to a new literal."""
        self._check_literal(literal)
        self._pos[index] = literal
        self._fanouts = None

    # ------------------------------------------------------------------
    # Derived logic helpers (convenience constructors used by generators)
    # ------------------------------------------------------------------
    def add_not(self, a: Literal) -> Literal:
        return lit_not(a)

    def add_or(self, a: Literal, b: Literal) -> Literal:
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_nand(self, a: Literal, b: Literal) -> Literal:
        return lit_not(self.add_and(a, b))

    def add_nor(self, a: Literal, b: Literal) -> Literal:
        return self.add_and(lit_not(a), lit_not(b))

    def add_xor(self, a: Literal, b: Literal) -> Literal:
        # a ^ b = (a & ~b) | (~a & b)
        t0 = self.add_and(a, lit_not(b))
        t1 = self.add_and(lit_not(a), b)
        return self.add_or(t0, t1)

    def add_xnor(self, a: Literal, b: Literal) -> Literal:
        return lit_not(self.add_xor(a, b))

    def add_mux(self, sel: Literal, then_lit: Literal, else_lit: Literal) -> Literal:
        """Return ``sel ? then_lit : else_lit``."""
        t0 = self.add_and(sel, then_lit)
        t1 = self.add_and(lit_not(sel), else_lit)
        return self.add_or(t0, t1)

    def add_maj(self, a: Literal, b: Literal, c: Literal) -> Literal:
        """Majority-of-three, used by adder generators."""
        ab = self.add_and(a, b)
        ac = self.add_and(a, c)
        bc = self.add_and(b, c)
        return self.add_or(self.add_or(ab, ac), bc)

    def add_and_multi(self, literals: Sequence[Literal]) -> Literal:
        """Balanced AND over an arbitrary number of literals."""
        items = list(literals)
        if not items:
            return CONST1
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                nxt.append(self.add_and(items[i], items[i + 1]))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def add_or_multi(self, literals: Sequence[Literal]) -> Literal:
        return lit_not(self.add_and_multi([lit_not(x) for x in literals]))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self._nodes)

    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    @property
    def num_ands(self) -> int:
        return len(self._nodes) - 1 - len(self._pis)

    @property
    def pis(self) -> List[int]:
        """Variable indices of primary inputs, in creation order."""
        return list(self._pis)

    @property
    def pos(self) -> List[Literal]:
        """Output literals, in creation order."""
        return list(self._pos)

    @property
    def po_names(self) -> List[Optional[str]]:
        return list(self._po_names)

    def node(self, var: int) -> AigNode:
        return self._nodes[var]

    def nodes(self) -> Iterator[AigNode]:
        """Iterate over all nodes in topological (creation) order."""
        return iter(self._nodes)

    def and_nodes(self) -> Iterator[AigNode]:
        for node in self._nodes:
            if node.is_and:
                yield node

    def is_pi(self, var: int) -> bool:
        return self._nodes[var].is_pi

    def is_and(self, var: int) -> bool:
        return self._nodes[var].is_and

    def fanins(self, var: int) -> Tuple[Literal, Literal]:
        if not self._is_and[var]:
            raise ValueError(f"node {var} is not an AND node")
        return self._fanin0[var], self._fanin1[var]

    # ------------------------------------------------------------------
    # Flat-array views (hot-path accessors)
    # ------------------------------------------------------------------
    def node_arrays(self) -> Tuple[bytearray, List[Literal], List[Literal]]:
        """``(is_and, fanin0, fanin1)`` flat arrays indexed by variable.

        ``is_and[var]`` is 1 for AND nodes; ``fanin0``/``fanin1`` hold the
        fanin literals (0 for constants and PIs).  The arrays are the
        graph's own storage — treat them as read-only.
        """
        return self._is_and, self._fanin0, self._fanin1

    def levels_array(self) -> List[int]:
        """Cached per-variable levels; treat as read-only (no copy)."""
        if self._levels is None:
            levels = [0] * len(self._nodes)
            is_and, fanin0, fanin1 = self._is_and, self._fanin0, self._fanin1
            for var in range(1, len(levels)):
                if is_and[var]:
                    l0 = levels[fanin0[var] >> 1]
                    l1 = levels[fanin1[var] >> 1]
                    levels[var] = 1 + (l0 if l0 >= l1 else l1)
            self._levels = levels
        return self._levels

    def fanout_array(self) -> List[int]:
        """Cached per-variable fanout counts; treat as read-only (no copy)."""
        if self._fanouts is None:
            counts = [0] * len(self._nodes)
            is_and, fanin0, fanin1 = self._is_and, self._fanin0, self._fanin1
            for var in range(1, len(counts)):
                if is_and[var]:
                    counts[fanin0[var] >> 1] += 1
                    counts[fanin1[var] >> 1] += 1
            for po in self._pos:
                counts[po >> 1] += 1
            self._fanouts = counts
        return self._fanouts

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def levels(self) -> List[int]:
        """Return the level (AND-depth from PIs) of every variable."""
        return list(self.levels_array())

    def depth(self) -> int:
        """Maximum AND-level over all primary outputs."""
        if not self._pos:
            return 0
        levels = self.levels_array()
        return max(levels[po >> 1] for po in self._pos)

    def fanout_counts(self) -> List[int]:
        """Number of fanout references (including PO references) per variable."""
        return list(self.fanout_array())

    def reachable_vars(self) -> List[int]:
        """Variables in the transitive fanin of the primary outputs."""
        seen = bytearray(len(self._nodes))
        is_and, fanin0, fanin1 = self._is_and, self._fanin0, self._fanin1
        stack = [po >> 1 for po in self._pos]
        while stack:
            var = stack.pop()
            if seen[var]:
                continue
            seen[var] = 1
            if is_and[var]:
                stack.append(fanin0[var] >> 1)
                stack.append(fanin1[var] >> 1)
        return [v for v in range(len(self._nodes)) if seen[v]]

    def stats(self) -> Dict[str, int]:
        """Summary statistics comparable to ABC's ``print_stats``."""
        return {
            "pis": self.num_pis,
            "pos": self.num_pos,
            "ands": self.num_ands,
            "levels": self.depth(),
        }

    # ------------------------------------------------------------------
    # Cleanup / copying
    # ------------------------------------------------------------------
    def cleanup(self) -> "AIG":
        """Return a copy with dangling (unreachable) AND nodes removed."""
        return self.copy_with()

    def copy_with(self, po_map=None) -> "AIG":
        """Structurally copy the reachable part of the graph.

        Parameters
        ----------
        po_map:
            Optional callable mapping ``(old_aig, old_literal, translate)``
            to a new literal; used by transformation passes to substitute
            logic while copying.  ``translate`` is a function converting an
            old literal to a literal in the new AIG.
        """
        new = AIG(name=self.name)
        mapping: Dict[int, Literal] = {0: CONST0}
        for pi_var in self._pis:
            node = self._nodes[pi_var]
            mapping[pi_var] = new.add_pi(name=node.name)

        def translate(old_lit: Literal) -> Literal:
            base = mapping[lit_var(old_lit)]
            return base ^ (old_lit & 1)

        is_and, fanin0, fanin1 = self._is_and, self._fanin0, self._fanin1
        reachable = bytearray(len(self._nodes))
        stack = [po >> 1 for po in self._pos]
        while stack:
            var = stack.pop()
            if reachable[var]:
                continue
            reachable[var] = 1
            if is_and[var]:
                stack.append(fanin0[var] >> 1)
                stack.append(fanin1[var] >> 1)
        for var in range(1, len(self._nodes)):
            if is_and[var] and reachable[var]:
                mapping[var] = new.add_and(
                    translate(fanin0[var]), translate(fanin1[var])
                )
        for po_lit, po_name in zip(self._pos, self._po_names):
            if po_map is not None:
                new_lit = po_map(self, po_lit, translate)
            else:
                new_lit = translate(po_lit)
            new.add_po(new_lit, name=po_name)
        return new

    def copy(self) -> "AIG":
        """Deep copy preserving all reachable structure."""
        return self.copy_with()

    # ------------------------------------------------------------------
    # Flat-array reconstruction (shared-memory hand-off)
    # ------------------------------------------------------------------
    @classmethod
    def from_flat_arrays(
        cls,
        name: str,
        is_and: Sequence[int],
        fanin0: Sequence[Literal],
        fanin1: Sequence[Literal],
        pi_names: Sequence[Optional[str]],
        pos: Sequence[Literal],
        po_names: Sequence[Optional[str]],
    ) -> "AIG":
        """Rebuild a graph from its flat per-variable arrays.

        The inverse of :meth:`node_arrays` (plus the PI/PO metadata): a
        graph serialised as ``(is_and, fanin0, fanin1)`` arrays — e.g.
        published through shared memory by
        :mod:`repro.engine.shm` — reconstructs bit-identically, including
        node order, structural-hashing table contents and
        :func:`repro.qor.evaluator.aig_fingerprint`.  The arrays must
        come from a well-formed AIG (``add_and``-normalised fanins);
        no re-hashing or constant propagation is performed, which is
        what makes this an O(num_vars) copy instead of a rebuild.
        """
        if not (len(is_and) == len(fanin0) == len(fanin1)):
            raise ValueError("flat arrays must have equal length")
        if len(is_and) == 0 or is_and[0]:
            raise ValueError("variable 0 must be the constant node")
        new = cls(name=name)
        pi_iter = iter(pi_names)
        for var in range(1, len(is_and)):
            if is_and[var]:
                a, b = fanin0[var], fanin1[var]
                new._nodes.append(AigNode(var=var, kind="and",
                                          fanin0=a, fanin1=b))
                new._strash[(a, b)] = var
            else:
                new._nodes.append(AigNode(var=var, kind="pi",
                                          name=next(pi_iter, None)))
                new._pis.append(var)
        new._is_and = bytearray(is_and)
        new._fanin0 = [int(x) for x in fanin0]
        new._fanin1 = [int(x) for x in fanin1]
        for po_lit, po_name in zip(pos, po_names):
            new._check_literal(int(po_lit))
            new._pos.append(int(po_lit))
            new._po_names.append(po_name)
        return new

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_literal(self, literal: Literal) -> None:
        if literal < 0 or lit_var(literal) >= len(self._nodes):
            raise ValueError(f"literal {literal} refers to an unknown node")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"AIG(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"ands={self.num_ands}, levels={self.depth()})"
        )
