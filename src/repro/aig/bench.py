"""ISCAS ``.bench`` netlist reader / writer.

Supports the combinational gate-level subset used by the ISCAS-85 /
LGSynth benchmark files: ``INPUT(x)`` / ``OUTPUT(y)`` declarations and
``y = GATE(a, b, ...)`` assignments with the AND, NAND, OR, NOR, XOR,
XNOR, NOT and BUFF gate types (multi-input where the format allows).
``DFF`` and other sequential elements are rejected with a clear error.
Definitions may appear in any order; elaboration resolves dependencies
topologically and reports combinational cycles by signal name.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Union

from repro.aig.graph import AIG, CONST0, CONST1, Literal, lit_is_compl, lit_not, lit_var
from repro.aig.netlist_io import (
    NetlistFormatError,
    SignalGraph,
    assign_signal_names,
    logical_lines,
)


class BenchError(NetlistFormatError):
    """Raised when a ``.bench`` file cannot be parsed."""


_ASSIGN = re.compile(r"^(?P<out>\S+)\s*=\s*(?P<gate>[A-Za-z_][A-Za-z0-9_]*)"
                     r"\s*\((?P<args>[^)]*)\)$")
_DECL = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[^)]+)\)$",
                   re.IGNORECASE)

_SEQUENTIAL = {"DFF", "DFFSR", "LATCH", "SDFF"}


def read_bench_string(text: str, name: str = "bench") -> AIG:
    """Parse ``.bench`` text into an :class:`AIG`."""
    aig = AIG(name=name)
    graph = SignalGraph("bench", BenchError)
    outputs: List[str] = []

    for number, line in logical_lines(text):
        decl = _DECL.match(line)
        if decl is not None:
            signal = decl.group("name").strip()
            if not signal:
                raise BenchError(f"bench line {number}: empty signal name")
            if decl.group("kind").upper() == "INPUT":
                graph.define_input(signal, aig.add_pi(name=signal))
            else:
                outputs.append(signal)
            continue
        assign = _ASSIGN.match(line)
        if assign is None:
            raise BenchError(f"bench line {number}: cannot parse {line!r}")
        gate = assign.group("gate").upper()
        args = [token.strip() for token in assign.group("args").split(",")
                if token.strip()]
        if gate in _SEQUENTIAL:
            raise BenchError(
                f"bench line {number}: sequential element {gate} is not "
                "supported (combinational circuits only)")
        if gate in ("CONST0", "CONST1", "GND", "VDD"):
            if args:
                raise BenchError(
                    f"bench line {number}: {gate} takes no arguments")
            graph.define_input(assign.group("out"),
                               CONST1 if gate in ("CONST1", "VDD") else CONST0)
            continue
        if gate not in _GATES:
            raise BenchError(
                f"bench line {number}: unknown gate type {gate!r}")
        arity_min, arity_max = _GATE_ARITY[gate]
        if not (arity_min <= len(args) <= arity_max):
            raise BenchError(
                f"bench line {number}: {gate} expects between {arity_min} "
                f"and {arity_max} inputs, got {len(args)}")
        graph.define_gate(assign.group("out"), args, gate)

    if not outputs:
        raise BenchError("bench: no OUTPUT declarations")
    graph.elaborate(aig, _build_gate)
    for out_name in outputs:
        aig.add_po(graph.literal(out_name), name=out_name)
    return aig


def _fold_xor(aig: AIG, fanins: List[Literal]) -> Literal:
    result = fanins[0]
    for literal in fanins[1:]:
        result = aig.add_xor(result, literal)
    return result


_GATES = {
    "AND": lambda aig, fanins: aig.add_and_multi(fanins),
    "NAND": lambda aig, fanins: lit_not(aig.add_and_multi(fanins)),
    "OR": lambda aig, fanins: aig.add_or_multi(fanins),
    "NOR": lambda aig, fanins: lit_not(aig.add_or_multi(fanins)),
    "XOR": _fold_xor,
    "XNOR": lambda aig, fanins: lit_not(_fold_xor(aig, fanins)),
    "NOT": lambda aig, fanins: lit_not(fanins[0]),
    "BUFF": lambda aig, fanins: fanins[0],
    "BUF": lambda aig, fanins: fanins[0],
}

_GATE_ARITY = {
    "AND": (1, 1 << 16), "NAND": (1, 1 << 16),
    "OR": (1, 1 << 16), "NOR": (1, 1 << 16),
    "XOR": (1, 1 << 16), "XNOR": (1, 1 << 16),
    "NOT": (1, 1), "BUFF": (1, 1), "BUF": (1, 1),
}


def _build_gate(aig: AIG, payload: object, fanins: List[Literal]) -> Literal:
    return _GATES[str(payload)](aig, fanins)


def read_bench(path: Union[str, Path]) -> AIG:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return read_bench_string(path.read_text(encoding="utf-8"), name=path.stem)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
_SAFE_TOKEN = re.compile(r"^[A-Za-z0-9_.\[\]]+$")


def write_bench_string(aig: AIG) -> str:
    """Serialise an AIG as a combinational ``.bench`` netlist.

    AND nodes map one-to-one onto two-input ``AND`` gates; complemented
    edges materialise as explicit ``NOT`` gates (created once per negated
    variable).  Constant outputs are expressed through a ``gnd``/``vdd``
    pair derived from the first input, so circuits with at least one
    primary input always round-trip.
    """
    clean = aig.cleanup()
    by_var, po_names, claim = assign_signal_names(clean, _SAFE_TOKEN)

    lines: List[str] = [f"# {clean.name}"]
    for pi_var in clean.pis:
        lines.append(f"INPUT({by_var[pi_var]})")
    for po_name in po_names:
        lines.append(f"OUTPUT({po_name})")

    gates: List[str] = []
    negated: Dict[int, str] = {}
    const_names: Dict[int, str] = {}

    def const_signal(value: Literal) -> str:
        if value not in const_names:
            if not clean.pis:
                raise BenchError(
                    "cannot express constant outputs in .bench without "
                    "primary inputs")
            anchor = by_var[clean.pis[0]]
            if CONST0 not in const_names:
                zero = claim(None, "gnd")
                inverted = negated_signal(clean.pis[0])
                gates.append(f"{zero} = AND({anchor}, {inverted})")
                const_names[CONST0] = zero
            if value == CONST1 and CONST1 not in const_names:
                one = claim(None, "vdd")
                gates.append(f"{one} = NOT({const_names[CONST0]})")
                const_names[CONST1] = one
        return const_names[value]

    def negated_signal(var: int) -> str:
        if var not in negated:
            inv = claim(None, f"{by_var[var]}_not")
            gates.append(f"{inv} = NOT({by_var[var]})")
            negated[var] = inv
        return negated[var]

    def literal_signal(literal: Literal) -> str:
        var = lit_var(literal)
        if var == 0:
            return const_signal(CONST1 if lit_is_compl(literal) else CONST0)
        return negated_signal(var) if lit_is_compl(literal) else by_var[var]

    for node in clean.and_nodes():
        f0, f1 = clean.fanins(node.var)
        gates.append(f"{by_var[node.var]} = "
                     f"AND({literal_signal(f0)}, {literal_signal(f1)})")
    for po, po_name in zip(clean.pos, po_names):
        var = lit_var(po)
        if var == 0:
            gates.append(f"{po_name} = BUFF({const_signal(po)})")
        elif lit_is_compl(po):
            gates.append(f"{po_name} = NOT({by_var[var]})")
        else:
            gates.append(f"{po_name} = BUFF({by_var[var]})")
    lines.extend(gates)
    return "\n".join(lines) + "\n"


def write_bench(aig: AIG, path: Union[str, Path]) -> None:
    """Write an AIG to ``path`` in ``.bench`` format."""
    Path(path).write_text(write_bench_string(aig), encoding="utf-8")
