"""Reference (pre-optimisation) cut enumeration, kept for equivalence tests.

This module preserves the original pure-``set``/``sorted`` implementation
of k-feasible cut enumeration exactly as it shipped before the bitset
rework in :mod:`repro.aig.cuts`.  It exists for two reasons:

* the golden equivalence suite asserts that the optimised enumeration is
  **bit-identical** to this one on seeded circuits, and
* the substrate performance benchmark measures the optimised/reference
  speedup ratio, which is what the CI perf gate tracks.

Do not "optimise" this file — its slowness is the point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.aig.cuts import Cut
from repro.aig.graph import AIG, lit_var


def _filter_dominated_reference(cuts: List[Cut]) -> List[Cut]:
    """Remove cuts dominated by (i.e. supersets of) another cut."""
    result: List[Cut] = []
    for cut in sorted(cuts, key=lambda c: c.size):
        if any(set(existing.leaves).issubset(cut.leaves) for existing in result):
            continue
        result.append(cut)
    return result


def enumerate_cuts_reference(
    aig: AIG,
    k: int = 6,
    max_cuts: int = 8,
    include_trivial: bool = True,
    depths: Optional[Sequence[int]] = None,
) -> Dict[int, List[Cut]]:
    """The original set-based priority-cut enumeration (see module docstring)."""
    cuts: Dict[int, List[Cut]] = {0: [Cut((0,))]}
    for var in aig.pis:
        cuts[var] = [Cut((var,))]

    if depths is not None:

        def priority(cut: Cut):
            arrival = 1 + max(depths[leaf] for leaf in cut.leaves)
            return (arrival, cut.size, cut.leaves)

    else:

        def priority(cut: Cut):
            return (cut.size, cut.leaves)

    def merge(a: Cut, b: Cut) -> Optional[Cut]:
        union = tuple(sorted(set(a.leaves) | set(b.leaves)))
        if len(union) > k:
            return None
        return Cut(union)

    merge_base: Dict[int, List[Cut]] = {0: [Cut((0,))]}
    for var in aig.pis:
        merge_base[var] = [Cut((var,))]

    for node in aig.nodes():
        if not node.is_and:
            continue
        assert node.fanin0 is not None and node.fanin1 is not None
        v0 = lit_var(node.fanin0)
        v1 = lit_var(node.fanin1)
        merged: List[Cut] = []
        for c0 in merge_base.get(v0, [Cut((v0,))]):
            for c1 in merge_base.get(v1, [Cut((v1,))]):
                combined = merge(c0, c1)
                if combined is not None:
                    merged.append(combined)
        merged = _filter_dominated_reference(merged)
        merged.sort(key=priority)
        merged = merged[:max_cuts]
        merge_base[node.var] = [Cut((node.var,))] + merged
        node_cuts = [Cut((node.var,))] if include_trivial else []
        node_cuts.extend(c for c in merged if c.leaves != (node.var,))
        cuts[node.var] = node_cuts
    return cuts


def cut_cone_vars_reference(aig: AIG, root: int, cut: Cut) -> List[int]:
    """The original recursive cone walk (leaves excluded, root included)."""
    leaves = set(cut.leaves)
    visited: Dict[int, bool] = {}
    order: List[int] = []

    def visit(var: int) -> None:
        if var in visited or var in leaves:
            return
        visited[var] = True
        node = aig.node(var)
        if node.is_and:
            assert node.fanin0 is not None and node.fanin1 is not None
            visit(lit_var(node.fanin0))
            visit(lit_var(node.fanin1))
        order.append(var)

    visit(root)
    return order
