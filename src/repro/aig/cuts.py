"""k-feasible cut enumeration over AIGs.

Cuts are the workhorse of both the technology mapper (``if -K 6``
equivalent) and the rewriting/refactoring passes.  A *cut* of a node is a
set of variables (leaves) such that every path from a PI to the node
passes through a leaf.  We use the classic bottom-up priority-cut
enumeration: the cut set of an AND node is the pairwise merge of the cut
sets of its fanins, pruned to cuts of at most ``k`` leaves and limited to
the ``max_cuts`` best cuts per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.graph import AIG, Literal, lit_var, lit_is_compl
from repro.aig import truth


@dataclass(frozen=True)
class Cut:
    """A cut: an ordered tuple of leaf variable indices."""

    leaves: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True when this cut's leaves are a subset of the other's."""
        return set(self.leaves).issubset(other.leaves)

    def merge(self, other: "Cut", k: int) -> Optional["Cut"]:
        """Union of two cuts, or ``None`` when it exceeds ``k`` leaves."""
        union = tuple(sorted(set(self.leaves) | set(other.leaves)))
        if len(union) > k:
            return None
        return Cut(union)


def _filter_dominated(cuts: List[Cut]) -> List[Cut]:
    """Remove cuts dominated by (i.e. supersets of) another cut."""
    result: List[Cut] = []
    for cut in sorted(cuts, key=lambda c: c.size):
        if any(existing.dominates(cut) for existing in result):
            continue
        result.append(cut)
    return result


def enumerate_cuts(
    aig: AIG,
    k: int = 6,
    max_cuts: int = 8,
    include_trivial: bool = True,
    depths: Optional[Sequence[int]] = None,
) -> Dict[int, List[Cut]]:
    """Enumerate up to ``max_cuts`` k-feasible cuts for every variable.

    Parameters
    ----------
    aig:
        Graph to process.
    k:
        Maximum number of leaves per cut.
    max_cuts:
        Priority-cut limit per node (keeps enumeration polynomial).
    include_trivial:
        Whether the trivial cut ``{node}`` is included in each node's list
        (required for mapping; rewriting usually skips it).
    depths:
        Optional per-variable arrival times.  When given, cuts are
        prioritised by the depth they would give the node (then by size),
        which is what a delay-oriented mapper needs; without it cuts are
        prioritised by size (what the rewriting passes want).

    Returns
    -------
    Mapping from variable index to its list of cuts; the trivial cut, when
    present, is always first.
    """
    cuts: Dict[int, List[Cut]] = {0: [Cut((0,))]}
    for var in aig.pis:
        cuts[var] = [Cut((var,))]

    if depths is not None:

        def priority(cut: Cut):
            arrival = 1 + max(depths[leaf] for leaf in cut.leaves)
            return (arrival, cut.size, cut.leaves)

    else:

        def priority(cut: Cut):
            return (cut.size, cut.leaves)

    # ``merge_base`` always contains the trivial cut of every node so that
    # deep nodes keep at least their structural cut available for merging;
    # ``include_trivial`` only controls whether the trivial cut is returned.
    merge_base: Dict[int, List[Cut]] = {0: [Cut((0,))]}
    for var in aig.pis:
        merge_base[var] = [Cut((var,))]

    for node in aig.nodes():
        if not node.is_and:
            continue
        assert node.fanin0 is not None and node.fanin1 is not None
        v0 = lit_var(node.fanin0)
        v1 = lit_var(node.fanin1)
        merged: List[Cut] = []
        for c0 in merge_base.get(v0, [Cut((v0,))]):
            for c1 in merge_base.get(v1, [Cut((v1,))]):
                combined = c0.merge(c1, k)
                if combined is not None:
                    merged.append(combined)
        merged = _filter_dominated(merged)
        merged.sort(key=priority)
        merged = merged[:max_cuts]
        merge_base[node.var] = [Cut((node.var,))] + merged
        node_cuts = [Cut((node.var,))] if include_trivial else []
        node_cuts.extend(c for c in merged if c.leaves != (node.var,))
        cuts[node.var] = node_cuts
    return cuts


def cut_cone_vars(aig: AIG, root: int, cut: Cut) -> List[int]:
    """Variables strictly inside the cone between ``root`` and the cut leaves.

    Returned in topological order (leaves excluded, root included).
    """
    leaves = set(cut.leaves)
    visited: Dict[int, bool] = {}
    order: List[int] = []

    def visit(var: int) -> None:
        if var in visited or var in leaves:
            return
        visited[var] = True
        node = aig.node(var)
        if node.is_and:
            assert node.fanin0 is not None and node.fanin1 is not None
            visit(lit_var(node.fanin0))
            visit(lit_var(node.fanin1))
        order.append(var)

    visit(root)
    return order


def cut_truth_table(aig: AIG, root: int, cut: Cut) -> int:
    """Truth table of ``root`` expressed over the cut leaves.

    Leaf ``i`` of the cut corresponds to truth-table variable ``i``.  The
    result has ``2 ** cut.size`` bits.
    """
    n = cut.size
    leaf_index = {leaf: i for i, leaf in enumerate(cut.leaves)}
    tables: Dict[int, int] = {}
    for leaf, idx in leaf_index.items():
        tables[leaf] = truth.var_table(idx, n)
    tables[0] = 0  # constant node

    for var in cut_cone_vars(aig, root, cut):
        node = aig.node(var)
        if not node.is_and:
            # A PI inside the cone that is not a leaf cannot happen for a
            # valid cut; guard defensively.
            if var not in tables:
                raise ValueError(f"cut {cut.leaves} does not cover node {root}")
            continue
        assert node.fanin0 is not None and node.fanin1 is not None
        t0 = _fanin_table(tables, node.fanin0, n)
        t1 = _fanin_table(tables, node.fanin1, n)
        tables[var] = t0 & t1

    if root not in tables:
        raise ValueError(f"cut {cut.leaves} does not cover node {root}")
    return tables[root]


def _fanin_table(tables: Dict[int, int], fanin: Literal, num_vars: int) -> int:
    var = lit_var(fanin)
    if var not in tables:
        raise ValueError(f"fanin variable {var} missing from cut cone")
    table = tables[var]
    if lit_is_compl(fanin):
        table = truth.tt_not(table, num_vars)
    return table


def cut_volume(aig: AIG, root: int, cut: Cut) -> int:
    """Number of AND nodes strictly inside the cut cone (the MFFC-ish volume)."""
    return sum(1 for var in cut_cone_vars(aig, root, cut) if aig.is_and(var))
