"""k-feasible cut enumeration over AIGs.

Cuts are the workhorse of both the technology mapper (``if -K 6``
equivalent) and the rewriting/refactoring passes.  A *cut* of a node is a
set of variables (leaves) such that every path from a PI to the node
passes through a leaf.  We use the classic bottom-up priority-cut
enumeration: the cut set of an AND node is the pairwise merge of the cut
sets of its fanins, pruned to cuts of at most ``k`` leaves and limited to
the ``max_cuts`` best cuts per node.

The enumeration represents a cut's leaf set as an integer bitmask, so the
inner loop runs on machine-word operations: merging two cuts is ``|``,
k-feasibility is ``popcount <= k`` and domination is ``a & b == a``.  A
64-bit OR-folded signature gives a constant-size domination pre-filter on
graphs wider than one word.  Leaf tuples are materialised only for the
few cuts that survive pruning, which is what makes this pass fast — the
enumeration is bit-identical to the reference implementation preserved in
:mod:`repro.aig._reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.graph import AIG
from repro.aig import truth


_WORD_MASK = (1 << 64) - 1


def leaves_to_mask(leaves: Sequence[int]) -> int:
    """Bitmask with one bit set per leaf variable."""
    mask = 0
    for leaf in leaves:
        mask |= 1 << leaf
    return mask


def mask_to_leaves(mask: int) -> Tuple[int, ...]:
    """Sorted tuple of the variable indices set in ``mask``."""
    leaves = []
    while mask:
        low = mask & -mask
        leaves.append(low.bit_length() - 1)
        mask ^= low
    return tuple(leaves)


def mask_signature(mask: int) -> int:
    """OR-fold of a mask into one 64-bit word.

    Subset-preserving: ``a ⊆ b`` implies ``sig(a) & ~sig(b) == 0``, so a
    failed signature test proves non-domination without touching the full
    (potentially multi-word) masks.
    """
    sig = mask & _WORD_MASK
    mask >>= 64
    while mask:
        sig |= mask & _WORD_MASK
        mask >>= 64
    return sig


@dataclass(frozen=True)
class Cut:
    """A cut: an ordered tuple of leaf variable indices."""

    leaves: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.leaves)

    @property
    def mask(self) -> int:
        """Leaf set as an integer bitmask."""
        return leaves_to_mask(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True when this cut's leaves are a subset of the other's."""
        mask = self.mask
        return mask & other.mask == mask

    def merge(self, other: "Cut", k: int) -> Optional["Cut"]:
        """Union of two cuts, or ``None`` when it exceeds ``k`` leaves."""
        union = self.mask | other.mask
        if union.bit_count() > k:
            return None
        return Cut(mask_to_leaves(union))


def enumerate_cuts(
    aig: AIG,
    k: int = 6,
    max_cuts: int = 8,
    include_trivial: bool = True,
    depths: Optional[Sequence[int]] = None,
) -> Dict[int, List[Cut]]:
    """Enumerate up to ``max_cuts`` k-feasible cuts for every variable.

    Parameters
    ----------
    aig:
        Graph to process.
    k:
        Maximum number of leaves per cut.
    max_cuts:
        Priority-cut limit per node (keeps enumeration polynomial).
    include_trivial:
        Whether the trivial cut ``{node}`` is included in each node's list
        (required for mapping; rewriting usually skips it).
    depths:
        Optional per-variable arrival times.  When given, cuts are
        prioritised by the depth they would give the node (then by size),
        which is what a delay-oriented mapper needs; without it cuts are
        prioritised by size (what the rewriting passes want).

    Returns
    -------
    Mapping from variable index to its list of cuts; the trivial cut, when
    present, is always first.
    """
    is_and, fanin0, fanin1 = aig.node_arrays()
    num_vars = aig.num_vars
    depth_mode = depths is not None
    # Signature pre-filtering only pays off once masks span many machine
    # words; below that, CPython's small-big-int ``&`` is cheaper than the
    # extra fold-and-test.
    wide = num_vars > 512

    cuts: Dict[int, List[Cut]] = {0: [Cut((0,))]}
    for var in aig.pis:
        cuts[var] = [Cut((var,))]

    # ``base_masks`` always contains the trivial cut of every node so that
    # deep nodes keep at least their structural cut available for merging;
    # ``include_trivial`` only controls whether the trivial cut is returned.
    # ``base_depths`` carries max-leaf-depth per cut (union of leaf sets
    # means the merged value is just the max of the two operands').
    base_masks: List[Optional[List[int]]] = [None] * num_vars
    base_depths: List[Optional[List[int]]] = [None] * num_vars
    base_masks[0] = [1]
    if depth_mode:
        base_depths[0] = [depths[0]]
    for var in aig.pis:
        base_masks[var] = [1 << var]
        if depth_mode:
            base_depths[var] = [depths[var]]

    for var in range(1, num_vars):
        if not is_and[var]:
            continue
        v0 = fanin0[var] >> 1
        v1 = fanin1[var] >> 1
        masks0 = base_masks[v0]
        if masks0 is None:  # pragma: no cover - defensive, mirrors reference
            masks0 = [1 << v0]
        masks1 = base_masks[v1]
        if masks1 is None:  # pragma: no cover - defensive, mirrors reference
            masks1 = [1 << v1]

        # Pairwise merge with duplicate elimination; popcount (computed for
        # the feasibility check anyway) is carried along for the pruning
        # and priority steps below.
        seen = set()
        merged: List[Tuple[int, int, int]] = []  # (popcount, mask, max leaf depth)
        if depth_mode:
            d0 = base_depths[v0]
            d1 = base_depths[v1]
            for i, m0 in enumerate(masks0):
                di = d0[i]
                for j, m1 in enumerate(masks1):
                    union = m0 | m1
                    count = union.bit_count()
                    if count > k or union in seen:
                        continue
                    seen.add(union)
                    dj = d1[j]
                    merged.append((count, union, di if di >= dj else dj))
        else:
            for m0 in masks0:
                for m1 in masks1:
                    union = m0 | m1
                    count = union.bit_count()
                    if count > k or union in seen:
                        continue
                    seen.add(union)
                    merged.append((count, union, 0))

        # Domination filter: scan in size order; only a strictly smaller
        # cut can dominate (duplicates were removed above), and the set of
        # survivors does not depend on tie order within a size class.  On
        # wide graphs (past the signature threshold above) the OR-folded
        # signature rejects most non-subset pairs before the full
        # multi-word mask compare.
        merged.sort()
        kept: List[Tuple[int, int, int]] = merged
        if len(merged) > 1:
            kept = []
            kept_masks: List[int] = []
            if wide:
                kept_sigs: List[int] = []
                for entry in merged:
                    mask = entry[1]
                    sig = mask_signature(mask)
                    for km, ks in zip(kept_masks, kept_sigs):
                        if ks & ~sig == 0 and km & mask == km:
                            break
                    else:
                        kept.append(entry)
                        kept_masks.append(mask)
                        kept_sigs.append(sig)
            else:
                for entry in merged:
                    mask = entry[1]
                    for km in kept_masks:
                        if km & mask == km:
                            break
                    else:
                        kept.append(entry)
                        kept_masks.append(mask)

        # Materialise leaves for the survivors only, sort by priority and
        # truncate to the per-node budget.
        if depth_mode:
            entries = [
                ((1 + depth, count, mask_to_leaves(mask)), mask, depth)
                for count, mask, depth in kept
            ]
        else:
            entries = [
                ((count, mask_to_leaves(mask)), mask, 0)
                for count, mask, _ in kept
            ]
        # Priority keys are unique (they embed the leaf tuple), so a plain
        # tuple sort never falls through to the trailing elements.
        entries.sort()
        del entries[max_cuts:]

        base_masks[var] = [1 << var] + [entry[1] for entry in entries]
        if depth_mode:
            base_depths[var] = [depths[var]] + [entry[2] for entry in entries]
        node_cuts = [Cut((var,))] if include_trivial else []
        node_cuts.extend(Cut(entry[0][-1]) for entry in entries)
        cuts[var] = node_cuts
    return cuts


def cut_cone_vars(aig: AIG, root: int, cut: Cut) -> List[int]:
    """Variables strictly inside the cone between ``root`` and the cut leaves.

    Returned in topological order (leaves excluded, root included).
    """
    is_and, fanin0, fanin1 = aig.node_arrays()
    leaves = set(cut.leaves)
    visited = set()
    order: List[int] = []
    # Iterative DFS post-order; (var, True) marks a fully-expanded node.
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        var, expanded = stack.pop()
        if expanded:
            order.append(var)
            continue
        if var in visited or var in leaves:
            continue
        visited.add(var)
        stack.append((var, True))
        if is_and[var]:
            stack.append((fanin1[var] >> 1, False))
            stack.append((fanin0[var] >> 1, False))
    return order


def cut_truth_table(aig: AIG, root: int, cut: Cut) -> int:
    """Truth table of ``root`` expressed over the cut leaves.

    Leaf ``i`` of the cut corresponds to truth-table variable ``i``.  The
    result has ``2 ** cut.size`` bits.
    """
    is_and, fanin0, fanin1 = aig.node_arrays()
    n = cut.size
    tables: Dict[int, int] = {0: 0}  # constant node
    for idx, leaf in enumerate(cut.leaves):
        tables[leaf] = truth.var_table(idx, n)

    full = truth.table_mask(n)
    for var in cut_cone_vars(aig, root, cut):
        if not is_and[var]:
            # A PI inside the cone that is not a leaf cannot happen for a
            # valid cut; guard defensively.
            if var not in tables:
                raise ValueError(f"cut {cut.leaves} does not cover node {root}")
            continue
        f0 = fanin0[var]
        f1 = fanin1[var]
        t0 = tables.get(f0 >> 1)
        t1 = tables.get(f1 >> 1)
        if t0 is None or t1 is None:
            raise ValueError(
                f"fanin variable {(f0 if t0 is None else f1) >> 1} missing from cut cone"
            )
        if f0 & 1:
            t0 ^= full
        if f1 & 1:
            t1 ^= full
        tables[var] = t0 & t1

    if root not in tables:
        raise ValueError(f"cut {cut.leaves} does not cover node {root}")
    return tables[root]


def cut_volume(aig: AIG, root: int, cut: Cut) -> int:
    """Number of AND nodes strictly inside the cut cone (the MFFC-ish volume)."""
    is_and = aig.node_arrays()[0]
    return sum(1 for var in cut_cone_vars(aig, root, cut) if is_and[var])
