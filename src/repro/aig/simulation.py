"""Bit-parallel simulation of AIGs.

Simulation is used in three places in the reproduction:

* functional verification that synthesis passes preserve behaviour
  (exhaustive simulation of small circuits),
* signature-based candidate filtering for ``fraig`` and ``resub``
  (random 64/256-bit word simulation), and
* truth-table computation of collapsed cones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.aig.graph import AIG, Literal, lit_var, lit_is_compl


def simulate(aig: AIG, input_values: Sequence[int]) -> List[int]:
    """Simulate the AIG on a single input vector of 0/1 values.

    Parameters
    ----------
    aig:
        The graph to simulate.
    input_values:
        Sequence of 0/1 values, one per primary input (in PI order).

    Returns
    -------
    The 0/1 values of the primary outputs, in PO order.
    """
    if len(input_values) != aig.num_pis:
        raise ValueError(
            f"expected {aig.num_pis} input values, got {len(input_values)}"
        )
    values = [0] * aig.num_vars
    for var, value in zip(aig.pis, input_values):
        values[var] = int(bool(value))
    for node in aig.nodes():
        if node.is_and:
            assert node.fanin0 is not None and node.fanin1 is not None
            a = values[lit_var(node.fanin0)] ^ int(lit_is_compl(node.fanin0))
            b = values[lit_var(node.fanin1)] ^ int(lit_is_compl(node.fanin1))
            values[node.var] = a & b
    outputs = []
    for po in aig.pos:
        outputs.append(values[lit_var(po)] ^ int(lit_is_compl(po)))
    return outputs


def simulate_words(aig: AIG, input_words: np.ndarray) -> np.ndarray:
    """Bit-parallel simulation with one uint64 word pattern per PI.

    Parameters
    ----------
    input_words:
        Array of shape ``(num_pis, num_words)`` with dtype ``uint64``; bit
        ``j`` of word ``w`` of row ``i`` is the value of input ``i`` in
        simulation pattern ``64 * w + j``.

    Returns
    -------
    Array of shape ``(num_pos, num_words)`` of uint64 output patterns.
    """
    input_words = np.asarray(input_words, dtype=np.uint64)
    if input_words.ndim == 1:
        input_words = input_words[:, None]
    if input_words.shape[0] != aig.num_pis:
        raise ValueError(
            f"expected {aig.num_pis} input rows, got {input_words.shape[0]}"
        )
    num_words = input_words.shape[1]
    all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    values = np.zeros((aig.num_vars, num_words), dtype=np.uint64)
    for row, var in enumerate(aig.pis):
        values[var] = input_words[row]
    for node in aig.nodes():
        if node.is_and:
            assert node.fanin0 is not None and node.fanin1 is not None
            a = values[lit_var(node.fanin0)]
            if lit_is_compl(node.fanin0):
                a = a ^ all_ones
            b = values[lit_var(node.fanin1)]
            if lit_is_compl(node.fanin1):
                b = b ^ all_ones
            values[node.var] = a & b
    outputs = np.zeros((aig.num_pos, num_words), dtype=np.uint64)
    for idx, po in enumerate(aig.pos):
        word = values[lit_var(po)]
        if lit_is_compl(po):
            word = word ^ all_ones
        outputs[idx] = word
    return outputs


def node_signatures(aig: AIG, input_words: np.ndarray) -> np.ndarray:
    """Simulation signatures of *all* variables (not just POs).

    Used by fraig/resub to group candidate-equivalent nodes.  Returns an
    array of shape ``(num_vars, num_words)``.
    """
    input_words = np.asarray(input_words, dtype=np.uint64)
    if input_words.ndim == 1:
        input_words = input_words[:, None]
    num_words = input_words.shape[1]
    all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    values = np.zeros((aig.num_vars, num_words), dtype=np.uint64)
    for row, var in enumerate(aig.pis):
        values[var] = input_words[row]
    for node in aig.nodes():
        if node.is_and:
            assert node.fanin0 is not None and node.fanin1 is not None
            a = values[lit_var(node.fanin0)]
            if lit_is_compl(node.fanin0):
                a = a ^ all_ones
            b = values[lit_var(node.fanin1)]
            if lit_is_compl(node.fanin1):
                b = b ^ all_ones
            values[node.var] = a & b
    return values


def random_simulation(
    aig: AIG, num_words: int = 4, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Simulate all nodes on random patterns; returns node signatures."""
    rng = rng if rng is not None else np.random.default_rng(2022)
    patterns = rng.integers(
        0, np.iinfo(np.uint64).max, size=(aig.num_pis, num_words), dtype=np.uint64,
        endpoint=True,
    )
    return node_signatures(aig, patterns)


def exhaustive_output_tables(aig: AIG) -> List[int]:
    """Truth tables (as Python ints) of all POs over all PI minterms.

    Only feasible for small input counts; guarded at 16 inputs.
    """
    n = aig.num_pis
    if n > 16:
        raise ValueError("exhaustive simulation limited to 16 inputs")
    num_patterns = 1 << n
    num_words = (num_patterns + 63) // 64
    inputs = np.zeros((n, num_words), dtype=np.uint64)
    for pattern in range(num_patterns):
        word, bit = divmod(pattern, 64)
        for i in range(n):
            if (pattern >> i) & 1:
                inputs[i, word] |= np.uint64(1) << np.uint64(bit)
    outputs = simulate_words(aig, inputs)
    tables = []
    for row in outputs:
        value = 0
        for word_idx in range(num_words):
            value |= int(row[word_idx]) << (64 * word_idx)
        mask = (1 << num_patterns) - 1
        tables.append(value & mask)
    return tables


def functionally_equivalent(a: AIG, b: AIG, num_words: int = 8,
                            rng: Optional[np.random.Generator] = None,
                            exhaustive_limit: int = 12) -> bool:
    """Check (or strongly test) functional equivalence of two AIGs.

    For circuits with at most ``exhaustive_limit`` inputs the check is an
    exact exhaustive comparison; beyond that it falls back to random
    simulation with ``num_words * 64`` patterns, which is the standard
    signature-based filter used before SAT in industrial tools (we have no
    SAT solver dependency, so large circuits get a probabilistic check).
    """
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        return False
    if a.num_pis <= exhaustive_limit:
        return exhaustive_output_tables(a) == exhaustive_output_tables(b)
    rng = rng if rng is not None else np.random.default_rng(7)
    patterns = rng.integers(
        0, np.iinfo(np.uint64).max, size=(a.num_pis, num_words), dtype=np.uint64,
        endpoint=True,
    )
    return bool(np.array_equal(simulate_words(a, patterns), simulate_words(b, patterns)))
