"""Structural Verilog export.

Two writers are provided so optimisation results can leave the Python
world and enter a conventional FPGA/ASIC flow:

* :func:`write_verilog` — gate-level Verilog of the AIG itself (two-input
  ``and`` gates plus inverters expressed with ``assign`` statements), and
* :func:`write_lut_verilog` — a LUT-level netlist of a
  :class:`repro.mapping.MappingResult`, with each LUT emitted as an
  ``assign`` over its leaf signals using the cut's truth table.

Both emit plain synthesisable Verilog-2001 with no vendor primitives.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.aig.cuts import Cut, cut_truth_table
from repro.aig.graph import AIG, Literal, lit_is_compl, lit_var
from repro.mapping.lut_mapper import MappingResult


def _sanitise(name: str) -> str:
    """Make an arbitrary symbol name a legal Verilog identifier."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "n_" + cleaned
    return cleaned


def _signal_names(aig: AIG) -> Dict[int, str]:
    """Stable net name per variable: PI names when present, ``n<var>`` else."""
    names: Dict[int, str] = {0: "const0"}
    used = set(names.values())
    for index, pi_var in enumerate(aig.pis):
        raw = aig.node(pi_var).name or f"pi{index}"
        name = _sanitise(raw)
        while name in used:
            name += "_"
        names[pi_var] = name
        used.add(name)
    for node in aig.and_nodes():
        names[node.var] = f"n{node.var}"
    return names


def _literal_expr(literal: Literal, names: Dict[int, str]) -> str:
    if literal == 0:
        return "1'b0"
    if literal == 1:
        return "1'b1"
    base = names[lit_var(literal)]
    return f"~{base}" if lit_is_compl(literal) else base


def verilog_module(aig: AIG, module_name: Optional[str] = None) -> str:
    """Render the AIG as a gate-level Verilog module (returned as a string)."""
    module_name = _sanitise(module_name or aig.name or "aig")
    clean = aig.cleanup()
    names = _signal_names(clean)

    input_ports = [names[pi] for pi in clean.pis]
    output_ports = []
    for index, po_name in enumerate(clean.po_names):
        raw = po_name or f"po{index}"
        port = _sanitise(raw)
        while port in set(input_ports) | set(output_ports):
            port += "_"
        output_ports.append(port)

    lines: List[str] = []
    lines.append(f"module {module_name} (")
    ports = [f"  input  wire {p}" for p in input_ports] + \
            [f"  output wire {p}" for p in output_ports]
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")
    and_vars = [node.var for node in clean.and_nodes()]
    if and_vars:
        wires = ", ".join(names[var] for var in and_vars)
        lines.append(f"  wire {wires};")
        lines.append("")
    for var in and_vars:
        f0, f1 = clean.fanins(var)
        lines.append(
            f"  assign {names[var]} = {_literal_expr(f0, names)} & "
            f"{_literal_expr(f1, names)};"
        )
    lines.append("")
    for port, po_lit in zip(output_ports, clean.pos):
        lines.append(f"  assign {port} = {_literal_expr(po_lit, names)};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(aig: AIG, path: Union[str, Path],
                  module_name: Optional[str] = None) -> None:
    """Write :func:`verilog_module` output to ``path``."""
    Path(path).write_text(verilog_module(aig, module_name=module_name))


# ----------------------------------------------------------------------
# LUT-level netlist
# ----------------------------------------------------------------------
def lut_verilog_module(aig: AIG, mapping: MappingResult,
                       module_name: Optional[str] = None) -> str:
    """Render a mapped LUT netlist as Verilog.

    Each selected LUT becomes one ``assign`` whose right-hand side is the
    sum-of-minterms of the cut function over the LUT's leaf signals —
    functionally exact and vendor-neutral (synthesis tools re-map it onto
    their own LUT primitives).
    """
    module_name = _sanitise((module_name or aig.name or "aig") + "_luts")
    names = _signal_names(aig)

    input_ports = [names[pi] for pi in aig.pis]
    output_ports = []
    for index, po_name in enumerate(aig.po_names):
        raw = po_name or f"po{index}"
        port = _sanitise(raw)
        while port in set(input_ports) | set(output_ports):
            port += "_"
        output_ports.append(port)

    lines: List[str] = [f"module {module_name} ("]
    ports = [f"  input  wire {p}" for p in input_ports] + \
            [f"  output wire {p}" for p in output_ports]
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")
    lut_roots = [lut.root for lut in mapping.luts]
    if lut_roots:
        lines.append("  wire " + ", ".join(names[root] for root in lut_roots) + ";")
        lines.append("")
    for lut in mapping.luts:
        table = cut_truth_table(aig, lut.root, Cut(lut.leaves))
        expr = _sop_expression(table, [names[leaf] for leaf in lut.leaves])
        lines.append(f"  assign {names[lut.root]} = {expr};")
    lines.append("")
    for port, po_lit in zip(output_ports, aig.pos):
        lines.append(f"  assign {port} = {_literal_expr(po_lit, names)};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _sop_expression(table: int, leaf_names: List[str]) -> str:
    """Sum-of-minterms Verilog expression of a truth table over named leaves."""
    num_vars = len(leaf_names)
    num_minterms = 1 << num_vars
    if table == 0:
        return "1'b0"
    if table == (1 << num_minterms) - 1:
        return "1'b1"
    terms = []
    for minterm in range(num_minterms):
        if not (table >> minterm) & 1:
            continue
        factors = []
        for var in range(num_vars):
            if (minterm >> var) & 1:
                factors.append(leaf_names[var])
            else:
                factors.append(f"~{leaf_names[var]}")
        terms.append("(" + " & ".join(factors) + ")")
    return " | ".join(terms)


def write_lut_verilog(aig: AIG, mapping: MappingResult, path: Union[str, Path],
                      module_name: Optional[str] = None) -> None:
    """Write :func:`lut_verilog_module` output to ``path``."""
    Path(path).write_text(lut_verilog_module(aig, mapping, module_name=module_name))
