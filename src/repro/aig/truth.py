"""Truth-table utilities for small functions (up to 16 inputs).

Truth tables are stored as Python integers whose bit ``i`` gives the
function value on the input minterm ``i`` (input 0 is the least
significant selector bit).  This representation is convenient because
Python integers are arbitrary precision, so the same code handles 2-input
cut functions and 12-input collapsed cones.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Iterable, List, Sequence, Tuple


def table_mask(num_vars: int) -> int:
    """All-ones mask over ``2**num_vars`` minterms."""
    return (1 << (1 << num_vars)) - 1


@lru_cache(maxsize=32)
def var_table(index: int, num_vars: int) -> int:
    """Truth table of projection variable ``x_index`` over ``num_vars`` inputs."""
    if index >= num_vars:
        raise ValueError(f"variable {index} out of range for {num_vars} inputs")
    bits = 0
    for minterm in range(1 << num_vars):
        if (minterm >> index) & 1:
            bits |= 1 << minterm
    return bits


def const_table(value: bool, num_vars: int) -> int:
    return table_mask(num_vars) if value else 0


def tt_not(table: int, num_vars: int) -> int:
    return table ^ table_mask(num_vars)


def tt_and(a: int, b: int) -> int:
    return a & b


def tt_or(a: int, b: int) -> int:
    return a | b


def tt_xor(a: int, b: int) -> int:
    return a ^ b


def cofactor(table: int, num_vars: int, var: int, value: int) -> int:
    """Shannon cofactor of ``table`` with respect to ``x_var = value``.

    The result is still expressed over ``num_vars`` variables (the
    cofactored variable becomes don't-care), which keeps composition
    simple.
    """
    mask = var_table(var, num_vars)
    if value:
        positive = table & mask
        return positive | (positive >> (1 << var))
    negative = table & ~mask & table_mask(num_vars)
    return negative | (negative << (1 << var)) & table_mask(num_vars)


def depends_on(table: int, num_vars: int, var: int) -> bool:
    """True when the function actually depends on variable ``var``."""
    return cofactor(table, num_vars, var, 0) != cofactor(table, num_vars, var, 1)


def support(table: int, num_vars: int) -> List[int]:
    """Indices of variables the function depends on."""
    return [v for v in range(num_vars) if depends_on(table, num_vars, v)]


def count_ones(table: int, num_vars: int) -> int:
    """Number of satisfied minterms."""
    return bin(table & table_mask(num_vars)).count("1")


def expand_table(table: int, from_vars: int, to_vars: int) -> int:
    """Re-express a table over a larger variable count (new vars are don't care)."""
    if to_vars < from_vars:
        raise ValueError("cannot shrink a truth table with expand_table")
    result = table & table_mask(from_vars)
    width = 1 << from_vars
    for _ in range(to_vars - from_vars):
        result = result | (result << width)
        width *= 2
    return result


def permute_table(table: int, num_vars: int, perm: Sequence[int]) -> int:
    """Apply an input permutation: new variable ``i`` reads old variable ``perm[i]``."""
    if sorted(perm) != list(range(num_vars)):
        raise ValueError("perm must be a permutation of the variable indices")
    result = 0
    for minterm in range(1 << num_vars):
        old_minterm = 0
        for new_idx, old_idx in enumerate(perm):
            if (minterm >> new_idx) & 1:
                old_minterm |= 1 << old_idx
        if (table >> old_minterm) & 1:
            result |= 1 << minterm
    return result


def flip_input(table: int, num_vars: int, var: int) -> int:
    """Complement one input variable of the function."""
    mask = var_table(var, num_vars)
    shift = 1 << var
    high = table & mask
    low = table & ~mask & table_mask(num_vars)
    return (high >> shift) | ((low << shift) & table_mask(num_vars))


def minterms(table: int, num_vars: int) -> List[int]:
    """List the satisfied minterms of a function."""
    return [m for m in range(1 << num_vars) if (table >> m) & 1]


# ----------------------------------------------------------------------
# NPN canonicalisation
# ----------------------------------------------------------------------
def npn_canonical(table: int, num_vars: int) -> Tuple[int, Tuple[int, ...], int, int]:
    """Exact NPN-canonical form of a small function.

    Returns ``(canon_table, perm, input_flips, output_flip)`` such that the
    canonical table is obtained from ``table`` by flipping the inputs in the
    bitmask ``input_flips``, permuting inputs by ``perm`` and complementing
    the output when ``output_flip`` is 1.  Intended for functions of at most
    4–5 variables (used by the rewriting pass); the enumeration is
    exhaustive.
    """
    best = None
    for out_flip in (0, 1):
        base = tt_not(table, num_vars) if out_flip else table
        for flips in range(1 << num_vars):
            flipped = base
            for v in range(num_vars):
                if (flips >> v) & 1:
                    flipped = flip_input(flipped, num_vars, v)
            for perm in permutations(range(num_vars)):
                candidate = permute_table(flipped, num_vars, perm)
                key = (candidate, perm, flips, out_flip)
                if best is None or candidate < best[0]:
                    best = key
    assert best is not None
    return best


def npn_class_key(table: int, num_vars: int) -> int:
    """Canonical representative table used as an NPN-class dictionary key."""
    return npn_canonical(table, num_vars)[0]


# ----------------------------------------------------------------------
# ISOP (irredundant sum of products) via the Minato–Morreale procedure
# ----------------------------------------------------------------------
def isop(on_set: int, dc_upper: int, num_vars: int) -> List[Tuple[int, int]]:
    """Compute an irredundant SOP cover.

    Parameters
    ----------
    on_set:
        Truth table of the function's on-set (must be covered).
    dc_upper:
        Truth table of ``on_set | dont_care`` (may be used).  For a fully
        specified function pass ``on_set`` twice.
    num_vars:
        Number of input variables.

    Returns
    -------
    list of cubes, each a ``(positive_mask, negative_mask)`` pair of input
    bitmasks: the cube is the conjunction of ``x_i`` for bits in
    ``positive_mask`` and ``~x_i`` for bits in ``negative_mask``.
    """
    cover, _ = _isop_rec(on_set & table_mask(num_vars), dc_upper & table_mask(num_vars), num_vars, num_vars)
    return cover


def _isop_rec(lower: int, upper: int, num_vars: int, depth: int) -> Tuple[List[Tuple[int, int]], int]:
    if lower == 0:
        return [], 0
    if upper == table_mask(num_vars):
        return [(0, 0)], table_mask(num_vars)
    # Choose the top-most variable in the support of either bound.
    var = None
    for v in reversed(range(depth)):
        if depends_on(lower, num_vars, v) or depends_on(upper, num_vars, v):
            var = v
            break
    if var is None:
        # Constant interval: lower != 0 and upper != all-ones cannot happen here.
        return [(0, 0)], table_mask(num_vars)

    l0 = cofactor(lower, num_vars, var, 0)
    l1 = cofactor(lower, num_vars, var, 1)
    u0 = cofactor(upper, num_vars, var, 0)
    u1 = cofactor(upper, num_vars, var, 1)

    cover0, f0 = _isop_rec(l0 & ~u1 & table_mask(num_vars), u0, num_vars, var)
    cover1, f1 = _isop_rec(l1 & ~u0 & table_mask(num_vars), u1, num_vars, var)
    new_lower = (l0 & ~f0 & table_mask(num_vars)) | (l1 & ~f1 & table_mask(num_vars))
    cover2, f2 = _isop_rec(new_lower, u0 & u1, num_vars, var)

    var_mask = var_table(var, num_vars)
    result_table = f2
    cubes: List[Tuple[int, int]] = []
    for pos, neg in cover0:
        cubes.append((pos, neg | (1 << var)))
    for pos, neg in cover1:
        cubes.append((pos | (1 << var), neg))
    cubes.extend(cover2)
    result_table |= (f0 & ~var_mask) & table_mask(num_vars)
    result_table |= f1 & var_mask
    return cubes, result_table


def cube_table(cube: Tuple[int, int], num_vars: int) -> int:
    """Truth table of a single cube ``(positive_mask, negative_mask)``."""
    pos, neg = cube
    table = table_mask(num_vars)
    for v in range(num_vars):
        if (pos >> v) & 1:
            table &= var_table(v, num_vars)
        elif (neg >> v) & 1:
            table &= tt_not(var_table(v, num_vars), num_vars)
    return table


def sop_table(cubes: Iterable[Tuple[int, int]], num_vars: int) -> int:
    """Truth table of a sum-of-products cover."""
    table = 0
    for cube in cubes:
        table |= cube_table(cube, num_vars)
    return table


def cube_literal_count(cube: Tuple[int, int]) -> int:
    pos, neg = cube
    return bin(pos).count("1") + bin(neg).count("1")
