"""AST-based invariant linter for the repro codebase (``repro lint``).

Every load-bearing guarantee this reproduction ships — jobs=N
bit-identical to jobs=1, byte-identical kill+resume, bit-identical fault
recovery — is protected dynamically by golden tests.  This package
protects the *invariant classes behind those guarantees* statically, at
lint time, before any campaign runs:

========  ==========================================================
RPL001    no unseeded ``random`` / ``np.random`` module-level RNG
RPL002    no wall-clock reads in result-affecting paths
RPL003    no ``set`` iteration feeding ordered results
RPL004    IPC safety: module-level pool callables, pickle-safe
          worker exceptions
RPL005    JSON-exact payloads (``allow_nan=False``, arrays through
          :mod:`repro.serialise`)
RPL006    no ``os.environ`` reads outside the config/CLI layer
RPL007    frozen ``_reference`` twins: no imports from the optimised
          module, signature parity on public functions
========  ==========================================================

Deliberate exceptions are suppressed inline with a written reason::

    time.monotonic()  # repro: lint-ok[RPL002] event timestamps only

A suppression without a reason, or one that no longer matches a
violation, is itself reported (RPL000) so the suppression inventory
stays honest.  Configuration lives under ``[tool.repro.lint]`` in
``pyproject.toml``; third-party rule packs register through the
``repro.lint_rules`` entry-point group (see :mod:`repro.registry`).
"""

from repro.lint.core import (
    Diagnostic,
    LintConfig,
    LintRule,
    ModuleInfo,
    Suppression,
    default_rules,
    format_diagnostics_json,
    format_diagnostics_text,
    lint_paths,
    lint_source,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintRule",
    "ModuleInfo",
    "Suppression",
    "default_rules",
    "format_diagnostics_json",
    "format_diagnostics_text",
    "lint_paths",
    "lint_source",
]
