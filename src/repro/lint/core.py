"""Framework of the invariant linter: rules, suppressions, config, driver.

The moving parts, smallest first:

* :class:`Diagnostic` — one finding, with a stable rule code and a
  file/line/column anchor.
* :class:`Suppression` — a parsed ``# repro: lint-ok[RPL###] <reason>``
  comment.  Suppressions must carry a reason and must match at least one
  violation; both failure modes are reported under the reserved code
  ``RPL000`` so stale or lazy suppressions cannot accumulate.
* :class:`ModuleInfo` — one parsed source file (tree, lines,
  suppressions, package-relative path) handed to every rule.
* :class:`LintRule` — base class; concrete rules register through
  :data:`repro.registry.LINT_RULES` (entry-point group
  ``repro.lint_rules``) so external rule packs are discovered exactly
  like optimisers and objectives.
* :class:`LintConfig` — the ``[tool.repro.lint]`` table of
  ``pyproject.toml``: per-rule path allowlists and the frozen-reference
  twin map.  Python 3.10 lacks :mod:`tomllib`; there the built-in
  defaults (kept bit-identical to the shipped pyproject by a test)
  apply.
* :func:`lint_paths` / :func:`lint_source` — the driver: parse, run the
  applicable rules, apply suppressions, report what is left.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Reserved code for problems with suppression comments themselves
#: (missing reason, matching no violation).  Not suppressible.
SUPPRESSION_CODE = "RPL000"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"[ \t]*(?P<reason>.*)$"
)


# ----------------------------------------------------------------------
# Data model
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Diagnostic:
    """One linter finding, anchored to ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: lint-ok[...]`` comment.

    ``target_line`` is the source line the suppression covers: the
    comment's own line for a trailing comment, the following line for a
    comment that stands alone on its line.
    """

    comment_line: int
    target_line: int
    codes: Tuple[str, ...]
    reason: str


@dataclass
class ModuleInfo:
    """One parsed module as seen by the rules."""

    path: str  # package-relative POSIX path, e.g. "repro/bo/base.py"
    source: str
    tree: ast.Module
    suppressions: List[Suppression]

    @property
    def is_reference(self) -> bool:
        return Path(self.path).name == "_reference.py"


class LintError(ValueError):
    """Unusable input: unparsable file, missing path, bad config."""


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
#: Built-in defaults, kept bit-identical to the ``[tool.repro.lint]``
#: table in the shipped pyproject.toml (asserted by the lint test suite)
#: so Python 3.10 — which has no ``tomllib`` — lints identically.
DEFAULT_ALLOW: Dict[str, Tuple[str, ...]] = {
    # Wall-clock reads with no path into results: retry backoff and
    # deadline supervision (faults/engine/run).  Event timestamps in
    # bo/base.py are suppressed inline instead, at their single source.
    "RPL002": (
        "repro/engine/faults.py",
        "repro/engine/engine.py",
        "repro/api/run.py",
    ),
    # The sanctioned environment-access layer: the config module, the
    # CLI, and the campaign env-override layer.
    "RPL006": (
        "repro/config.py",
        "repro/cli.py",
        "repro/api/campaign.py",
    ),
    # The one sanctioned ProcessPoolExecutor construction site: WarmPool.
    "RPL008": (
        "repro/engine/pool.py",
    ),
}

DEFAULT_REFERENCE_TWINS: Dict[str, str] = {
    "repro/aig/_reference.py": "repro/aig/cuts.py",
    "repro/mapping/_reference.py": "repro/mapping/lut_mapper.py",
    "repro/gp/kernels/_reference.py": "repro/gp/kernels/ssk.py",
}


@dataclass(frozen=True)
class LintConfig:
    """The ``[tool.repro.lint]`` table.

    Attributes
    ----------
    select:
        Rule codes to run (empty = every registered rule).
    ignore:
        Rule codes to skip.
    allow:
        Per-rule path allowlists — ``fnmatch`` globs over the
        package-relative path; a matching file is exempt from that rule
        (for whole-file exemptions like "the config layer may read the
        environment"; single deliberate sites use inline suppressions).
    reference_twins:
        Frozen ``_reference.py`` path → optimised twin path, for RPL007.
    """

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    allow: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW))
    reference_twins: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_REFERENCE_TWINS))

    def rule_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        return not self.select or code in self.select

    def path_allowed(self, code: str, path: str) -> bool:
        """True when ``path`` is allowlisted (exempt) for rule ``code``."""
        return any(fnmatch(path, pattern)
                   for pattern in self.allow.get(code, ()))

    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: Mapping[str, object]) -> "LintConfig":
        """Build a config from a parsed ``[tool.repro.lint]`` table."""
        allow_table = table.get("allow", {})
        twins_table = table.get("reference-twins", {})
        if not isinstance(allow_table, Mapping) or not isinstance(
                twins_table, Mapping):
            raise LintError("[tool.repro.lint] allow/reference-twins "
                            "must be tables")
        return cls(
            select=tuple(table.get("select", ()) or ()),
            ignore=tuple(table.get("ignore", ()) or ()),
            allow={str(code): tuple(str(p) for p in paths)
                   for code, paths in allow_table.items()},
            reference_twins={str(ref): str(twin)
                             for ref, twin in twins_table.items()},
        )

    @classmethod
    def from_pyproject(cls, pyproject: Optional[Path]) -> "LintConfig":
        """Load from ``pyproject.toml``; built-in defaults when absent.

        ``tomllib`` is stdlib from Python 3.11; on 3.10 (or for a
        missing/untabled pyproject) the defaults apply — they mirror the
        shipped table exactly.
        """
        if pyproject is None or not pyproject.is_file():
            return cls()
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python 3.10 fallback
            return cls()
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError) as error:
            raise LintError(f"cannot read {pyproject}: {error}") from None
        table = data.get("tool", {}).get("repro", {}).get("lint")
        if table is None:
            return cls()
        return cls.from_table(table)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


# ----------------------------------------------------------------------
# Rule protocol
# ----------------------------------------------------------------------
class LintContext:
    """Shared state rules may consult: config plus a twin-module loader."""

    def __init__(self, config: LintConfig,
                 source_root: Optional[Path] = None) -> None:
        self.config = config
        self.source_root = source_root
        self._module_cache: Dict[str, Optional[ModuleInfo]] = {}

    def load_module(self, rel_path: str) -> Optional[ModuleInfo]:
        """Parse a sibling module by package-relative path (cached)."""
        if rel_path not in self._module_cache:
            info: Optional[ModuleInfo] = None
            if self.source_root is not None:
                full = self.source_root / rel_path
                if full.is_file():
                    try:
                        info = parse_module(
                            full.read_text(encoding="utf-8"), rel_path)
                    except LintError:
                        info = None
            self._module_cache[rel_path] = info
        return self._module_cache[rel_path]


class LintRule:
    """Base class of one checker.

    Subclasses set the class attributes and implement :meth:`check`;
    ``paths`` restricts a rule to package-relative path prefixes (empty
    = every module).  Register with
    :func:`repro.registry.register_lint_rule` so the rule is discovered
    by the driver and by external tooling alike.
    """

    #: Stable diagnostic code, ``RPL###`` for the built-in pack.
    code: str = ""
    #: Short human name used in listings.
    name: str = ""
    #: One-line rationale shown in ``repro lint --explain``-style docs.
    rationale: str = ""
    #: Path prefixes the rule applies to (empty tuple = all files).
    paths: Tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if not self.paths:
            return True
        return any(module.path.startswith(prefix) for prefix in self.paths)

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    # Convenience for subclasses.
    def diagnostic(self, module: ModuleInfo, node: ast.AST,
                   message: str) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def default_rules() -> List[LintRule]:
    """Instantiate every registered rule (built-ins + entry points)."""
    from repro.registry import LINT_RULES

    rules = []
    for key, entry in LINT_RULES.items():
        rule = entry() if isinstance(entry, type) else entry
        if not isinstance(rule, LintRule):
            raise LintError(
                f"lint rule {key!r} is not a LintRule: {entry!r}")
        rules.append(rule)
    return sorted(rules, key=lambda rule: rule.code)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _collect_suppressions(source: str) -> List[Suppression]:
    """Extract lint-ok comments via :mod:`tokenize` (string-literal safe)."""
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            codes = tuple(code.strip()
                          for code in match.group("codes").split(","))
            line = token.start[0]
            own_line = token.line[:token.start[1]].strip() == ""
            suppressions.append(Suppression(
                comment_line=line,
                target_line=line + 1 if own_line else line,
                codes=codes,
                reason=match.group("reason").strip(),
            ))
    except tokenize.TokenError:
        # The ast.parse in parse_module reports the real syntax error.
        pass
    return suppressions


def parse_module(source: str, rel_path: str) -> ModuleInfo:
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as error:
        raise LintError(f"cannot parse {rel_path}: {error}") from None
    return ModuleInfo(
        path=rel_path,
        source=source,
        tree=tree,
        suppressions=_collect_suppressions(source),
    )


def source_root_for(path: Path) -> Path:
    """Directory containing the top-level package of ``path``.

    Walks up while ``__init__.py`` is present, so
    ``.../src/repro/bo/base.py`` maps to ``.../src`` and the
    package-relative path becomes ``repro/bo/base.py``.
    """
    node = path if path.is_dir() else path.parent
    while (node / "__init__.py").is_file() and node.parent != node:
        node = node.parent
    return node


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        yield path
        return
    for file in sorted(path.rglob("*.py")):
        if "__pycache__" not in file.parts:
            yield file


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _run_rules(modules: Sequence[ModuleInfo], config: LintConfig,
               rules: Sequence[LintRule],
               context: LintContext) -> List[Diagnostic]:
    """Run rules and reconcile findings against suppressions."""
    diagnostics: List[Diagnostic] = []
    for module in modules:
        raw: List[Diagnostic] = []
        for rule in rules:
            if not config.rule_enabled(rule.code):
                continue
            if not rule.applies_to(module):
                continue
            if config.path_allowed(rule.code, module.path):
                continue
            raw.extend(rule.check(module, context))

        used: set = set()
        for finding in raw:
            matched = False
            for index, suppression in enumerate(module.suppressions):
                if (finding.line == suppression.target_line
                        and finding.code in suppression.codes
                        and suppression.reason):
                    used.add(index)
                    matched = True
            if not matched:
                diagnostics.append(finding)

        # The suppression inventory must stay honest: no reason, or no
        # matching violation, is itself a finding (RPL000 — reserved,
        # not suppressible).
        for index, suppression in enumerate(module.suppressions):
            if not suppression.reason:
                diagnostics.append(Diagnostic(
                    path=module.path, line=suppression.comment_line, col=0,
                    code=SUPPRESSION_CODE,
                    message="suppression must carry a written reason: "
                            "# repro: lint-ok[CODE] <why this is safe>",
                ))
            elif index not in used:
                codes = ",".join(suppression.codes)
                diagnostics.append(Diagnostic(
                    path=module.path, line=suppression.comment_line, col=0,
                    code=SUPPRESSION_CODE,
                    message=f"unused suppression [{codes}]: no such "
                            "violation on this line — delete the comment "
                            "(or re-anchor it) so the inventory stays "
                            "honest",
                ))
    return sorted(diagnostics)


def lint_paths(
    paths: Sequence[object],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Diagnostic]:
    """Lint files/directories; returns sorted diagnostics."""
    resolved = [Path(str(path)) for path in paths]
    for path in resolved:
        if not path.exists():
            raise LintError(f"no such file or directory: {path}")
    if config is None:
        pyproject = find_pyproject(resolved[0]) if resolved else None
        config = LintConfig.from_pyproject(pyproject)
    if rules is None:
        rules = default_rules()

    modules: List[ModuleInfo] = []
    root: Optional[Path] = None
    for path in resolved:
        for file in _iter_python_files(path):
            file_root = source_root_for(file)
            root = root or file_root
            rel = file.resolve().relative_to(file_root.resolve()).as_posix()
            modules.append(parse_module(
                file.read_text(encoding="utf-8"), rel))
    context = LintContext(config, source_root=root)
    return _run_rules(modules, config, rules, context)


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[LintRule]] = None,
    source_root: Optional[object] = None,
) -> List[Diagnostic]:
    """Lint one in-memory module under a virtual package-relative path.

    The meta-test uses this to prove the rule pack bites: seeding a
    rule's negative fixture into a virtual ``repro/...`` module, or
    re-linting a real module with one suppression deleted, must produce
    diagnostics.  ``source_root`` (when given) enables cross-module
    rules (RPL007 twin loading) against the real tree.
    """
    if config is None:
        config = LintConfig()
    if rules is None:
        rules = default_rules()
    module = parse_module(source, rel_path)
    context = LintContext(
        config,
        source_root=Path(str(source_root)) if source_root is not None else None,
    )
    return _run_rules([module], config, rules, context)


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def format_diagnostics_text(diagnostics: Sequence[Diagnostic],
                            checked: Optional[int] = None) -> str:
    lines = [diag.format() for diag in diagnostics]
    summary = (f"{len(diagnostics)} problem(s)"
               if diagnostics else "clean")
    if checked is not None:
        summary += f" in {checked} file(s)"
    lines.append(summary)
    return "\n".join(lines)


def format_diagnostics_json(diagnostics: Sequence[Diagnostic],
                            checked: Optional[int] = None) -> str:
    counts: Dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    payload = {
        "version": 1,
        "checked_files": checked,
        "counts": counts,
        "diagnostics": [diag.to_dict() for diag in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
