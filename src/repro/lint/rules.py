"""The built-in RPL rule pack: the repo's hard-won invariants, as code.

Each rule encodes an invariant class that previously cost review cycles
(see the PR history in CHANGES.md): unseeded RNG, wall-clock reads in
result paths, set-iteration order, pickle-unsafe IPC, RFC-8259-illegal
checkpoint values, ad-hoc environment reads, and drift between frozen
``_reference`` modules and their optimised twins.

Rules register through :func:`repro.registry.register_lint_rule`
(entry-point group ``repro.lint_rules``), so an external package can
ship additional rules the same way it ships optimisers or objectives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Diagnostic, LintContext, LintRule, ModuleInfo
from repro.registry import register_lint_rule


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted import they are bound to.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    Only import-bound names appear, so a local variable that happens to
    be called ``random`` never resolves to the stdlib module.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.rand`` to ``"numpy.random.rand"`` (or None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        base = aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))
    return None


def _function_args_signature(args: ast.arguments) -> str:
    """Order/name/default signature of a function, annotations ignored.

    Annotations are deliberately excluded from parity: the optimised
    twin may gain richer types without breaking the golden contract, but
    renaming, reordering or re-defaulting a parameter would.
    """
    def fmt(arg_list: List[ast.arg]) -> List[str]:
        return [arg.arg for arg in arg_list]

    defaults = [ast.unparse(default) for default in args.defaults]
    kw_defaults = [ast.unparse(default) if default is not None else None
                   for default in args.kw_defaults]
    return repr((
        fmt(args.posonlyargs), fmt(args.args),
        args.vararg.arg if args.vararg else None,
        fmt(args.kwonlyargs), kw_defaults,
        args.kwarg.arg if args.kwarg else None,
        defaults,
    ))


# ----------------------------------------------------------------------
# RPL001 — unseeded module-level RNG
# ----------------------------------------------------------------------
_NUMPY_SEEDED_CONSTRUCTORS = {
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}


@register_lint_rule
class UnseededRngRule(LintRule):
    code = "RPL001"
    name = "unseeded-rng"
    rationale = ("Module-level RNG (stdlib random.*, legacy np.random.*) "
                 "draws from hidden global state, breaking jobs=N == "
                 "jobs=1 and kill+resume bit-identity; RNG must be "
                 "threaded as a seeded np.random.Generator argument.")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            full = resolve_dotted(node.func, aliases)
            if full is None:
                continue
            if full.startswith("random.") and full != "random.Random":
                yield self.diagnostic(
                    module, node,
                    f"call to {full}() uses the stdlib global RNG; thread "
                    "a seeded np.random.Generator argument instead")
            elif full.startswith("numpy.random."):
                attr = full.rsplit(".", 1)[1]
                if attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.diagnostic(
                            module, node,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded; pass an explicit seed or "
                            "SeedSequence")
                elif attr not in _NUMPY_SEEDED_CONSTRUCTORS:
                    yield self.diagnostic(
                        module, node,
                        f"call to {full}() uses numpy's legacy global "
                        "RNG; use a seeded np.random.Generator instead")


# ----------------------------------------------------------------------
# RPL002 — wall-clock reads in result-affecting paths
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register_lint_rule
class WallClockRule(LintRule):
    code = "RPL002"
    name = "wall-clock"
    rationale = ("Wall-clock reads in result-affecting paths make runs "
                 "machine- and load-dependent; clocks belong only in the "
                 "allowlisted operational layers (fault backoff, deadline "
                 "supervision, event timestamps, benchmarks).")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            full = resolve_dotted(node.func, aliases)
            if full in _WALL_CLOCK_CALLS:
                yield self.diagnostic(
                    module, node,
                    f"wall-clock read {full}() in a result-affecting "
                    "path; results must not depend on the clock "
                    "(allowlist the file or suppress with a reason if "
                    "this is operational timing only)")


# ----------------------------------------------------------------------
# RPL003 — set iteration feeding ordered results
# ----------------------------------------------------------------------
_SET_FORWARDING_CALLS = {"list", "tuple", "enumerate"}


class _SetIterationVisitor(ast.NodeVisitor):
    """Per-scope visitor: infer set-valued names, flag iteration."""

    def __init__(self, rule: "SetIterationRule", module: ModuleInfo,
                 findings: List[Diagnostic]) -> None:
        self.rule = rule
        self.module = module
        self.findings = findings
        self.set_names: Set[str] = set()

    # -- scope handling: nested functions restart the analysis ---------
    def _enter_scope(self, body: List[ast.stmt]) -> None:
        self.set_names = _infer_set_names(body)
        for stmt in body:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved = self.set_names
        self._enter_scope(node.body)
        self.set_names = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- set-expression classification ---------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "union", "intersection", "difference",
                    "symmetric_difference"):
                return self._is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _flag(self, node: ast.AST, how: str) -> None:
        self.findings.append(self.rule.diagnostic(
            self.module, node,
            f"{how} iterates a set in arbitrary hash order; wrap it in "
            "sorted(...) before it can feed ordered results"))

    # -- iteration contexts --------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            if self._is_set_expr(generator.iter):
                self._flag(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set comprehension *over* a set stays unordered — fine.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in _SET_FORWARDING_CALLS
                and node.args and self._is_set_expr(node.args[0])):
            self._flag(node.args[0], f"{node.func.id}(...)")
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr == "join"
              and node.args and self._is_set_expr(node.args[0])):
            self._flag(node.args[0], "str.join(...)")
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if self._is_set_expr(node.value):
            self._flag(node.value, "star-unpacking")
        self.generic_visit(node)


def _infer_set_names(body: List[ast.stmt]) -> Set[str]:
    """Names assigned exclusively set-valued expressions in this scope.

    Conservative: one non-set assignment (or use as a loop/with target)
    disqualifies the name.  Nested function bodies are separate scopes
    and excluded from the scan.
    """
    candidates: Set[str] = set()
    disqualified: Set[str] = set()

    def is_set_literal(value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset"))

    def scan(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda, ast.ClassDef)):
                    continue  # separate scope; ast.walk still descends,
                    # but targets there rebinding our names is rare and
                    # only risks a false *negative*, never a false flag.
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            (candidates if is_set_literal(node.value)
                             else disqualified).add(target.id)
                        else:
                            for name in ast.walk(target):
                                if isinstance(name, ast.Name):
                                    disqualified.add(name.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and node.value:
                        (candidates if is_set_literal(node.value)
                         else disqualified).add(node.target.id)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    for name in ast.walk(node.target):
                        if isinstance(name, ast.Name):
                            disqualified.add(name.id)
                elif isinstance(node, ast.withitem) and node.optional_vars:
                    for name in ast.walk(node.optional_vars):
                        if isinstance(name, ast.Name):
                            disqualified.add(name.id)

    scan(body)
    return candidates - disqualified


@register_lint_rule
class SetIterationRule(LintRule):
    code = "RPL003"
    name = "set-iteration-order"
    rationale = ("Iterating a set yields hash order, which varies across "
                 "processes and versions; anything feeding ordered "
                 "results must go through sorted(...).")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        findings: List[Diagnostic] = []
        visitor = _SetIterationVisitor(self, module, findings)
        visitor._enter_scope(module.tree.body)
        return findings


# ----------------------------------------------------------------------
# RPL004 — IPC safety in the engine layer
# ----------------------------------------------------------------------
_POOL_SUBMISSION_METHODS = {
    "submit", "apply_async", "map", "map_async",
    "imap", "imap_unordered", "starmap",
}


@register_lint_rule
class IpcSafetyRule(LintRule):
    code = "RPL004"
    name = "ipc-safety"
    rationale = ("Objects crossing the process boundary must pickle: "
                 "pool callables must be module-level, and worker "
                 "exceptions with custom __init__ need a __reduce__ "
                 "whose args round-trip construction (the PR-7 "
                 "DeadlineExceeded bug class).")
    paths = ("repro/engine/", "repro/api/")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        nested_defs = self._nested_function_names(module.tree)
        module_level = self._module_level_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_submission(
                    module, node, nested_defs, module_level)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_exception_class(module, node)

    # -- pool submissions ----------------------------------------------
    @staticmethod
    def _nested_function_names(tree: ast.Module) -> Set[str]:
        nested: Set[str] = set()
        for outer in ast.walk(tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(outer):
                    if inner is not outer and isinstance(
                            inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(inner.name)
        return nested

    @staticmethod
    def _module_level_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    names.add((alias.asname or alias.name).split(".")[0])
        return names

    def _callable_problem(self, func: ast.AST, nested: Set[str],
                          module_level: Set[str]) -> Optional[str]:
        if isinstance(func, ast.Lambda):
            return "a lambda cannot cross the process boundary (pickle); "\
                   "use a module-level function"
        if isinstance(func, ast.Name) and func.id in nested and \
                func.id not in module_level:
            return (f"nested function {func.id!r} cannot cross the "
                    "process boundary (pickle); hoist it to module level")
        if isinstance(func, ast.Call):
            # functools.partial(fn, ...): the wrapped fn must be safe.
            if isinstance(func.func, (ast.Name, ast.Attribute)):
                attr = (func.func.id if isinstance(func.func, ast.Name)
                        else func.func.attr)
                if attr == "partial" and func.args:
                    return self._callable_problem(
                        func.args[0], nested, module_level)
        return None

    def _check_submission(self, module: ModuleInfo, node: ast.Call,
                          nested: Set[str],
                          module_level: Set[str]) -> Iterable[Diagnostic]:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_SUBMISSION_METHODS
                and node.args):
            problem = self._callable_problem(node.args[0], nested,
                                             module_level)
            if problem:
                yield self.diagnostic(module, node.args[0], problem)
        # Pool constructors: the initializer callable ships to workers.
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                problem = self._callable_problem(keyword.value, nested,
                                                 module_level)
                if problem:
                    yield self.diagnostic(module, keyword.value, problem)

    # -- worker exceptions ---------------------------------------------
    @staticmethod
    def _is_exception_class(node: ast.ClassDef) -> bool:
        names = [node.name]
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return any(name.endswith(("Error", "Exception")) for name in names)

    def _check_exception_class(
            self, module: ModuleInfo,
            node: ast.ClassDef) -> Iterable[Diagnostic]:
        if not self._is_exception_class(node):
            return
        methods = {stmt.name: stmt for stmt in node.body
                   if isinstance(stmt, ast.FunctionDef)}
        init = methods.get("__init__")
        if init is not None and "__reduce__" not in methods:
            yield self.diagnostic(
                module, init,
                f"{node.name} defines __init__ without __reduce__: "
                "BaseException pickles as (cls, self.args), which no "
                "longer matches the constructor — the exception would "
                "die crossing back from a worker; add __reduce__ "
                "returning (cls, <constructor args>)")


# ----------------------------------------------------------------------
# RPL005 — JSON-exact serialisation payloads
# ----------------------------------------------------------------------
_PAYLOAD_FUNCTIONS = {"state_dict", "_state_dict", "to_payload",
                      "to_dict", "to_json"}
_NON_FINITE_NAMES = {
    "math.inf", "math.nan",
    "numpy.inf", "numpy.nan", "numpy.NINF", "numpy.NAN", "numpy.NaN",
    "numpy.PINF", "numpy.infty",
}


@register_lint_rule
class JsonExactRule(LintRule):
    code = "RPL005"
    name = "json-exact-payloads"
    rationale = ("Checkpoints, specs and RunEvent payloads must be "
                 "RFC-8259-exact JSON: json.dumps needs allow_nan=False "
                 "(so an accidental inf/nan fails loudly instead of "
                 "emitting illegal JSON — the PR-4 -inf sentinel bug "
                 "class), and arrays must go through "
                 "repro.serialise.encode_array, not .tolist().")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                full = resolve_dotted(node.func, aliases)
                if full in ("json.dump", "json.dumps"):
                    yield from self._check_dumps(module, node)
            elif isinstance(node, ast.FunctionDef) and \
                    node.name in _PAYLOAD_FUNCTIONS:
                yield from self._check_payload_function(module, node,
                                                        aliases)

    def _check_dumps(self, module: ModuleInfo,
                     node: ast.Call) -> Iterable[Diagnostic]:
        for keyword in node.keywords:
            if keyword.arg == "allow_nan":
                if (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is False):
                    return
                yield self.diagnostic(
                    module, keyword.value,
                    "allow_nan must be the literal False: nan/inf "
                    "serialise to RFC-8259-illegal tokens that "
                    "json.loads round-trips inconsistently")
                return
        yield self.diagnostic(
            module, node,
            "json.dumps without allow_nan=False: an inf/nan smuggled "
            "into a payload emits illegal JSON instead of failing "
            "loudly (encode sentinels as null first — see "
            "repro.serialise)")

    def _check_payload_function(
            self, module: ModuleInfo, func: ast.FunctionDef,
            aliases: Dict[str, str]) -> Iterable[Diagnostic]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and node.func.attr == "tolist":
                yield self.diagnostic(
                    module, node,
                    f"{func.name}() serialises an array via .tolist(), "
                    "which drops dtype and shape; use "
                    "repro.serialise.encode_array for JSON-exact "
                    "round-trips")
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id == "float" and \
                    node.args and isinstance(node.args[0], ast.Constant) and \
                    str(node.args[0].value).lstrip("+-").lower() in (
                        "inf", "infinity", "nan"):
                yield self.diagnostic(
                    module, node,
                    f"{func.name}() builds a non-finite float, which "
                    "cannot cross JSON exactly; encode the sentinel as "
                    "null (the PR-4 checkpoint bug class)")
            else:
                full = resolve_dotted(node, aliases) if isinstance(
                    node, ast.Attribute) else None
                if full in _NON_FINITE_NAMES:
                    yield self.diagnostic(
                        module, node,
                        f"{func.name}() uses {full}, which cannot cross "
                        "JSON exactly; encode the sentinel as null")


# ----------------------------------------------------------------------
# RPL006 — environment reads outside the config/CLI layer
# ----------------------------------------------------------------------
@register_lint_rule
class EnvironReadRule(LintRule):
    code = "RPL006"
    name = "environ-outside-config"
    rationale = ("Scattered os.environ reads make behaviour depend on "
                 "ambient process state that specs and manifests never "
                 "capture; environment access belongs in the config/CLI "
                 "layer (repro.config, repro.cli, the campaign "
                 "env-override layer), which pins values into explicit "
                 "fields.")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(module.tree)
        seen_lines: Set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            full = resolve_dotted(node, aliases)
            if full in ("os.environ", "os.getenv", "os.putenv"):
                if node.lineno in seen_lines:
                    continue
                seen_lines.add(node.lineno)
                yield self.diagnostic(
                    module, node,
                    f"{full} read outside the config/CLI layer; route "
                    "it through repro.config so the value is pinned "
                    "into explicit spec/campaign fields")


# ----------------------------------------------------------------------
# RPL007 — frozen reference twins
# ----------------------------------------------------------------------
@register_lint_rule
class ReferenceTwinRule(LintRule):
    code = "RPL007"
    name = "reference-twin-drift"
    rationale = ("Frozen _reference.py modules anchor the golden "
                 "equivalence suite: importing optimised code paths "
                 "would make the reference measure itself, and public "
                 "signature drift silently weakens what the goldens "
                 "compare.")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.is_reference

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        twin_path = context.config.reference_twins.get(module.path)
        if twin_path is None:
            yield self.diagnostic(
                module, module.tree,
                "frozen _reference module has no [tool.repro.lint]"
                ".reference-twins entry; declare its optimised twin so "
                "import and signature parity can be checked")
            return
        twin = context.load_module(twin_path)
        if twin is None:
            yield self.diagnostic(
                module, module.tree,
                f"configured twin {twin_path!r} does not exist or does "
                "not parse")
            return
        twin_dotted = twin_path[:-3].replace("/", ".")
        twin_functions = {stmt.name: stmt for stmt in twin.tree.body
                          if isinstance(stmt, ast.FunctionDef)}
        twin_classes = {stmt.name: stmt for stmt in twin.tree.body
                        if isinstance(stmt, ast.ClassDef)}

        yield from self._check_imports(module, twin_dotted, twin_classes)
        yield from self._check_parity(module, twin_path, twin_functions,
                                      twin_classes)

    # -- no optimised code paths imported ------------------------------
    def _check_imports(self, module: ModuleInfo, twin_dotted: str,
                       twin_classes: Dict[str, ast.ClassDef]
                       ) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == twin_dotted:
                        yield self.diagnostic(
                            module, node,
                            f"frozen reference imports its optimised "
                            f"twin module {twin_dotted}; the reference "
                            "must stay self-contained")
            elif isinstance(node, ast.ImportFrom) and \
                    node.module == twin_dotted and not node.level:
                for alias in node.names:
                    if alias.name not in twin_classes:
                        yield self.diagnostic(
                            module, node,
                            f"frozen reference imports {alias.name!r} "
                            f"from its optimised twin {twin_dotted}; "
                            "only shared data types (classes) may be "
                            "imported — optimised functions would make "
                            "the reference measure itself")

    # -- public signature parity ---------------------------------------
    @staticmethod
    def _twin_name(name: str, is_class: bool) -> str:
        if is_class:
            return name[len("Reference"):] if name.startswith(
                "Reference") else name
        return name[:-len("_reference")] if name.endswith(
            "_reference") else name

    def _check_parity(self, module: ModuleInfo, twin_path: str,
                      twin_functions: Dict[str, ast.FunctionDef],
                      twin_classes: Dict[str, ast.ClassDef]
                      ) -> Iterable[Diagnostic]:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.FunctionDef) and \
                    not stmt.name.startswith("_"):
                target = self._twin_name(stmt.name, is_class=False)
                counterpart = twin_functions.get(target)
                if counterpart is None:
                    yield self.diagnostic(
                        module, stmt,
                        f"public reference function {stmt.name}() has no "
                        f"optimised counterpart {target}() in {twin_path}")
                elif (_function_args_signature(stmt.args)
                      != _function_args_signature(counterpart.args)):
                    yield self.diagnostic(
                        module, stmt,
                        f"signature of {stmt.name}() drifted from its "
                        f"optimised twin {target}() in {twin_path}: the "
                        "golden equivalence suite compares them "
                        "positionally")
            elif isinstance(stmt, ast.ClassDef) and \
                    not stmt.name.startswith("_"):
                target = self._twin_name(stmt.name, is_class=True)
                twin_class = twin_classes.get(target)
                if twin_class is None:
                    yield self.diagnostic(
                        module, stmt,
                        f"public reference class {stmt.name} has no "
                        f"optimised counterpart {target} in {twin_path}")
                    continue
                twin_methods = {m.name: m for m in twin_class.body
                                if isinstance(m, ast.FunctionDef)}
                for method in stmt.body:
                    if not isinstance(method, ast.FunctionDef):
                        continue
                    if method.name.startswith("_") and \
                            method.name != "__init__" and \
                            not method.name.startswith("__"):
                        continue
                    counterpart = twin_methods.get(method.name)
                    if counterpart is None:
                        continue  # reference-only helpers are fine
                    if (_function_args_signature(method.args)
                            != _function_args_signature(counterpart.args)):
                        yield self.diagnostic(
                            module, method,
                            f"signature of {stmt.name}.{method.name}() "
                            f"drifted from {target}.{method.name}() in "
                            f"{twin_path}")


# ----------------------------------------------------------------------
# RPL008 — warm pools only: no per-call executor construction
# ----------------------------------------------------------------------
_POOL_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}


@register_lint_rule
class WarmPoolRule(LintRule):
    code = "RPL008"
    name = "warm-pool-only"
    rationale = ("Per-call ProcessPoolExecutor construction in the "
                 "engine/api hot paths re-pays process spin-up, spec "
                 "pickling and circuit rebuild on every batch — the "
                 "parallelism-inversion bug class.  Pools must come from "
                 "the engine-owned repro.engine.pool.WarmPool accessor "
                 "(the allowlisted construction site).")
    paths = ("repro/engine/", "repro/api/")

    def check(self, module: ModuleInfo,
              context: LintContext) -> Iterable[Diagnostic]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = (aliases.get(node.func.id)
                      if isinstance(node.func, ast.Name)
                      else resolve_dotted(node.func, aliases))
            if dotted in _POOL_CONSTRUCTORS:
                yield self.diagnostic(
                    module, node,
                    f"direct {dotted.rsplit('.', 1)[-1]} construction in an "
                    "engine/api hot path; obtain the pool from the "
                    "engine-owned WarmPool (repro.engine.pool) so workers "
                    "stay warm across batches")


#: Stable listing used by the README rule table and the CLI.
RULE_PACK: Tuple[type, ...] = (
    UnseededRngRule, WallClockRule, SetIterationRule, IpcSafetyRule,
    JsonExactRule, EnvironReadRule, ReferenceTwinRule, WarmPoolRule,
)
