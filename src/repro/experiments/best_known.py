"""Proxy for the paper's "EPFL best (lvl / count)" baseline.

The EPFL benchmark suite maintains a leaderboard of the best known
*area-only* (LUT count) and *depth-only* (levels) mappings per circuit.
The paper folds those single-objective records into its QoR metric and
uses them as an additional reference line, noting that "no one heuristic
can simultaneously optimise both".

Without access to the leaderboard, this module reproduces the mechanism:
for each circuit it searches (greedy + random restarts, area-only and
delay-only objectives, generously budgeted relative to the other methods)
for the best-known area and the best-known delay *independently*, then
reports the QoR values those single-objective solutions achieve — which
is exactly how the paper's "EPFL best (count)" and "EPFL best (lvl)"
columns behave, including the fact that they can be strongly negative
when a record for one objective is terrible on the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator


@dataclass(frozen=True)
class BestKnownReference:
    """Best-known single-objective results folded into the QoR metric."""

    best_area_sequence: Tuple[str, ...]
    best_area: int
    best_area_qor_improvement: float
    best_delay_sequence: Tuple[str, ...]
    best_delay: int
    best_delay_qor_improvement: float


def _single_objective_search(
    evaluator: QoREvaluator,
    space: SequenceSpace,
    objective: str,
    budget: int,
    rng: np.random.Generator,
) -> Tuple[Tuple[str, ...], int, float]:
    """Greedy-plus-random search minimising a single objective."""
    assert objective in ("area", "delay")

    def score(record) -> int:
        return record.area if objective == "area" else record.delay

    best_record = None
    spent = 0
    # Phase 1: random exploration for half the budget.
    samples = space.latin_hypercube_sample(max(1, budget // 2), rng)
    for row in samples:
        if spent >= budget:
            break
        record = evaluator.evaluate(space.to_names(row))
        spent += 1
        if best_record is None or score(record) < score(best_record):
            best_record = record
    # Phase 2: hill climbing from the best sample.
    assert best_record is not None
    current = space.to_indices(best_record.sequence)
    while spent < budget:
        neighbour = space.random_neighbour(current, rng)
        record = evaluator.evaluate(space.to_names(neighbour))
        spent += 1
        if score(record) < score(best_record):
            best_record = record
            current = neighbour
    return best_record.sequence, score(best_record), best_record.qor_improvement


def best_known_reference(
    evaluator: QoREvaluator,
    space: Optional[SequenceSpace] = None,
    budget_per_objective: int = 50,
    seed: int = 12345,
) -> BestKnownReference:
    """Compute the best-known-area and best-known-delay reference lines.

    The returned QoR-improvement numbers play the role of the paper's
    "EPFL best (count)" and "EPFL best (lvl)" columns.
    """
    space = space if space is not None else SequenceSpace()
    rng = np.random.default_rng(seed)
    area_seq, area_value, area_improvement = _single_objective_search(
        evaluator, space, "area", budget_per_objective, rng,
    )
    delay_seq, delay_value, delay_improvement = _single_objective_search(
        evaluator, space, "delay", budget_per_objective, rng,
    )
    return BestKnownReference(
        best_area_sequence=area_seq,
        best_area=area_value,
        best_area_qor_improvement=area_improvement,
        best_delay_sequence=delay_seq,
        best_delay=delay_value,
        best_delay_qor_improvement=delay_improvement,
    )
