"""Figure 3 (top row): the per-circuit QoR-improvement table.

For every circuit and every method the paper reports the best achieved QoR
improvement over ``resyn2`` (in percent), averaged over five random seeds,
with a budget of 200 tested sequences.  This module assembles exactly that
table from a grid of :class:`repro.bo.base.OptimisationResult` runs and can
optionally append the "EPFL best" reference columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bo.base import OptimisationResult
from repro.circuits.registry import get_circuit_spec
from repro.experiments.best_known import BestKnownReference
from repro.experiments.runner import ExperimentConfig, group_results, run_experiment


@dataclass
class QoRTable:
    """The assembled table: rows are circuits, columns are methods.

    ``values[circuit][method]`` is the mean best QoR improvement (percent)
    across seeds; ``stds`` carries the across-seed standard deviations.
    """

    circuits: List[str]
    methods: List[str]
    values: Dict[str, Dict[str, float]]
    stds: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def value(self, circuit: str, method: str) -> float:
        return self.values[circuit][method]

    def row_average(self) -> Dict[str, float]:
        """Column means over circuits (the table's "Average" row)."""
        averages: Dict[str, float] = {}
        for method in self.methods:
            entries = [self.values[c][method] for c in self.circuits
                       if method in self.values[c]]
            averages[method] = float(np.mean(entries)) if entries else float("nan")
        return averages

    def winners(self) -> Dict[str, str]:
        """Best method per circuit (ties broken towards the first listed)."""
        winners = {}
        for circuit in self.circuits:
            row = self.values[circuit]
            winners[circuit] = max(row, key=lambda m: row[m])
        return winners

    def wins(self, method: str) -> int:
        """Number of circuits on which ``method`` achieves the best value."""
        return sum(1 for winner in self.winners().values() if winner == method)

    # ------------------------------------------------------------------
    def to_text(self, precision: int = 2) -> str:
        """Plain-text rendering matching the paper's layout."""
        col_width = max(12, max(len(m) for m in self.methods) + 2)
        header = "Circuit".ljust(16) + "".join(m.ljust(col_width) for m in self.methods)
        lines = [header, "-" * len(header)]
        for circuit in self.circuits:
            display = get_circuit_spec(circuit).display_name if _is_known(circuit) else circuit
            row = display.ljust(16)
            for method in self.methods:
                value = self.values[circuit].get(method)
                cell = "-" if value is None or np.isnan(value) else f"{value:.{precision}f}"
                row += cell.ljust(col_width)
            lines.append(row)
        averages = self.row_average()
        row = "Average".ljust(16)
        for method in self.methods:
            value = averages[method]
            cell = "-" if np.isnan(value) else f"{value:.{precision}f}"
            row += cell.ljust(col_width)
        lines.append("-" * len(header))
        lines.append(row)
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (circuit, method, mean, std)."""
        lines = ["circuit,method,mean_improvement,std_improvement"]
        for circuit in self.circuits:
            for method in self.methods:
                mean = self.values[circuit].get(method, float("nan"))
                std = self.stds.get(circuit, {}).get(method, float("nan"))
                lines.append(f"{circuit},{method},{mean:.6f},{std:.6f}")
        return "\n".join(lines)


def _is_known(circuit: str) -> bool:
    # ValueError covers file-backed circuits whose file is missing or
    # unreadable at rendering time — fall back to the raw name.
    try:
        get_circuit_spec(circuit)
        return True
    except (KeyError, ValueError):
        return False


# ----------------------------------------------------------------------
def build_qor_table(
    results: Sequence[OptimisationResult],
    best_known: Optional[Dict[str, BestKnownReference]] = None,
) -> QoRTable:
    """Aggregate grid results into the Figure 3 (top) table."""
    grouped = group_results(results)
    methods = list(grouped.keys())
    circuits: List[str] = []
    for method_results in grouped.values():
        for circuit in method_results:
            if circuit not in circuits:
                circuits.append(circuit)

    values: Dict[str, Dict[str, float]] = {c: {} for c in circuits}
    stds: Dict[str, Dict[str, float]] = {c: {} for c in circuits}
    for method, per_circuit in grouped.items():
        for circuit, runs in per_circuit.items():
            improvements = [run.best_improvement for run in runs]
            values[circuit][method] = float(np.mean(improvements))
            stds[circuit][method] = float(np.std(improvements))

    if best_known:
        for circuit, reference in best_known.items():
            if circuit not in values:
                continue
            values[circuit]["EPFL best (lvl)"] = reference.best_delay_qor_improvement
            values[circuit]["EPFL best (count)"] = reference.best_area_qor_improvement
        methods = methods + ["EPFL best (lvl)", "EPFL best (count)"]

    return QoRTable(circuits=circuits, methods=methods, values=values, stds=stds)


def run_qor_table(config: Optional[ExperimentConfig] = None,
                  progress=None) -> QoRTable:
    """Convenience wrapper: run the grid then build the table."""
    config = config if config is not None else ExperimentConfig()
    results = run_experiment(config, progress=progress)
    return build_qor_table(results)
