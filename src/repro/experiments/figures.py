"""Plain-text / CSV rendering helpers for the regenerated figures.

The repository has no plotting dependency (matplotlib is not part of the
offline environment), so every figure is emitted in two machine- and
human-readable forms: a CSV of the underlying series and an ASCII
rendering suitable for terminal inspection.  The benchmark harnesses under
``benchmarks/`` write these artefacts next to their timing output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.convergence import ConvergenceCurves
from repro.experiments.pareto import ParetoStudy
from repro.experiments.qor_table import QoRTable
from repro.experiments.sample_efficiency import SampleEfficiencyResult


def ascii_line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render named series as a crude ASCII line chart.

    Each series is resampled to ``width`` columns; rows are value buckets.
    Good enough to eyeball convergence behaviour in a terminal or log file.
    """
    if not series:
        return title
    all_values = [v for values in series.values() for v in values if np.isfinite(v)]
    if not all_values:
        return title
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*+o x#@%&"
    for idx, (name, values) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        values = list(values)
        if not values:
            continue
        for col in range(width):
            # Nearest-sample resampling onto the chart width.
            src = min(len(values) - 1, int(round(col / max(1, width - 1) * (len(values) - 1))))
            value = values[src]
            if not np.isfinite(value):
                continue
            row = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={hi:.3f}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(f"min={lo:.3f}")
    legend = "  ".join(
        f"{markers[idx % len(markers)]}={name}" for idx, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def render_figure1(result: SampleEfficiencyResult) -> str:
    """Figure 1: average evaluations-to-target per method."""
    lines = [
        "Figure 1 — evaluations needed to reach "
        f"{result.target_fraction:.1%} of {result.reference_method}'s QoR",
        f"(extended budget {result.extended_budget})",
        "",
        f"{'method':22s}{'avg. evaluations':>18s}{'ratio vs ref':>14s}",
    ]
    reference = result.average_evaluations.get(result.reference_method, float("nan"))
    for method, value in sorted(result.average_evaluations.items(), key=lambda kv: kv[1]):
        ratio = value / reference if reference else float("nan")
        lines.append(f"{method:22s}{value:18.1f}{ratio:14.2f}")
    return "\n".join(lines)


def render_figure3_table(table: QoRTable) -> str:
    """Figure 3 (top row): the QoR improvement table."""
    return "Figure 3 (top) — QoR improvement (%) vs resyn2\n" + table.to_text()


def render_figure3_convergence(curves: ConvergenceCurves) -> str:
    """Figure 3 (middle row): per-circuit convergence charts."""
    blocks = []
    for circuit in curves.circuits:
        blocks.append(
            ascii_line_chart(
                curves.curves[circuit],
                title=f"Figure 3 (middle) — {circuit}: best QoR improvement vs evaluations",
            )
        )
    return "\n\n".join(blocks)


def render_figure3_pareto(study: ParetoStudy) -> str:
    """Figure 3 (bottom row): Pareto membership summary."""
    lines = ["Figure 3 (bottom) — fraction of best solutions on the area/delay Pareto front"]
    for method, pct in sorted(study.on_front_percentages().items(),
                              key=lambda kv: -kv[1]):
        lines.append(f"  {method:22s}{pct:6.1f}%")
    for circuit in study.circuits:
        lines.append(f"\n{circuit}: front = {study.fronts.get(circuit)}")
        for method in study.methods:
            points = study.best_points.get(circuit, {}).get(method, [])
            lines.append(f"  {method:22s}{points}")
    return "\n".join(lines)


def render_figure2(x: Sequence[float], prior_samples: np.ndarray,
                   posterior_samples: np.ndarray) -> str:
    """Figure 2: GP prior and posterior sample functions."""
    prior = {f"prior {i}": prior_samples[i] for i in range(min(3, len(prior_samples)))}
    posterior = {f"post {i}": posterior_samples[i] for i in range(min(3, len(posterior_samples)))}
    return (
        ascii_line_chart(prior, title="Figure 2 (left) — samples from the GP prior (SE kernel)")
        + "\n\n"
        + ascii_line_chart(posterior, title="Figure 2 (right) — samples from the GP posterior")
    )
