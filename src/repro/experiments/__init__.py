"""Experiment runners regenerating the paper's tables and figures.

Every experiment in the paper's Section IV has a dedicated module:

* :mod:`repro.experiments.runner` — shared machinery: build optimisers by
  name, run (method × circuit × seed) grids, aggregate results.
* :mod:`repro.experiments.qor_table` — Figure 3 (top row): the QoR
  improvement table over all ten circuits.
* :mod:`repro.experiments.sample_efficiency` — Figure 1: evaluations
  needed to reach 97.5 % of BOiLS' QoR.
* :mod:`repro.experiments.convergence` — Figure 3 (middle row): best-so-far
  QoR improvement versus number of tested sequences.
* :mod:`repro.experiments.pareto` — Figure 3 (bottom row): area/delay
  Pareto fronts and the %-on-front statistic.
* :mod:`repro.experiments.best_known` — the "EPFL best" baseline proxy
  (single-objective best-known results combined into a QoR reference).
* :mod:`repro.experiments.figures` — plain-text/CSV rendering of all of
  the above.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    MethodSpec,
    available_methods,
    make_optimiser,
    run_experiment,
    run_method_on_circuit,
)
from repro.experiments.qor_table import QoRTable, build_qor_table
from repro.experiments.sample_efficiency import SampleEfficiencyResult, sample_efficiency_study
from repro.experiments.convergence import ConvergenceCurves, convergence_study
from repro.experiments.pareto import ParetoStudy, pareto_front, pareto_study
from repro.experiments.best_known import best_known_reference

__all__ = [
    "ExperimentConfig",
    "MethodSpec",
    "available_methods",
    "make_optimiser",
    "run_experiment",
    "run_method_on_circuit",
    "QoRTable",
    "build_qor_table",
    "SampleEfficiencyResult",
    "sample_efficiency_study",
    "ConvergenceCurves",
    "convergence_study",
    "ParetoStudy",
    "pareto_front",
    "pareto_study",
    "best_known_reference",
]
