"""Shared experiment machinery: method registry, per-run driver, grids.

The paper's evaluation protocol is a grid: {method} × {circuit} × {seed},
each cell a budget-limited optimisation run returning the best QoR
improvement over ``resyn2``.  This module provides that grid runner plus
environment-variable knobs (``REPRO_BUDGET``, ``REPRO_SEEDS``,
``REPRO_WIDTH_SCALE``) so the same code drives both the fast CI-scale
defaults and paper-scale reproductions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    A2COptimiser,
    GeneticAlgorithm,
    GraphRLOptimiser,
    GreedySearch,
    PPOOptimiser,
    RandomSearch,
)
from repro.bo import BOiLS, SequenceSpace, StandardBO
from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.circuits import get_circuit
from repro.qor import QoREvaluator


@dataclass(frozen=True)
class MethodSpec:
    """A named optimiser constructor with default keyword arguments."""

    key: str
    display_name: str
    factory: Callable[..., SequenceOptimiser]
    defaults: Dict[str, object] = field(default_factory=dict)


_METHODS: List[MethodSpec] = [
    MethodSpec("boils", "BOiLS", BOiLS,
               {"num_initial": 5, "local_search_queries": 200, "adam_steps": 5,
                "fit_every": 2}),
    MethodSpec("sbo", "SBO", StandardBO, {"num_initial": 5, "adam_steps": 5, "fit_every": 2}),
    MethodSpec("rs", "RS", RandomSearch, {}),
    MethodSpec("greedy", "Greedy", GreedySearch, {}),
    MethodSpec("ga", "GA", GeneticAlgorithm, {}),
    MethodSpec("a2c", "DRiLLS (A2C)", A2COptimiser, {}),
    MethodSpec("ppo", "DRiLLS (PPO)", PPOOptimiser, {}),
    MethodSpec("graph-rl", "Graph-RL", GraphRLOptimiser, {}),
]

_METHODS_BY_KEY: Dict[str, MethodSpec] = {spec.key: spec for spec in _METHODS}


def available_methods() -> List[str]:
    """Keys of all registered optimisation methods."""
    return [spec.key for spec in _METHODS]


def method_display_names() -> Dict[str, str]:
    """Mapping from registry key to the display name used in tables."""
    return {spec.key: spec.display_name for spec in _METHODS}


def make_optimiser(
    key: str,
    space: Optional[SequenceSpace] = None,
    seed: int = 0,
    **overrides: object,
) -> SequenceOptimiser:
    """Instantiate an optimiser from its registry key."""
    if key not in _METHODS_BY_KEY:
        raise KeyError(f"unknown method {key!r}; available: {available_methods()}")
    spec = _METHODS_BY_KEY[key]
    kwargs = dict(spec.defaults)
    kwargs.update(overrides)
    return spec.factory(space=space, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Experiment configuration
# ----------------------------------------------------------------------
def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


@dataclass
class ExperimentConfig:
    """Grid configuration shared by all experiment entry points.

    The paper's setting is ``budget=200`` (``1000`` for the extended
    sample-efficiency study), ``num_seeds=5``, ``sequence_length=20`` on
    the full-size EPFL circuits; the defaults here are scaled down so the
    benchmark suite completes quickly, and are overridable both in code and
    through environment variables (``REPRO_BUDGET``, ``REPRO_SEEDS``,
    ``REPRO_SEQ_LENGTH``, ``REPRO_CIRCUIT_WIDTH``).
    """

    # Environment overrides are read at *instantiation* time (not import
    # time), so setting REPRO_BUDGET before building a config always works.
    budget: int = field(default_factory=lambda: _env_int("REPRO_BUDGET", 12))
    num_seeds: int = field(default_factory=lambda: _env_int("REPRO_SEEDS", 2))
    sequence_length: int = field(default_factory=lambda: _env_int("REPRO_SEQ_LENGTH", 8))
    circuit_width: Optional[int] = field(
        default_factory=lambda: _env_int("REPRO_CIRCUIT_WIDTH", 0) or None
    )
    methods: Sequence[str] = ("boils", "sbo", "ga", "rs", "greedy", "a2c")
    circuits: Sequence[str] = ("adder", "bar", "div", "hyp", "log2", "max",
                               "multiplier", "sin", "sqrt", "square")
    lut_size: int = 6
    method_overrides: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def space(self) -> SequenceSpace:
        return SequenceSpace(sequence_length=self.sequence_length)

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The configuration matching the paper's protocol."""
        return cls(budget=200, num_seeds=5, sequence_length=20, circuit_width=None)

    @classmethod
    def quick(cls, circuits: Sequence[str] = ("adder", "sqrt"),
              methods: Sequence[str] = ("boils", "rs")) -> "ExperimentConfig":
        """A minimal configuration used by tests and CI benchmarks."""
        return cls(budget=8, num_seeds=1, sequence_length=5, circuit_width=None,
                   circuits=circuits, methods=methods)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def run_method_on_circuit(
    method_key: str,
    circuit_name: str,
    config: ExperimentConfig,
    seed: int,
    evaluator: Optional[QoREvaluator] = None,
) -> OptimisationResult:
    """Run one (method, circuit, seed) cell of the grid."""
    if evaluator is None:
        aig = get_circuit(circuit_name, width=config.circuit_width)
        evaluator = QoREvaluator(aig, lut_size=config.lut_size)
    else:
        evaluator.reset_history()
    overrides = dict(config.method_overrides.get(method_key, {}))
    optimiser = make_optimiser(method_key, space=config.space(), seed=seed, **overrides)
    result = optimiser.optimise(evaluator, budget=config.budget)
    result.circuit = circuit_name
    return result


def run_experiment(
    config: ExperimentConfig,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[OptimisationResult]:
    """Run the full (method × circuit × seed) grid described by ``config``.

    Cells are dispatched through :mod:`repro.engine.grid`: ``jobs > 1``
    runs them across a process pool, ``jobs = 1`` runs the same cell code
    in-process.  Every cell starts from a fresh per-run evaluator state
    (the ``resyn2`` reference mapping is still shared per circuit within
    a process), which makes the result grid independent of ``jobs`` and
    of cell ordering.  Pass ``cache_dir`` to share a persistent QoR cache
    across cells, processes and repeated runs — warm entries skip the
    synthesis + mapping computation without changing any result.
    """
    # Imported here to avoid a module cycle (the grid imports the method
    # registry from this module).
    from repro.engine.grid import run_grid

    return run_grid(config, jobs=jobs, cache_dir=cache_dir, progress=progress)


def group_results(results: Sequence[OptimisationResult]) -> Dict[str, Dict[str, List[OptimisationResult]]]:
    """Group run results as ``{method: {circuit: [runs across seeds]}}``."""
    grouped: Dict[str, Dict[str, List[OptimisationResult]]] = {}
    for result in results:
        grouped.setdefault(result.method, {}).setdefault(result.circuit, []).append(result)
    return grouped
