"""Legacy experiment machinery, now thin shims over the public API.

Historically this module owned a private ``_METHODS`` list and the
env-var-steered :class:`ExperimentConfig`.  Both have been superseded:

* the method table is the :data:`repro.registry.OPTIMISERS` registry
  (decorator-based, entry-point extensible) — :func:`available_methods`,
  :func:`method_display_names` and :func:`make_optimiser` are kept as
  compatibility wrappers;
* grid configuration is the declarative :class:`repro.api.Campaign` /
  :class:`repro.api.Problem` pair — :class:`ExperimentConfig` remains as
  a deprecated adapter (see :meth:`ExperimentConfig.to_campaign`) so
  existing scripts keep running unchanged.

New code should import from :mod:`repro.api`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit
from repro.qor import QoREvaluator
from repro.registry import MethodSpec, OPTIMISERS, optimiser_spec

__all__ = [
    "MethodSpec",
    "ExperimentConfig",
    "available_methods",
    "method_display_names",
    "make_optimiser",
    "run_method_on_circuit",
    "run_experiment",
    "group_results",
]


def available_methods() -> List[str]:
    """Keys of all registered optimisation methods."""
    return OPTIMISERS.keys()


def method_display_names() -> Dict[str, str]:
    """Mapping from registry key to the display name used in tables."""
    return {key: optimiser_spec(key).display_name for key in OPTIMISERS.keys()}


def make_optimiser(
    key: str,
    space: Optional[SequenceSpace] = None,
    seed: int = 0,
    **overrides: object,
) -> SequenceOptimiser:
    """Instantiate an optimiser from its registry key.

    Applies the method's registered grid defaults first, then any
    explicit ``overrides`` — identical precedence to the historical
    ``_METHODS`` table.
    """
    spec = optimiser_spec(key)
    kwargs = dict(spec.defaults)
    kwargs.update(overrides)
    return spec.factory(space=space, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
def _env_int(name: str, default: int) -> int:
    """An integer environment override, warning loudly when malformed.

    Delegates to :func:`repro.api.campaign.env_int` (imported lazily to
    keep this legacy module cycle-free): a typo like ``REPRO_BUDGET=abc``
    still falls back to the default, but emits a :class:`UserWarning`
    naming the variable and the value instead of silently running the
    wrong experiment.
    """
    from repro.api.campaign import env_int

    return env_int(name, default)


@dataclass
class ExperimentConfig:
    """Grid configuration shared by the legacy experiment entry points.

    .. deprecated::
        New code should build a :class:`repro.api.Campaign` (declarative,
        JSON-round-trippable, resumable); this class remains as an
        adapter for existing scripts and converts via
        :meth:`to_campaign`.  Environment overrides are read at
        *instantiation* time (not import time) through :func:`_env_int`,
        which warns on malformed values.

    The paper's setting is ``budget=200`` (``1000`` for the extended
    sample-efficiency study), ``num_seeds=5``, ``sequence_length=20`` on
    the full-size EPFL circuits; the defaults here are scaled down so the
    benchmark suite completes quickly.
    """

    budget: int = field(default_factory=lambda: _env_int("REPRO_BUDGET", 12))
    num_seeds: int = field(default_factory=lambda: _env_int("REPRO_SEEDS", 2))
    sequence_length: int = field(default_factory=lambda: _env_int("REPRO_SEQ_LENGTH", 8))
    circuit_width: Optional[int] = field(
        default_factory=lambda: _env_int("REPRO_CIRCUIT_WIDTH", 0) or None
    )
    methods: Sequence[str] = ("boils", "sbo", "ga", "rs", "greedy", "a2c")
    circuits: Sequence[str] = ("adder", "bar", "div", "hyp", "log2", "max",
                               "multiplier", "sin", "sqrt", "square")
    lut_size: int = 6
    objective: object = "eq1"
    method_overrides: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def space(self) -> SequenceSpace:
        return SequenceSpace(sequence_length=self.sequence_length)

    def to_campaign(self, name: str = "experiment"):
        """The equivalent declarative :class:`repro.api.Campaign`."""
        from repro.api import Campaign, Problem

        problems = tuple(
            Problem(
                circuit=circuit,
                width=self.circuit_width,
                lut_size=self.lut_size,
                sequence_length=self.sequence_length,
                objective=self.objective,
            )
            for circuit in self.circuits
        )
        return Campaign(
            name=name,
            problems=problems,
            methods=tuple(self.methods),
            seeds=tuple(range(self.num_seeds)),
            budget=self.budget,
            # Legacy semantics: overrides for methods outside the grid are
            # simply unused, while Campaign.validate treats them as typos —
            # drop them here so every valid config converts cleanly.
            method_overrides={k: dict(v) for k, v in self.method_overrides.items()
                              if k in self.methods},
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The configuration matching the paper's protocol."""
        return cls(budget=200, num_seeds=5, sequence_length=20, circuit_width=None)

    @classmethod
    def quick(cls, circuits: Sequence[str] = ("adder", "sqrt"),
              methods: Sequence[str] = ("boils", "rs")) -> "ExperimentConfig":
        """A minimal configuration used by tests and CI benchmarks."""
        return cls(budget=8, num_seeds=1, sequence_length=5, circuit_width=None,
                   circuits=circuits, methods=methods)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def run_method_on_circuit(
    method_key: str,
    circuit_name: str,
    config: ExperimentConfig,
    seed: int,
    evaluator: Optional[QoREvaluator] = None,
) -> OptimisationResult:
    """Run one (method, circuit, seed) cell of the grid."""
    if evaluator is None:
        aig = get_circuit(circuit_name, width=config.circuit_width)
        evaluator = QoREvaluator(aig, lut_size=config.lut_size,
                                 objective=config.objective)
    else:
        evaluator.reset_history()
    overrides = dict(config.method_overrides.get(method_key, {}))
    optimiser = make_optimiser(method_key, space=config.space(), seed=seed, **overrides)
    result = optimiser.optimise(evaluator, budget=config.budget)
    result.circuit = circuit_name
    return result


def run_experiment(
    config: ExperimentConfig,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[OptimisationResult]:
    """Run the full (method × circuit × seed) grid described by ``config``.

    Cells are dispatched through :mod:`repro.engine.grid`: ``jobs > 1``
    runs them across a process pool, ``jobs = 1`` runs the same cell code
    in-process.  Every cell starts from a fresh per-run evaluator state
    (the ``resyn2`` reference mapping is still shared per circuit within
    a process), which makes the result grid independent of ``jobs`` and
    of cell ordering.  Pass ``cache_dir`` to share a persistent QoR cache
    across cells, processes and repeated runs — warm entries skip the
    synthesis + mapping computation without changing any result.
    """
    # Imported here to avoid a module cycle (the grid imports the method
    # registry from this module).
    from repro.engine.grid import run_grid

    return run_grid(config, jobs=jobs, cache_dir=cache_dir, progress=progress)


def group_results(results: Sequence[OptimisationResult]) -> Dict[str, Dict[str, List[OptimisationResult]]]:
    """Group run results as ``{method: {circuit: [runs across seeds]}}``."""
    grouped: Dict[str, Dict[str, List[OptimisationResult]]] = {}
    for result in results:
        grouped.setdefault(result.method, {}).setdefault(result.circuit, []).append(result)
    return grouped
