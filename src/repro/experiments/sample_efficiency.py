"""Figure 1: sample efficiency — evaluations needed to match BOiLS.

The paper's protocol: run BOiLS for 200 evaluations; then, for every other
method, keep evaluating (up to 1000 sequences) until it reaches 97.5 % of
the QoR improvement BOiLS achieved, and report how many tested sequences
that took.  Figure 1 plots the average over the ten circuits; the middle
row of Figure 3 shows the underlying convergence curves for the four large
circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bo.base import OptimisationResult
from repro.experiments.runner import (
    ExperimentConfig,
    group_results,
    make_optimiser,
)
from repro.circuits import get_circuit
from repro.qor import QoREvaluator


@dataclass
class SampleEfficiencyResult:
    """Evaluations-to-target per method, plus the underlying targets.

    ``evaluations_to_target[method][circuit]`` is the mean (over seeds)
    number of tested sequences the method needed to reach the 97.5 % target
    of BOiLS's improvement on that circuit; runs that never reach it count
    as the full extended budget (the paper terminates them at 1000).
    """

    target_fraction: float
    reference_method: str
    extended_budget: int
    targets: Dict[str, float]
    evaluations_to_target: Dict[str, Dict[str, float]]
    average_evaluations: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, method: str) -> float:
        """Ratio of a method's average evaluations to the reference's."""
        reference = self.average_evaluations.get(self.reference_method)
        other = self.average_evaluations.get(method)
        if not reference or not other:
            return float("nan")
        return other / reference

    def to_text(self) -> str:
        lines = [
            f"Sample efficiency (target = {self.target_fraction:.1%} of "
            f"{self.reference_method} improvement)",
            "method            avg. evaluations to target",
        ]
        for method, value in sorted(self.average_evaluations.items(), key=lambda kv: kv[1]):
            lines.append(f"{method:18s}{value:10.1f}")
        return "\n".join(lines)


def _evaluations_to_reach(trajectory: Sequence[float], target: float,
                          fallback: int) -> int:
    """First evaluation index (1-based) at which the trajectory ≥ target."""
    for index, value in enumerate(trajectory, start=1):
        if value >= target:
            return index
    return fallback


def sample_efficiency_study(
    config: Optional[ExperimentConfig] = None,
    reference_method: str = "boils",
    target_fraction: float = 0.975,
    extended_budget: Optional[int] = None,
    progress=None,
) -> SampleEfficiencyResult:
    """Run the Figure 1 study.

    Parameters
    ----------
    config:
        Grid configuration; ``config.budget`` is the reference method's
        budget (200 in the paper).
    reference_method:
        Method whose final improvement defines the target (BOiLS).
    target_fraction:
        Fraction of the reference improvement to reach (97.5 % in the
        paper).
    extended_budget:
        Budget allowed to the other methods (1000 in the paper); defaults
        to ``5 × config.budget``.
    """
    config = config if config is not None else ExperimentConfig()
    extended = extended_budget if extended_budget is not None else 5 * config.budget
    reference_display = None

    targets: Dict[str, float] = {}
    evaluations: Dict[str, Dict[str, List[float]]] = {}

    for circuit_name in config.circuits:
        aig = get_circuit(circuit_name, width=config.circuit_width)
        evaluator = QoREvaluator(aig, lut_size=config.lut_size)

        # Reference runs define the target for this circuit.
        reference_improvements = []
        reference_counts = []
        for seed in range(config.num_seeds):
            if progress is not None:
                progress(f"[fig1] {reference_method} / {circuit_name} / seed {seed}")
            # clear_cache=True: each run must count every sequence it
            # tests, independent of what previous runs evaluated (same
            # per-run accounting as the grid runner).
            evaluator.reset_history(clear_cache=True)
            optimiser = make_optimiser(
                reference_method, space=config.space(), seed=seed,
                **dict(config.method_overrides.get(reference_method, {})),
            )
            result = optimiser.optimise(evaluator, budget=config.budget)
            reference_display = result.method
            reference_improvements.append(result.best_improvement)
            reference_counts.append(float(result.num_evaluations))
        reference_mean = float(np.mean(reference_improvements))
        # "Reach 97.5 % of the reference improvement": for positive
        # improvements this is the paper's plain fraction; written as
        # "within 2.5 % of |ref| below ref" it stays meaningful when the
        # tiny benchmark-scale circuits leave the mean improvement
        # negative (a plain fraction of a negative number would be a
        # target *above* the reference — trivially unreachable — while a
        # fraction of ~0 is trivially reached by the first sample).
        target = reference_mean - (1.0 - target_fraction) * abs(reference_mean)
        targets[circuit_name] = target
        evaluations.setdefault(reference_display, {}).setdefault(circuit_name, []).extend(
            reference_counts
        )

        # Other methods run with the extended budget until they hit the target.
        for method_key in config.methods:
            if method_key == reference_method:
                continue
            for seed in range(config.num_seeds):
                if progress is not None:
                    progress(f"[fig1] {method_key} / {circuit_name} / seed {seed}")
                evaluator.reset_history(clear_cache=True)
                optimiser = make_optimiser(
                    method_key, space=config.space(), seed=seed,
                    **dict(config.method_overrides.get(method_key, {})),
                )
                result = optimiser.optimise(evaluator, budget=extended)
                count = _evaluations_to_reach(result.best_trajectory, target, extended)
                evaluations.setdefault(result.method, {}).setdefault(
                    circuit_name, []
                ).append(float(count))

    evaluations_mean: Dict[str, Dict[str, float]] = {}
    averages: Dict[str, float] = {}
    for method, per_circuit in evaluations.items():
        evaluations_mean[method] = {
            circuit: float(np.mean(counts)) for circuit, counts in per_circuit.items()
        }
        averages[method] = float(np.mean(list(evaluations_mean[method].values())))

    return SampleEfficiencyResult(
        target_fraction=target_fraction,
        reference_method=reference_display or reference_method,
        extended_budget=extended,
        targets=targets,
        evaluations_to_target=evaluations_mean,
        average_evaluations=averages,
    )
