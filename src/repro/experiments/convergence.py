"""Figure 3 (middle row): convergence curves on the large circuits.

Best-so-far QoR improvement as a function of the number of tested
sequences, averaged over seeds, for each method on the four large circuits
(hypotenuse, divisor, log2, multiplier in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bo.base import OptimisationResult
from repro.circuits.registry import LARGE_CIRCUITS
from repro.experiments.runner import ExperimentConfig, group_results, run_experiment


@dataclass
class ConvergenceCurves:
    """Mean best-so-far improvement curves per (circuit, method).

    ``curves[circuit][method]`` is a list whose ``i``-th entry is the mean
    best improvement after ``i + 1`` tested sequences.
    """

    circuits: List[str]
    methods: List[str]
    curves: Dict[str, Dict[str, List[float]]]

    def final_values(self) -> Dict[str, Dict[str, float]]:
        """Last point of each curve (equals the Figure 3 table values)."""
        return {
            circuit: {method: curve[-1] for method, curve in per_method.items() if curve}
            for circuit, per_method in self.curves.items()
        }

    def curve(self, circuit: str, method: str) -> List[float]:
        return self.curves[circuit][method]

    def to_csv(self) -> str:
        lines = ["circuit,method,evaluation,best_improvement"]
        for circuit, per_method in self.curves.items():
            for method, curve in per_method.items():
                for index, value in enumerate(curve, start=1):
                    lines.append(f"{circuit},{method},{index},{value:.6f}")
        return "\n".join(lines)


def _mean_trajectories(runs: Sequence[OptimisationResult]) -> List[float]:
    """Average best-so-far trajectories of runs (padded to equal length)."""
    if not runs:
        return []
    length = max(len(run.best_trajectory) for run in runs)
    padded = []
    for run in runs:
        trajectory = list(run.best_trajectory)
        if not trajectory:
            continue
        while len(trajectory) < length:
            trajectory.append(trajectory[-1])
        padded.append(trajectory)
    if not padded:
        return []
    return list(np.mean(np.array(padded), axis=0))


def convergence_study(
    config: Optional[ExperimentConfig] = None,
    circuits: Optional[Sequence[str]] = None,
    progress=None,
) -> ConvergenceCurves:
    """Run the Figure 3 (middle row) study on the large circuits."""
    config = config if config is not None else ExperimentConfig()
    selected = list(circuits if circuits is not None else LARGE_CIRCUITS)
    config = ExperimentConfig(
        budget=config.budget,
        num_seeds=config.num_seeds,
        sequence_length=config.sequence_length,
        circuit_width=config.circuit_width,
        methods=config.methods,
        circuits=selected,
        lut_size=config.lut_size,
        method_overrides=config.method_overrides,
    )
    results = run_experiment(config, progress=progress)
    return build_convergence_curves(results)


def build_convergence_curves(results: Sequence[OptimisationResult]) -> ConvergenceCurves:
    """Aggregate grid results into mean convergence curves."""
    grouped = group_results(results)
    methods = list(grouped.keys())
    circuits: List[str] = []
    for per_circuit in grouped.values():
        for circuit in per_circuit:
            if circuit not in circuits:
                circuits.append(circuit)
    curves: Dict[str, Dict[str, List[float]]] = {c: {} for c in circuits}
    for method, per_circuit in grouped.items():
        for circuit, runs in per_circuit.items():
            curves[circuit][method] = _mean_trajectories(runs)
    return ConvergenceCurves(circuits=circuits, methods=methods, curves=curves)
