"""Figure 3 (bottom row): area/delay Pareto fronts.

For each of the large circuits, the paper plots the (area, delay) of the
best solution found by every method on each of the five seeds, overlays
the Pareto front of all those points, and reports how often each method's
solutions lie *on* the front (55 % for BOiLS vs 20 % SBO, 15 % GA, 0 % for
RS and DRL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.base import OptimisationResult
from repro.circuits.registry import LARGE_CIRCUITS
from repro.experiments.runner import ExperimentConfig, group_results, run_experiment


Point = Tuple[int, int]
"""An (area, delay) pair."""


def pareto_front(points: Sequence[Point]) -> List[Point]:
    """Non-dominated subset of (area, delay) points (both minimised).

    A point dominates another when it is no worse in both coordinates and
    strictly better in at least one.
    """
    unique = sorted(set(points))
    front: List[Point] = []
    for candidate in unique:
        dominated = False
        for other in unique:
            if other == candidate:
                continue
            if (other[0] <= candidate[0] and other[1] <= candidate[1]
                    and (other[0] < candidate[0] or other[1] < candidate[1])):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


def is_on_front(point: Point, front: Sequence[Point]) -> bool:
    """Whether a point belongs to a previously computed front."""
    return tuple(point) in {tuple(p) for p in front}


@dataclass
class ParetoStudy:
    """Per-circuit best solutions, fronts, and the on-front percentages."""

    circuits: List[str]
    methods: List[str]
    #: ``best_points[circuit][method]`` — one (area, delay) per seed.
    best_points: Dict[str, Dict[str, List[Point]]]
    #: ``fronts[circuit]`` — the joint Pareto front over all methods/seeds.
    fronts: Dict[str, List[Point]] = field(default_factory=dict)
    #: Reference points (initial circuit and resyn2) per circuit.
    references: Dict[str, Dict[str, Point]] = field(default_factory=dict)

    def on_front_fraction(self, method: str) -> float:
        """Fraction of a method's solutions lying on the joint front."""
        total = 0
        on_front = 0
        for circuit in self.circuits:
            front = self.fronts.get(circuit, [])
            for point in self.best_points.get(circuit, {}).get(method, []):
                total += 1
                if is_on_front(point, front):
                    on_front += 1
        return on_front / total if total else float("nan")

    def on_front_percentages(self) -> Dict[str, float]:
        """The paper's bottom-row statistic for every method, in percent."""
        return {method: 100.0 * self.on_front_fraction(method) for method in self.methods}

    def to_csv(self) -> str:
        lines = ["circuit,method,area,delay,on_front"]
        for circuit in self.circuits:
            front = self.fronts.get(circuit, [])
            for method in self.methods:
                for area, delay in self.best_points.get(circuit, {}).get(method, []):
                    flag = int(is_on_front((area, delay), front))
                    lines.append(f"{circuit},{method},{area},{delay},{flag}")
        return "\n".join(lines)


def build_pareto_study(
    results: Sequence[OptimisationResult],
    references: Optional[Dict[str, Dict[str, Point]]] = None,
) -> ParetoStudy:
    """Aggregate grid results into the Figure 3 (bottom) study."""
    grouped = group_results(results)
    methods = list(grouped.keys())
    circuits: List[str] = []
    for per_circuit in grouped.values():
        for circuit in per_circuit:
            if circuit not in circuits:
                circuits.append(circuit)

    best_points: Dict[str, Dict[str, List[Point]]] = {c: {} for c in circuits}
    for method, per_circuit in grouped.items():
        for circuit, runs in per_circuit.items():
            best_points[circuit][method] = [
                (run.best_area, run.best_delay) for run in runs
            ]

    fronts: Dict[str, List[Point]] = {}
    for circuit in circuits:
        all_points: List[Point] = []
        for method_points in best_points[circuit].values():
            all_points.extend(method_points)
        if references and circuit in references:
            all_points.extend(references[circuit].values())
        fronts[circuit] = pareto_front(all_points)

    return ParetoStudy(
        circuits=circuits,
        methods=methods,
        best_points=best_points,
        fronts=fronts,
        references=references or {},
    )


def pareto_study(
    config: Optional[ExperimentConfig] = None,
    circuits: Optional[Sequence[str]] = None,
    progress=None,
) -> ParetoStudy:
    """Run the Figure 3 (bottom row) study."""
    config = config if config is not None else ExperimentConfig()
    selected = list(circuits if circuits is not None else LARGE_CIRCUITS)
    config = ExperimentConfig(
        budget=config.budget,
        num_seeds=config.num_seeds,
        sequence_length=config.sequence_length,
        circuit_width=config.circuit_width,
        methods=config.methods,
        circuits=selected,
        lut_size=config.lut_size,
        method_overrides=config.method_overrides,
    )
    results = run_experiment(config, progress=progress)
    return build_pareto_study(results)
