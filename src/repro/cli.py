"""Command-line interface for the BOiLS reproduction.

Provides the handful of operations a user wants without writing Python:

* ``list-circuits`` / ``list-methods`` — what is available,
* ``stats`` — generate a circuit and print its AIG / mapping statistics,
* ``evaluate`` — score one synthesis sequence (Equation 1),
* ``optimise`` — run any registered optimiser on a circuit,
* ``table`` — run a small method × circuit grid and print the Figure-3-style
  QoR table.

Examples
--------
::

    python -m repro.cli list-circuits
    python -m repro.cli stats --circuit multiplier --width 6
    python -m repro.cli evaluate --circuit adder --sequence RwRfBlFr
    python -m repro.cli optimise --circuit sqrt --method boils --budget 20
    python -m repro.cli table --circuits adder,sqrt --methods boils,rs --budget 10

Parallel execution and caching (see :mod:`repro.engine`)::

    python -m repro.cli optimise --circuit sqrt --method ga --jobs 4
    python -m repro.cli table --circuits adder,sqrt --jobs 4 --cache-dir .qor-cache
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit, list_circuits
from repro.engine import (
    EvaluationEngine,
    EvaluatorSpec,
    PersistentQoRCache,
    default_cache_dir,
    resolve_jobs,
)
from repro.experiments import (
    ExperimentConfig,
    available_methods,
    build_qor_table,
    make_optimiser,
    run_experiment,
)
from repro.experiments.figures import render_figure3_table
from repro.mapping import map_aig
from repro.qor import QoREvaluator
from repro.synth.operations import sequence_to_string, string_to_sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BOiLS reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-circuits", help="list the bundled benchmark circuits")
    sub.add_parser("list-methods", help="list the registered optimisation methods")

    stats = sub.add_parser("stats", help="print AIG and mapping statistics of a circuit")
    stats.add_argument("--circuit", required=True)
    stats.add_argument("--width", type=int, default=None)
    stats.add_argument("--lut-size", type=int, default=6)

    evaluate = sub.add_parser("evaluate", help="evaluate one synthesis sequence")
    evaluate.add_argument("--circuit", required=True)
    evaluate.add_argument("--width", type=int, default=None)
    evaluate.add_argument("--lut-size", type=int, default=6)
    evaluate.add_argument(
        "--sequence", required=True,
        help="mnemonic string (RwRfBl...) or comma-separated operation names")

    optimise = sub.add_parser("optimise", help="run an optimiser on a circuit")
    optimise.add_argument("--circuit", required=True)
    optimise.add_argument("--width", type=int, default=None)
    optimise.add_argument("--method", default="boils", choices=available_methods())
    optimise.add_argument("--budget", type=int, default=20)
    optimise.add_argument("--sequence-length", type=int, default=8)
    optimise.add_argument("--seed", type=int, default=0)
    optimise.add_argument("--lut-size", type=int, default=6)
    optimise.add_argument("--jobs", type=int, default=1,
                          help="worker processes for batch evaluation "
                               "(1 = serial, 0 = all CPUs)")
    optimise.add_argument("--cache-dir", default=None,
                          help="directory of the persistent QoR cache shared "
                               "across runs (default: REPRO_CACHE_DIR, else off)")

    table = sub.add_parser("table", help="run a grid and print the QoR table")
    table.add_argument("--circuits", default="adder,sqrt",
                       help="comma-separated circuit names")
    table.add_argument("--methods", default="boils,rs",
                       help="comma-separated method keys")
    table.add_argument("--budget", type=int, default=10)
    table.add_argument("--seeds", type=int, default=1)
    table.add_argument("--sequence-length", type=int, default=6)
    table.add_argument("--jobs", type=int, default=1,
                       help="worker processes for grid cells "
                            "(1 = serial, 0 = all CPUs)")
    table.add_argument("--cache-dir", default=None,
                       help="directory of the persistent QoR cache shared "
                            "across runs (default: REPRO_CACHE_DIR, else off)")
    return parser


def _parse_sequence(text: str) -> List[str]:
    """Accept either a mnemonic string or comma-separated operation names."""
    if "," in text:
        return [item.strip() for item in text.split(",") if item.strip()]
    return string_to_sequence(text)


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
def _cmd_list_circuits(_args) -> int:
    print(f"{'name':12s}{'display name':18s}{'default width':>14s}{'paper width':>12s}")
    for spec in list_circuits():
        print(f"{spec.name:12s}{spec.display_name:18s}"
              f"{spec.default_width:>14d}{spec.paper_width:>12d}"
              + ("   [large]" if spec.large else ""))
    return 0


def _cmd_list_methods(_args) -> int:
    for key in available_methods():
        print(key)
    return 0


def _cmd_stats(args) -> int:
    aig = get_circuit(args.circuit, width=args.width)
    mapping = map_aig(aig, lut_size=args.lut_size)
    stats = aig.stats()
    print(f"circuit      : {aig.name}")
    print(f"inputs       : {stats['pis']}")
    print(f"outputs      : {stats['pos']}")
    print(f"AND nodes    : {stats['ands']}")
    print(f"AIG levels   : {stats['levels']}")
    print(f"LUT-{args.lut_size} area   : {mapping.area}")
    print(f"LUT-{args.lut_size} levels : {mapping.delay}")
    return 0


def _cmd_evaluate(args) -> int:
    sequence = _parse_sequence(args.sequence)
    aig = get_circuit(args.circuit, width=args.width)
    evaluator = QoREvaluator(aig, lut_size=args.lut_size)
    record = evaluator.evaluate(sequence)
    print(f"sequence          : {sequence_to_string(record.sequence)} "
          f"({', '.join(record.sequence)})")
    print(f"area (LUTs)       : {record.area}")
    print(f"delay (levels)    : {record.delay}")
    print(f"QoR               : {record.qor:.4f}")
    print(f"improvement vs resyn2 : {record.qor_improvement:.2f}%")
    return 0


def _resolve_cache_dir(cache_dir: Optional[str]) -> Optional[str]:
    """Persistent-cache directory from a flag or ``REPRO_CACHE_DIR``."""
    if cache_dir:
        return cache_dir
    env_default = default_cache_dir()
    return str(env_default) if env_default else None


def _cmd_optimise(args) -> int:
    spec = EvaluatorSpec.for_circuit(args.circuit, width=args.width,
                                     lut_size=args.lut_size)
    cache_dir = _resolve_cache_dir(args.cache_dir)
    cache = PersistentQoRCache(cache_dir) if cache_dir else None
    evaluator = spec.build_evaluator(persistent_cache=cache)
    space = SequenceSpace(sequence_length=args.sequence_length)
    optimiser = make_optimiser(args.method, space=space, seed=args.seed)
    jobs = resolve_jobs(args.jobs)
    if jobs > 1 and not optimiser.supports_batch:
        print(f"warning: {optimiser.name} does not batch its evaluations; "
              f"--jobs {jobs} will run serially", file=sys.stderr)
    print(f"running {optimiser.name} on {evaluator.aig.name} "
          f"(budget {args.budget}, K={args.sequence_length}, seed {args.seed}, "
          f"jobs {jobs}) ...")
    with EvaluationEngine(spec, jobs=jobs, evaluator=evaluator) as engine:
        evaluator.attach_engine(engine)
        result = optimiser.optimise(evaluator, budget=args.budget)
    print(f"best sequence     : {sequence_to_string(result.best_sequence)}")
    for op in result.best_sequence:
        print(f"   - {op}")
    print(f"area / delay      : {result.best_area} LUTs / {result.best_delay} levels")
    print(f"QoR improvement   : {result.best_improvement:.2f}% over resyn2")
    print(f"evaluations used  : {result.num_evaluations}")
    if cache is not None:
        print(f"computed          : {evaluator.num_computed} "
              f"(persistent-cache hits: {evaluator.num_persistent_hits})")
        cache.close()
    return 0


def _cmd_table(args) -> int:
    config = ExperimentConfig(
        budget=args.budget,
        num_seeds=args.seeds,
        sequence_length=args.sequence_length,
        circuits=tuple(c.strip() for c in args.circuits.split(",") if c.strip()),
        methods=tuple(m.strip() for m in args.methods.split(",") if m.strip()),
        method_overrides={
            "boils": {"num_initial": 4, "local_search_queries": 100, "adam_steps": 3,
                      "fit_every": 2},
            "sbo": {"num_initial": 4, "adam_steps": 3, "fit_every": 2},
        },
    )
    cache_dir = _resolve_cache_dir(args.cache_dir)
    results = run_experiment(
        config,
        progress=lambda msg: print(f"  [{msg}]", file=sys.stderr),
        jobs=args.jobs,
        cache_dir=cache_dir,
    )
    print(render_figure3_table(build_qor_table(results)))
    return 0


_COMMANDS = {
    "list-circuits": _cmd_list_circuits,
    "list-methods": _cmd_list_methods,
    "stats": _cmd_stats,
    "evaluate": _cmd_evaluate,
    "optimise": _cmd_optimise,
    "table": _cmd_table,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
