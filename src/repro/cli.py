"""Command-line interface for the BOiLS reproduction.

The primary workflow is campaign-based (built on :mod:`repro.api`):

* ``run``    — run a declarative campaign (from a JSON file or inline
  flags) into a resumable run directory, with live round-level progress
  streamed from the workers,
* ``resume`` — continue a killed or partial run directory; completed
  cells are skipped bit-identically and partially finished cells
  continue from their mid-cell checkpoint,
* ``show``   — inspect a run directory: manifest, cell status, and the
  QoR table over the completed cells; ``--follow`` tails a directory
  that another process is still writing,
* ``list-circuits`` / ``list-methods`` / ``list-objectives`` — what the
  registries currently offer (including entry-point plugins),
* ``backends list`` — the registered synthesis backends and their
  availability on this host; ``run``/``evaluate``/``optimise`` select
  one with ``--backend`` (``native``, ``abc``, ``replay:TAPE``,
  ``record:TAPE`` or inline JSON).

Legacy single-shot subcommands (``stats``, ``evaluate``, ``optimise``,
``table``) are kept as thin shims over the same machinery.

Examples
--------
::

    python -m repro.cli run --circuits adder,sqrt --methods boils,rs \
        --budget 20 --seeds 3 --store runs/demo --jobs 4
    python -m repro.cli resume --store runs/demo --jobs 4
    python -m repro.cli show --store runs/demo

    python -m repro.cli run --campaign my_campaign.json --store runs/full
    python -m repro.cli run --circuits adder --objective weighted:2,1 ...

    python -m repro.cli stats --circuit multiplier --width 6
    python -m repro.cli evaluate --circuit adder --sequence RwRfBl
    python -m repro.cli optimise --circuit sqrt --method boils --budget 20
    python -m repro.cli table --circuits adder,sqrt --methods boils,rs
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import (
    Campaign,
    CampaignStore,
    Problem,
    StoreError,
    parse_objective_argument,
    resume_campaign,
    run_campaign,
)
from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit, list_circuits
from repro.qor.backends import BackendError, parse_backend_argument
from repro.engine import (
    EngineFaultError,
    EvaluationEngine,
    EvaluatorSpec,
    FaultPlan,
    PersistentQoRCache,
    RetryPolicy,
    default_cache_dir,
    resolve_jobs,
)
from repro.experiments import (
    ExperimentConfig,
    available_methods,
    build_qor_table,
    make_optimiser,
    run_experiment,
)
from repro.experiments.figures import render_figure3_table
from repro.experiments.runner import method_display_names
from repro.mapping import map_aig
from repro.qor import QoREvaluator
from repro.registry import OBJECTIVES
from repro.synth.operations import sequence_to_string, string_to_sequence


def _add_fault_tolerance_arguments(command: argparse.ArgumentParser) -> None:
    """Deadline/retry/fault-injection flags shared by run and resume."""
    group = command.add_argument_group("fault tolerance")
    group.add_argument("--eval-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-evaluation deadline; a blown evaluation is "
                            "retried, then the cell quarantined")
    group.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell-attempt deadline; a blown cell is "
                            "recycled and retried from its checkpoint")
    group.add_argument("--max-attempts", type=int, default=None, metavar="K",
                       help="attempts per cell before quarantine (default 3)")
    group.add_argument("--retry-backoff", type=float, default=None,
                       metavar="SECONDS",
                       help="base retry backoff delay (default 0.25, doubled "
                            "per attempt with deterministic jitter)")
    group.add_argument("--pool-rebuilds", type=int, default=None, metavar="N",
                       help="worker-pool rebuilds after crashes before the "
                            "run aborts as unrecoverable (default 2)")
    group.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="deterministic fault-injection schedule for "
                            "testing recovery: inline JSON or a file path "
                            "(default: the REPRO_FAULT_PLAN env var)")


def _retry_policy_from_args(args) -> Optional[RetryPolicy]:
    if (args.max_attempts is None and args.retry_backoff is None
            and args.pool_rebuilds is None):
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        max_attempts=(args.max_attempts if args.max_attempts is not None
                      else defaults.max_attempts),
        backoff_base=(args.retry_backoff if args.retry_backoff is not None
                      else defaults.backoff_base),
        max_pool_rebuilds=(args.pool_rebuilds if args.pool_rebuilds is not None
                           else defaults.max_pool_rebuilds),
    )


def _fault_plan_from_args(args) -> Optional[FaultPlan]:
    import os

    raw = args.fault_plan or os.environ.get("REPRO_FAULT_PLAN", "").strip()
    return FaultPlan.from_argument(raw) if raw else None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BOiLS reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    # ------------------------------------------------------------------
    # Campaign workflow
    # ------------------------------------------------------------------
    run = sub.add_parser(
        "run", help="run a declarative campaign (resumable with --store)")
    run.add_argument("--campaign", default=None, metavar="FILE",
                     help="campaign JSON file; inline flags are ignored "
                          "when given")
    run.add_argument("--name", default="campaign", help="campaign name")
    run.add_argument("--circuits", default="adder,sqrt",
                     help="comma-separated circuit names (registered names "
                          "or file:<path> / *.aag / *.blif / *.bench files)")
    run.add_argument("--corpus", default=None, metavar="DIR",
                     help="run over every circuit of a corpus directory "
                          "(see `repro corpus build`); overrides --circuits")
    run.add_argument("--methods", default="boils,rs",
                     help="comma-separated method keys")
    run.add_argument("--budget", type=int, default=20,
                     help="black-box evaluations per cell")
    run.add_argument("--seeds", default="1",
                     help="seed count (N -> 0..N-1) or an explicit comma "
                          "list; use a trailing comma for one specific "
                          "seed (e.g. '5,' runs seed 5 only)")
    run.add_argument("--sequence-length", type=int, default=8)
    run.add_argument("--lut-size", type=int, default=6)
    run.add_argument("--width", type=int, default=None,
                     help="circuit bit-width override (default: registry)")
    run.add_argument("--objective", default="eq1",
                     help="QoR objective: a registered key (eq1, area, "
                          "delay), weighted:W_AREA,W_DELAY, or inline JSON")
    run.add_argument("--backend", default="native",
                     help="synthesis backend: a registered key (native, "
                          "abc), replay:TAPE / record:TAPE, or inline "
                          "JSON (see `repro backends list`)")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="run directory for checkpoint/restart; omit for "
                          "an in-memory run")
    run.add_argument("--env-overrides", action="store_true",
                     help="apply the REPRO_BUDGET/REPRO_SEEDS/... "
                          "environment layer to the campaign")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes for cells (1 = serial, 0 = all "
                          "CPUs)")
    run.add_argument("--cache-dir", default=None,
                     help="directory of the persistent QoR cache shared "
                          "across runs (default: REPRO_CACHE_DIR, else off)")
    run.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                     help="mid-cell checkpoint cadence in rounds (store "
                          "runs only; 0 disables checkpoints)")
    run.add_argument("--wall-clock-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock cap threaded into the drive "
                          "loop (non-deterministic across machines)")
    run.add_argument("--early-stop-improvement", type=float, default=None,
                     metavar="PCT",
                     help="end a cell once its best QoR improvement "
                          "reaches this percentage")
    run.add_argument("--no-round-progress", action="store_true",
                     help="suppress the live per-round progress stream")
    _add_fault_tolerance_arguments(run)

    resume = sub.add_parser(
        "resume", help="continue a partial run directory (completed cells "
                       "are skipped bit-identically; partially finished "
                       "cells continue from their checkpoint)")
    resume.add_argument("--store", required=True, metavar="DIR")
    resume.add_argument("--jobs", type=int, default=1)
    resume.add_argument("--cache-dir", default=None)
    resume.add_argument("--checkpoint-every", type=int, default=1, metavar="N")
    resume.add_argument("--no-round-progress", action="store_true",
                        help="suppress the live per-round progress stream")
    _add_fault_tolerance_arguments(resume)
    resume.add_argument("--retry-quarantined", action="store_true",
                        help="re-run quarantined cells (skipped by default) "
                             "from their last checkpoint")

    show = sub.add_parser("show", help="inspect a campaign run directory")
    show.add_argument("--store", required=True, metavar="DIR")
    show.add_argument("--follow", action="store_true",
                      help="keep polling the directory and print per-cell "
                          "round progress until every cell is complete")
    show.add_argument("--interval", type=float, default=2.0,
                      help="poll interval for --follow, in seconds")

    # ------------------------------------------------------------------
    # Circuit corpus workflow
    # ------------------------------------------------------------------
    corpus = sub.add_parser(
        "corpus", help="build and inspect circuit corpora (manifest-bearing "
                       "directories of benchmark files)")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_build = corpus_sub.add_parser(
        "build", help="materialise seeded random circuits into a corpus "
                      "directory (deterministic for a given seed)")
    corpus_build.add_argument("--dest", required=True, metavar="DIR")
    corpus_build.add_argument("--count", type=int, default=12,
                              help="number of circuits to generate")
    corpus_build.add_argument("--seed", type=int, default=0,
                              help="corpus seed; per-circuit seeds derive "
                                   "from it deterministically")
    corpus_build.add_argument("--kinds", default="layered,windowed,arith",
                              help="comma-separated generator kinds")
    corpus_build.add_argument("--formats", default="aag,blif,bench",
                              help="comma-separated file formats to cycle "
                                   "through (aag, aig, blif, bench)")
    corpus_build.add_argument("--max-gates", type=int, default=96,
                              help="upper bound on generated AND counts")
    corpus_verify = corpus_sub.add_parser(
        "verify", help="re-check every corpus entry against its manifest "
                       "(file presence, content hash, circuit stats) "
                       "without expanding a campaign; exits non-zero on "
                       "any mismatch")
    corpus_verify.add_argument("--corpus", required=True, metavar="DIR")
    corpus_verify.add_argument("--names", default=None,
                               help="comma-separated subset of entry names "
                                    "(default: every entry)")

    circuits = sub.add_parser(
        "circuits", help="list, inspect and import circuits (registry and "
                         "corpus directories)")
    circuits_sub = circuits.add_subparsers(dest="circuits_command",
                                           required=True)
    circuits_list = circuits_sub.add_parser(
        "list", help="list registered circuits, or a corpus's entries")
    circuits_list.add_argument("--corpus", default=None, metavar="DIR")
    circuits_stats = circuits_sub.add_parser(
        "stats", help="I/O counts, AND nodes and levels of circuits")
    circuits_stats.add_argument("--circuit", default=None,
                                help="registered name or circuit file path")
    circuits_stats.add_argument("--width", type=int, default=None)
    circuits_stats.add_argument("--corpus", default=None, metavar="DIR",
                                help="print the stats table of a corpus")
    circuits_import = circuits_sub.add_parser(
        "import", help="copy external circuit files into a corpus "
                       "(validating that they parse)")
    circuits_import.add_argument("--corpus", required=True, metavar="DIR")
    circuits_import.add_argument("files", nargs="+", metavar="FILE")

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    lint = sub.add_parser(
        "lint", help="run the AST invariant linter (determinism, "
                     "IPC-safety, cache-key purity; see README "
                     "'Static analysis')")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: the "
                           "installed repro package source)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="diagnostic output format (default: text)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rule pack (including "
                           "entry-point plugins) and exit")

    # ------------------------------------------------------------------
    # Registry listings
    # ------------------------------------------------------------------
    sub.add_parser("list-circuits", help="list the registered benchmark circuits")
    sub.add_parser("list-methods", help="list the registered optimisation methods")
    sub.add_parser("list-objectives", help="list the registered QoR objectives")

    backends = sub.add_parser(
        "backends", help="synthesis backends (see `repro backends list`)")
    backends_sub = backends.add_subparsers(dest="backends_command",
                                           required=True)
    backends_sub.add_parser(
        "list", help="list the registered synthesis backends and their "
                     "availability on this host")

    # ------------------------------------------------------------------
    # Legacy single-shot shims
    # ------------------------------------------------------------------
    stats = sub.add_parser("stats", help="print AIG and mapping statistics of a circuit")
    stats.add_argument("--circuit", required=True)
    stats.add_argument("--width", type=int, default=None)
    stats.add_argument("--lut-size", type=int, default=6)

    evaluate = sub.add_parser("evaluate", help="evaluate one synthesis sequence")
    evaluate.add_argument("--circuit", required=True)
    evaluate.add_argument("--width", type=int, default=None)
    evaluate.add_argument("--lut-size", type=int, default=6)
    evaluate.add_argument("--objective", default="eq1")
    evaluate.add_argument("--backend", default="native",
                          help="synthesis backend key, replay:TAPE / "
                               "record:TAPE, or inline JSON")
    evaluate.add_argument(
        "--sequence", required=True,
        help="mnemonic string (RwRfBl...) or comma-separated operation names")

    optimise = sub.add_parser(
        "optimise", help="run an optimiser on a circuit (legacy shim; "
                         "prefer `repro run`)")
    optimise.add_argument("--circuit", required=True)
    optimise.add_argument("--width", type=int, default=None)
    optimise.add_argument("--method", default="boils", choices=available_methods())
    optimise.add_argument("--budget", type=int, default=20)
    optimise.add_argument("--sequence-length", type=int, default=8)
    optimise.add_argument("--seed", type=int, default=0)
    optimise.add_argument("--lut-size", type=int, default=6)
    optimise.add_argument("--objective", default="eq1")
    optimise.add_argument("--backend", default="native",
                          help="synthesis backend key, replay:TAPE / "
                               "record:TAPE, or inline JSON")
    optimise.add_argument("--jobs", type=int, default=1,
                          help="worker processes for batch evaluation "
                               "(1 = serial, 0 = all CPUs)")
    optimise.add_argument("--cache-dir", default=None,
                          help="directory of the persistent QoR cache shared "
                               "across runs (default: REPRO_CACHE_DIR, else off)")

    table = sub.add_parser(
        "table", help="run a grid and print the QoR table (legacy shim; "
                      "prefer `repro run`)")
    table.add_argument("--circuits", default="adder,sqrt",
                       help="comma-separated circuit names")
    table.add_argument("--methods", default="boils,rs",
                       help="comma-separated method keys")
    table.add_argument("--budget", type=int, default=10)
    table.add_argument("--seeds", type=int, default=1)
    table.add_argument("--sequence-length", type=int, default=6)
    table.add_argument("--lut-size", type=int, default=6,
                       help="LUT input count used for mapping")
    table.add_argument("--jobs", type=int, default=1,
                       help="worker processes for grid cells "
                            "(1 = serial, 0 = all CPUs)")
    table.add_argument("--cache-dir", default=None,
                       help="directory of the persistent QoR cache shared "
                            "across runs (default: REPRO_CACHE_DIR, else off)")
    return parser


def _parse_sequence(text: str) -> List[str]:
    """Accept either a mnemonic string or comma-separated operation names."""
    if "," in text:
        return [item.strip() for item in text.split(",") if item.strip()]
    return string_to_sequence(text)


def _parse_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_seeds(text: str) -> List[int]:
    """``"3"`` means seeds 0..2; ``"0,2,5"`` means exactly those."""
    parts = _parse_csv(text)
    if len(parts) == 1 and "," not in text:
        return list(range(max(1, int(parts[0]))))
    return [int(part) for part in parts]


def _resolve_cache_dir(cache_dir: Optional[str]) -> Optional[str]:
    """Persistent-cache directory from a flag or ``REPRO_CACHE_DIR``."""
    if cache_dir:
        return cache_dir
    env_default = default_cache_dir()
    return str(env_default) if env_default else None


def _deprecation_note(command: str) -> None:
    print(f"note: `repro {command}` is a legacy shim; the campaign workflow "
          "(`repro run` / `resume` / `show`) is the supported interface",
          file=sys.stderr)


def _print_records_table(records) -> None:
    """Render the QoR table over completed records; report the rest."""
    failed = [record for record in records if record.failed]
    quarantined = [record for record in records if record.quarantined]
    completed = [record for record in records
                 if not record.failed and not record.quarantined]
    if completed:
        print(render_figure3_table(
            build_qor_table([record.to_result() for record in completed])))
    if failed:
        print(f"warning: {len(failed)} cell(s) failed and were excluded "
              "from the table (`repro resume` retries them):", file=sys.stderr)
        for record in failed:
            print(f"  {record.cell_id}: {record.metadata.get('error')}",
                  file=sys.stderr)
    if quarantined:
        print(f"warning: {len(quarantined)} cell(s) quarantined after "
              "repeated faults (resume skips them; re-run with "
              "`repro resume --retry-quarantined`):", file=sys.stderr)
        for record in quarantined:
            print(f"  {record.cell_id}: {record.metadata.get('error')}",
                  file=sys.stderr)


def _records_exit_code(records) -> int:
    """0 = all ok; 1 = some cells failed/quarantined (campaign finished)."""
    return 1 if any(record.failed or record.quarantined
                    for record in records) else 0


def _render_round_event(cell_id: str, event: dict) -> None:
    """One stderr line per streamed round event (live progress)."""
    kind = event.get("kind")
    if kind == "round_completed":
        best = event.get("best") or {}
        improvement = best.get("qor_improvement")
        line = (f"    {cell_id}: round {event['round_index']}, "
                f"{event['num_evaluations']}/{event['budget']} evals")
        if improvement is not None:
            line += f", best {improvement:+.2f}%"
        print(line, file=sys.stderr)
    elif kind == "early_stopped":
        print(f"    {cell_id}: early stop ({event.get('reason')}) after "
              f"{event['num_evaluations']} evals", file=sys.stderr)


# ----------------------------------------------------------------------
# Campaign sub-commands
# ----------------------------------------------------------------------
def _campaign_from_args(args) -> Campaign:
    if args.campaign:
        campaign = Campaign.load(args.campaign)
    elif getattr(args, "corpus", None):
        campaign = Campaign.from_corpus(
            args.corpus,
            methods=tuple(_parse_csv(args.methods)),
            seeds=tuple(_parse_seeds(args.seeds)),
            budget=args.budget,
            lut_size=args.lut_size,
            sequence_length=args.sequence_length,
            objective=parse_objective_argument(args.objective),
            backend=parse_backend_argument(
                getattr(args, "backend", "native")),
            name=args.name if args.name != "campaign" else None,
        )
    else:
        objective = parse_objective_argument(args.objective)
        backend = parse_backend_argument(getattr(args, "backend", "native"))
        problems = tuple(
            Problem(
                circuit=circuit,
                width=args.width,
                lut_size=args.lut_size,
                sequence_length=args.sequence_length,
                objective=objective,
                backend=backend,
            )
            for circuit in _parse_csv(args.circuits)
        )
        campaign = Campaign(
            name=args.name,
            problems=problems,
            methods=tuple(_parse_csv(args.methods)),
            seeds=tuple(_parse_seeds(args.seeds)),
            budget=args.budget,
        )
    if args.env_overrides:
        campaign = campaign.with_env_overrides()
    return campaign


def _cmd_run(args) -> int:
    campaign = _campaign_from_args(args)
    if (args.wall_clock_budget is not None
            or args.early_stop_improvement is not None
            or args.eval_timeout is not None
            or args.cell_timeout is not None):
        from dataclasses import replace

        campaign = replace(
            campaign,
            wall_clock_budget=(args.wall_clock_budget
                               if args.wall_clock_budget is not None
                               else campaign.wall_clock_budget),
            early_stop_improvement=(args.early_stop_improvement
                                    if args.early_stop_improvement is not None
                                    else campaign.early_stop_improvement),
            eval_timeout=(args.eval_timeout
                          if args.eval_timeout is not None
                          else campaign.eval_timeout),
            cell_timeout=(args.cell_timeout
                          if args.cell_timeout is not None
                          else campaign.cell_timeout),
        )
    cells = campaign.cells()
    print(f"campaign {campaign.name!r}: {len(campaign.problems)} problem(s) "
          f"x {len(campaign.methods)} method(s) x {len(campaign.seeds)} "
          f"seed(s) = {len(cells)} cells, budget {campaign.budget}",
          file=sys.stderr)
    records = run_campaign(
        campaign,
        store=args.store,
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args.cache_dir),
        progress=lambda msg: print(f"  [{msg}]", file=sys.stderr),
        on_event=None if args.no_round_progress else _render_round_event,
        checkpoint_every=args.checkpoint_every,
        retry=_retry_policy_from_args(args),
        fault_plan=_fault_plan_from_args(args),
    )
    _print_records_table(records)
    if args.store:
        print(f"run directory: {args.store} "
              f"(continue with `repro resume --store {args.store}`, "
              f"watch with `repro show --store {args.store} --follow`)",
              file=sys.stderr)
    # Failed/quarantined cells are isolated, not silenced: the campaign
    # ran to the end, but the exit code must still tell scripts
    # something broke (infrastructure failures exit 2 via main()).
    return _records_exit_code(records)


def _cmd_resume(args) -> int:
    records = resume_campaign(
        args.store,
        jobs=args.jobs,
        cache_dir=_resolve_cache_dir(args.cache_dir),
        progress=lambda msg: print(f"  [{msg}]", file=sys.stderr),
        on_event=None if args.no_round_progress else _render_round_event,
        checkpoint_every=args.checkpoint_every,
        retry=_retry_policy_from_args(args),
        fault_plan=_fault_plan_from_args(args),
        retry_quarantined=args.retry_quarantined,
    )
    _print_records_table(records)
    return _records_exit_code(records)


def _follow_store(store: CampaignStore, cells, interval: float) -> None:
    """Poll a (possibly still running) store, printing round progress.

    One stderr line per cell whose persisted round count changed since
    the previous tick; returns once every cell has a completed record.
    Ctrl-C simply stops following.
    """
    import time

    last_rounds: dict = {}
    while True:
        statuses = store.cell_statuses()  # one directory scan per tick
        for cell in cells:
            cell_id = cell.cell_id
            rounds = store.trajectory_round_count(cell_id)
            if rounds != last_rounds.get(cell_id):
                last_rounds[cell_id] = rounds
                status = {"ok": "done", "failed": "failed",
                          "quarantined": "quarantined"}.get(
                    statuses.get(cell_id), "running")
                print(f"    {cell_id}: {rounds} round(s) [{status}]",
                      file=sys.stderr)
        if all(statuses.get(cell.cell_id) in ("ok", "failed", "quarantined")
               for cell in cells):
            return
        time.sleep(interval)


def _circuit_stats_lines(store: CampaignStore, campaign: Campaign):
    """``(problem.key, stats line)`` pairs for ``repro show``.

    Rebuilding every circuit just to count its nodes would turn an
    instant inspection command into generator-scale compute, so stats
    are computed once and memoised in ``circuit_stats.json`` inside the
    run directory (keyed by problem key, which embeds the content hash
    for file circuits and circuit+width for generated ones).  Unbuildable
    circuits — relocated files, missing plugins — degrade to an
    "unavailable" note; inspection keeps working regardless.
    """
    import json

    cache_path = store.root / "circuit_stats.json"
    try:
        cached = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        cached = {}
    dirty = False
    for problem in campaign.problems:
        key = problem.key
        stats = cached.get(key)
        if not (isinstance(stats, dict)
                and all(isinstance(stats.get(field), int)
                        for field in ("pis", "pos", "ands", "levels"))):
            try:
                if problem.circuit_hash is not None:
                    # The run was over the *pinned* file content; stats
                    # of a since-edited file would silently lie (and the
                    # cache key embeds the pinned hash, so they would
                    # stick).  Mirror the resume-time check instead.
                    from repro.circuits.registry import get_circuit_spec

                    current = getattr(get_circuit_spec(problem.circuit),
                                      "content_hash", None)
                    if current is not None and current != problem.circuit_hash:
                        raise ValueError(
                            "circuit file changed on disk since this run "
                            "(content hash mismatch)")
                stats = get_circuit(problem.circuit, width=problem.width).stats()
                cached[key] = stats
                dirty = True
            except (KeyError, ValueError, OSError) as error:
                # KeyError covers registry misses (e.g. a plugin circuit
                # not installed here); ValueError covers missing/changed
                # circuit files.  Not cached: the circuit may be back on
                # the next inspection.
                yield key, f"unavailable ({error})"
                continue
        yield key, (f"pis {stats['pis']:>4d}  pos {stats['pos']:>4d}  "
                    f"ands {stats['ands']:>6d}  levels {stats['levels']:>4d}")
    if dirty:
        try:
            cache_path.write_text(json.dumps(cached, indent=2, allow_nan=False) + "\n",
                                  encoding="utf-8")
        except OSError:
            pass  # read-only store: stats simply recompute next time


def _cmd_show(args) -> int:
    store = CampaignStore(args.store)
    campaign = store.load_campaign()
    cells = campaign.cells()
    if args.follow:
        try:
            _follow_store(store, cells, interval=max(0.05, args.interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive escape
            pass
    statuses = store.cell_statuses()
    completed = {cell_id for cell_id, status in statuses.items()
                 if status == "ok"}
    print(f"campaign      : {campaign.name}")
    print(f"problems      : {', '.join(p.key for p in campaign.problems)}")
    print("circuits      :")
    for key, detail in _circuit_stats_lines(store, campaign):
        print(f"  {key:32s} {detail}")
    print(f"methods       : {', '.join(campaign.methods)}")
    print(f"seeds         : {', '.join(str(s) for s in campaign.seeds)}")
    print(f"budget        : {campaign.budget}")
    done = sum(1 for cell in cells if cell.cell_id in completed)
    print(f"cells         : {done}/{len(cells)} complete")
    for cell in cells:
        status = {"ok": "done", "failed": "failed",
                  "quarantined": "quarantined",
                  "partial": "partial"}.get(statuses.get(cell.cell_id),
                                            "pending")
        line = f"  [{status:11s}] {cell.cell_id}"
        if status in ("partial", "failed", "quarantined"):
            rounds = store.trajectory_round_count(cell.cell_id)
            if rounds:
                line += f" ({rounds} round(s) persisted)"
        print(line)
    finished = [cell for cell in cells if cell.cell_id in completed]
    if finished:
        records = [store.read_record(cell.cell_id) for cell in finished]
        print()
        _print_records_table(records)
    return 0


# ----------------------------------------------------------------------
# Circuit corpus workflow
# ----------------------------------------------------------------------
def _cmd_corpus(args) -> int:
    from repro.circuits.corpus import FORMAT_SUFFIXES, build_corpus

    if args.corpus_command == "build":
        # Accept both spellings: the file suffix ("aag") and the
        # internal format key ("aiger-ascii"), derived from one table.
        aliases = {suffix.lstrip("."): key
                   for key, suffix in FORMAT_SUFFIXES.items()}
        formats = [aliases.get(fmt.lower(), fmt.lower())
                   for fmt in _parse_csv(args.formats)]
        max_gates = max(1, args.max_gates)
        manifest = build_corpus(
            args.dest,
            count=args.count,
            seed=args.seed,
            kinds=tuple(_parse_csv(args.kinds)),
            formats=tuple(formats),
            num_gates=(max(1, min(24, max_gates // 2)), max_gates),
        )
        print(f"corpus {manifest.root}: {len(manifest.entries)} circuit(s)")
        _print_corpus_table(manifest)
        print(f"run a campaign over it with `repro run --corpus {args.dest}`")
        return 0
    if args.corpus_command == "verify":
        from repro.circuits.corpus import verify_corpus

        names = _parse_csv(args.names) if args.names else None
        results = verify_corpus(args.corpus, names=names)
        bad = 0
        for entry, problem in results:
            if problem is None:
                print(f"  ok   {entry.name}")
            else:
                bad += 1
                print(f"  FAIL {entry.name}: {problem}")
        verdict = (f"{len(results) - bad}/{len(results)} entries verified"
                   + (f", {bad} mismatched" if bad else ""))
        print(f"corpus {args.corpus}: {verdict}")
        return 1 if bad else 0
    raise ValueError(f"unknown corpus command {args.corpus_command!r}")


def _print_corpus_table(manifest) -> None:
    print(f"{'name':24s}{'format':14s}{'pis':>5s}{'pos':>5s}"
          f"{'ands':>7s}{'levels':>7s}  source")
    for entry in manifest.entries:
        stats = entry.stats
        source = str(entry.source.get("kind", "?"))
        print(f"{entry.name:24s}{entry.format:14s}"
              f"{stats.get('pis', 0):>5d}{stats.get('pos', 0):>5d}"
              f"{stats.get('ands', 0):>7d}{stats.get('levels', 0):>7d}"
              f"  {source}")


def _cmd_circuits(args) -> int:
    from repro.circuits.corpus import CorpusManifest, import_circuit

    if args.circuits_command == "list":
        if args.corpus:
            _print_corpus_table(CorpusManifest.load(args.corpus))
            return 0
        return _cmd_list_circuits(args)
    if args.circuits_command == "stats":
        if bool(args.circuit) == bool(args.corpus):
            raise ValueError(
                "circuits stats needs exactly one of --circuit or --corpus")
        if args.corpus:
            manifest = CorpusManifest.load(args.corpus)
            _print_corpus_table(manifest)
            total = sum(entry.stats.get("ands", 0) for entry in manifest.entries)
            print(f"total: {len(manifest.entries)} circuit(s), {total} AND node(s)")
            return 0
        aig = get_circuit(args.circuit, width=args.width)
        stats = aig.stats()
        print(f"circuit      : {aig.name}")
        print(f"inputs       : {stats['pis']}")
        print(f"outputs      : {stats['pos']}")
        print(f"AND nodes    : {stats['ands']}")
        print(f"AIG levels   : {stats['levels']}")
        return 0
    if args.circuits_command == "import":
        for source in args.files:
            entry = import_circuit(args.corpus, source)
            stats = entry.stats
            print(f"imported {source} as {entry.name!r} "
                  f"(pis {stats.get('pis')}, pos {stats.get('pos')}, "
                  f"ands {stats.get('ands')}, levels {stats.get('levels')})")
        return 0
    raise ValueError(f"unknown circuits command {args.circuits_command!r}")


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------
def _cmd_lint(args) -> int:
    from repro.lint import (
        default_rules,
        format_diagnostics_json,
        format_diagnostics_text,
        lint_paths,
    )

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name:26s} {rule.rationale}")
        return 0
    if args.paths:
        paths = list(args.paths)
    else:
        # Lint the installed package source by default, so `repro lint`
        # works from any checkout layout.
        from pathlib import Path

        import repro

        paths = [str(Path(repro.__file__).parent)]
    diagnostics = lint_paths(paths, rules=rules)
    formatter = (format_diagnostics_json if args.format == "json"
                 else format_diagnostics_text)
    print(formatter(diagnostics))
    return 1 if diagnostics else 0


# ----------------------------------------------------------------------
# Registry listings
# ----------------------------------------------------------------------
def _cmd_list_circuits(_args) -> int:
    print(f"{'name':12s}{'display name':18s}{'default width':>14s}{'paper width':>12s}")
    for spec in list_circuits():
        print(f"{spec.name:12s}{spec.display_name:18s}"
              f"{spec.default_width:>14d}{spec.paper_width:>12d}"
              + ("   [large]" if spec.large else ""))
    return 0


def _cmd_list_methods(_args) -> int:
    display = method_display_names()
    for key in available_methods():
        print(f"{key:12s}{display.get(key, key)}")
    return 0


def _cmd_list_objectives(_args) -> int:
    for key in OBJECTIVES.keys():
        print(key)
    return 0


def _cmd_backends(args) -> int:
    # Only `backends list` exists today; argparse enforces the subcommand.
    assert args.backends_command == "list"
    from repro.registry import BACKENDS
    from repro.qor.backends import SynthesisBackend

    for key in sorted(BACKENDS.keys()):
        factory = BACKENDS.get(key)
        try:
            backend = factory()
        except TypeError:
            # Parameterised backends (e.g. replay needs a tape path)
            # cannot be probed without configuration.
            print(f"{key:12s}requires parameters "
                  f"(pass inline JSON or a KEY:ARG shorthand)")
            continue
        if not isinstance(backend, SynthesisBackend):
            print(f"{key:12s}invalid factory ({backend!r})")
            continue
        if backend.available():
            status = "available"
        else:
            note = backend.availability_note()
            status = f"unavailable ({note})" if note else "unavailable"
        namespace = backend.cache_namespace or "(native, unsuffixed)"
        print(f"{key:12s}{status}; cache namespace {namespace}")
    return 0


# ----------------------------------------------------------------------
# Legacy single-shot shims
# ----------------------------------------------------------------------
def _cmd_stats(args) -> int:
    aig = get_circuit(args.circuit, width=args.width)
    mapping = map_aig(aig, lut_size=args.lut_size)
    stats = aig.stats()
    print(f"circuit      : {aig.name}")
    print(f"inputs       : {stats['pis']}")
    print(f"outputs      : {stats['pos']}")
    print(f"AND nodes    : {stats['ands']}")
    print(f"AIG levels   : {stats['levels']}")
    print(f"LUT-{args.lut_size} area   : {mapping.area}")
    print(f"LUT-{args.lut_size} levels : {mapping.delay}")
    return 0


def _cmd_evaluate(args) -> int:
    sequence = _parse_sequence(args.sequence)
    aig = get_circuit(args.circuit, width=args.width)
    evaluator = QoREvaluator(aig, lut_size=args.lut_size,
                             objective=parse_objective_argument(args.objective),
                             backend=parse_backend_argument(args.backend))
    record = evaluator.evaluate(sequence)
    print(f"sequence          : {sequence_to_string(record.sequence)} "
          f"({', '.join(record.sequence)})")
    print(f"area (LUTs)       : {record.area}")
    print(f"delay (levels)    : {record.delay}")
    print(f"QoR               : {record.qor:.4f}")
    print(f"improvement vs resyn2 : {record.qor_improvement:.2f}%")
    return 0


def _print_engine_metadata(meta) -> None:
    """One-line summary of the warm pool + planner routing for --jobs > 1."""
    pool = meta["pool"]
    decisions = meta["decisions"]
    routed = {"serial": 0, "pool": 0}
    for decision in decisions:
        routed[decision["mode"]] = routed.get(decision["mode"], 0) + 1
    print(f"execution         : jobs {meta['jobs']}, warm pool "
          f"builds {pool['builds']} (epoch {pool['epoch']}, "
          f"rebuilds {pool['rebuilds']}), planner routed "
          f"{routed['pool']} batch(es) to the pool, "
          f"{routed['serial']} serial")


def _cmd_optimise(args) -> int:
    _deprecation_note("optimise")
    spec = EvaluatorSpec.for_circuit(
        args.circuit, width=args.width, lut_size=args.lut_size,
        objective=parse_objective_argument(args.objective),
        backend=parse_backend_argument(args.backend))
    cache_dir = _resolve_cache_dir(args.cache_dir)
    cache = PersistentQoRCache(cache_dir) if cache_dir else None
    evaluator = spec.build_evaluator(persistent_cache=cache)
    space = SequenceSpace(sequence_length=args.sequence_length)
    optimiser = make_optimiser(args.method, space=space, seed=args.seed)
    jobs = resolve_jobs(args.jobs)
    if jobs > 1 and not optimiser.supports_batch:
        print(f"warning: {optimiser.name} does not batch its evaluations; "
              f"--jobs {jobs} will run serially", file=sys.stderr)
    print(f"running {optimiser.name} on {evaluator.aig.name} "
          f"(budget {args.budget}, K={args.sequence_length}, seed {args.seed}, "
          f"jobs {jobs}) ...")
    with EvaluationEngine(spec, jobs=jobs, evaluator=evaluator) as engine:
        evaluator.attach_engine(engine)
        result = optimiser.optimise(evaluator, budget=args.budget)
        engine_meta = engine.metadata()
    if jobs > 1:
        _print_engine_metadata(engine_meta)
    print(f"best sequence     : {sequence_to_string(result.best_sequence)}")
    for op in result.best_sequence:
        print(f"   - {op}")
    print(f"area / delay      : {result.best_area} LUTs / {result.best_delay} levels")
    print(f"QoR improvement   : {result.best_improvement:.2f}% over resyn2")
    print(f"evaluations used  : {result.num_evaluations}")
    if cache is not None:
        print(f"computed          : {evaluator.num_computed} "
              f"(persistent-cache hits: {evaluator.num_persistent_hits})")
        cache.close()
    return 0


def _cmd_table(args) -> int:
    _deprecation_note("table")
    config = ExperimentConfig(
        budget=args.budget,
        num_seeds=args.seeds,
        sequence_length=args.sequence_length,
        lut_size=args.lut_size,
        circuits=tuple(_parse_csv(args.circuits)),
        methods=tuple(_parse_csv(args.methods)),
        method_overrides={
            "boils": {"num_initial": 4, "local_search_queries": 100, "adam_steps": 3,
                      "fit_every": 2},
            "sbo": {"num_initial": 4, "adam_steps": 3, "fit_every": 2},
        },
    )
    cache_dir = _resolve_cache_dir(args.cache_dir)
    results = run_experiment(
        config,
        progress=lambda msg: print(f"  [{msg}]", file=sys.stderr),
        jobs=args.jobs,
        cache_dir=cache_dir,
    )
    print(render_figure3_table(build_qor_table(results)))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "resume": _cmd_resume,
    "show": _cmd_show,
    "corpus": _cmd_corpus,
    "circuits": _cmd_circuits,
    "lint": _cmd_lint,
    "list-circuits": _cmd_list_circuits,
    "list-methods": _cmd_list_methods,
    "list-objectives": _cmd_list_objectives,
    "backends": _cmd_backends,
    "stats": _cmd_stats,
    "evaluate": _cmd_evaluate,
    "optimise": _cmd_optimise,
    "table": _cmd_table,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError, StoreError, OSError,
            EngineFaultError, BackendError) as error:
        # EngineFaultError covers infrastructure failures the driver
        # could not recover from (e.g. the worker pool dying past its
        # rebuild budget); BackendError covers synthesis-backend
        # failures (missing tape entries, absent abc binary) — exit 2,
        # distinct from failed/quarantined cells (exit 1) and success
        # (exit 0).
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
