"""Decorator-based extension registries for optimisers, objectives, circuits.

This module is the extension seam of the public API: everything a
:class:`repro.api.Campaign` names by string — the optimisation method, the
QoR objective, the benchmark circuit — resolves through a
:class:`Registry`.  Third-party code extends the system without editing
``repro`` internals, in either of two ways:

* **Decorator registration** (in-process)::

      from repro.registry import register_optimiser

      @register_optimiser("annealing", display_name="SA")
      class SimulatedAnnealing(SequenceOptimiser):
          ...

* **Entry points** (installed packages).  A distribution declares, e.g.::

      [project.entry-points."repro.optimisers"]
      annealing = "mypackage.annealing:SimulatedAnnealing"

  and the optimiser becomes available to every ``repro`` campaign and CLI
  invocation without an import statement anywhere.  The groups are
  ``repro.optimisers``, ``repro.objectives``, ``repro.circuits``,
  ``repro.backends`` (synthesis backends for the QoR evaluator) and
  ``repro.lint_rules`` (external invariant-checker packs for
  ``repro lint``).

Keys are case-sensitive, duplicates are rejected loudly (a silent
overwrite of ``"boils"`` would corrupt every downstream result table),
and unknown-key errors always list what *is* available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """Unknown or duplicate registry key.

    Subclasses :class:`KeyError` so existing ``except KeyError`` handlers
    (e.g. the CLI's error-to-exit-code mapping) keep working.
    """

    def __str__(self) -> str:  # KeyError repr()s its message; undo that.
        return self.args[0] if self.args else ""


class Registry(Generic[T]):
    """An ordered name → object mapping with explicit registration.

    Parameters
    ----------
    kind:
        Human-readable singular noun ("optimiser", "objective", ...)
        used in error messages.
    entry_point_group:
        Optional ``importlib.metadata`` entry-point group scanned lazily
        (once, on first lookup/listing) so installed third-party packages
        can contribute entries without being imported explicitly.
    builtin_loader:
        Optional callable importing the modules that register the
        built-in entries.  Called lazily so the registry module itself
        stays import-cycle-free.
    """

    def __init__(
        self,
        kind: str,
        entry_point_group: Optional[str] = None,
        builtin_loader: Optional[Callable[[], None]] = None,
    ) -> None:
        self.kind = kind
        self.entry_point_group = entry_point_group
        self._builtin_loader = builtin_loader
        self._entries: Dict[str, T] = {}
        self._loaded_builtins = False
        self._loaded_entry_points = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, key: str, obj: Optional[T] = None, *, replace: bool = False):
        """Register ``obj`` under ``key``; usable as a decorator.

        Raises :class:`RegistryError` if ``key`` is already taken (pass
        ``replace=True`` to overwrite deliberately, e.g. in tests).
        """
        if not key or not isinstance(key, str):
            raise RegistryError(f"{self.kind} key must be a non-empty string, got {key!r}")

        def _store(value: T) -> T:
            if not replace and key in self._entries:
                raise RegistryError(
                    f"duplicate {self.kind} key {key!r}: already registered as "
                    f"{self._entries[key]!r}; pass replace=True to overwrite"
                )
            self._entries[key] = value
            return value

        if obj is None:
            return _store
        return _store(obj)

    def unregister(self, key: str) -> None:
        """Remove an entry (mainly for tests); missing keys are ignored."""
        self._entries.pop(key, None)

    # ------------------------------------------------------------------
    # Lazy population
    # ------------------------------------------------------------------
    def _ensure_builtins(self) -> None:
        if not self._loaded_builtins and self._builtin_loader is not None:
            # Mark first: the loader imports modules whose decorators call
            # back into register(), and a re-entrant load must not recurse.
            self._loaded_builtins = True
            self._builtin_loader()

    def _ensure_entry_points(self) -> None:
        if self._loaded_entry_points or self.entry_point_group is None:
            return
        self._loaded_entry_points = True
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - py>=3.10 always has it
            return
        try:
            discovered = entry_points(group=self.entry_point_group)
        except TypeError:  # pragma: no cover - pre-3.10 selectable API
            discovered = entry_points().get(self.entry_point_group, [])
        for entry_point in discovered:
            if entry_point.name in self._entries:
                # In-process registrations win over installed plugins; a
                # plugin must not silently shadow a built-in.
                continue
            try:
                self._entries[entry_point.name] = entry_point.load()
            except Exception as error:  # noqa: BLE001 - plugin isolation
                # One broken installed plugin must not brick every repro
                # command; skip it loudly instead.
                import warnings

                warnings.warn(
                    f"skipping {self.kind} entry point "
                    f"{entry_point.name!r} ({self.entry_point_group}): "
                    f"failed to load: {error!r}",
                    UserWarning,
                    stacklevel=2,
                )

    def _populate(self) -> None:
        self._ensure_builtins()
        self._ensure_entry_points()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> T:
        """Look up an entry, raising a helpful error for unknown keys."""
        self._populate()
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {key!r}; available: {self.keys()}"
            ) from None

    def keys(self) -> List[str]:
        """Registered keys, in registration order (built-ins first)."""
        self._populate()
        return list(self._entries)

    def items(self) -> List[tuple]:
        self._populate()
        return list(self._entries.items())

    def __contains__(self, key: str) -> bool:
        self._populate()
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        self._populate()
        return len(self._entries)


# ----------------------------------------------------------------------
# Optimisers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MethodSpec:
    """A named optimiser constructor with default keyword arguments.

    ``defaults`` are the experiment-grid defaults (the settings the
    paper-scale protocol uses for this method), applied before any
    per-campaign overrides; the class's own ``__init__`` defaults remain
    the API-level defaults.
    """

    key: str
    display_name: str
    factory: Callable[..., object]
    defaults: Dict[str, object] = field(default_factory=dict)


def _load_builtin_optimisers() -> None:
    # Importing the modules runs their @register_optimiser decorators.
    import repro.bo.boils  # noqa: F401
    import repro.bo.sbo  # noqa: F401
    import repro.baselines  # noqa: F401  (rs, greedy, ga, a2c, ppo, graph-rl)


OPTIMISERS: Registry[MethodSpec] = Registry(
    "method", entry_point_group="repro.optimisers",
    builtin_loader=_load_builtin_optimisers,
)


def register_optimiser(
    key: str,
    *,
    display_name: Optional[str] = None,
    defaults: Optional[Dict[str, object]] = None,
    replace: bool = False,
):
    """Class decorator registering a :class:`SequenceOptimiser` subclass.

    Entry-point plugins may export either the class itself or a ready
    :class:`MethodSpec`; :func:`optimiser_spec` normalises both.
    """

    def _decorate(cls):
        spec = MethodSpec(
            key=key,
            display_name=display_name if display_name is not None
            else getattr(cls, "name", key),
            factory=cls,
            defaults=dict(defaults or {}),
        )
        OPTIMISERS.register(key, spec, replace=replace)
        return cls

    return _decorate


def optimiser_spec(key: str) -> MethodSpec:
    """Resolve a method key to a :class:`MethodSpec`.

    Entry-point entries that loaded to a bare class (rather than a
    :class:`MethodSpec`) are wrapped on first use.
    """
    entry = OPTIMISERS.get(key)
    if isinstance(entry, MethodSpec):
        return entry
    spec = MethodSpec(key=key, display_name=getattr(entry, "name", key),
                      factory=entry)
    OPTIMISERS.register(key, spec, replace=True)
    return spec


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
def _load_builtin_objectives() -> None:
    import repro.qor.objectives  # noqa: F401


OBJECTIVES: Registry[Callable[..., object]] = Registry(
    "objective", entry_point_group="repro.objectives",
    builtin_loader=_load_builtin_objectives,
)


def register_objective(key: str, factory=None, *, replace: bool = False):
    """Register an objective factory ``(**params) -> Objective``."""
    return OBJECTIVES.register(key, factory, replace=replace)


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------
def _load_builtin_circuits() -> None:
    import repro.circuits.registry  # noqa: F401


CIRCUITS: Registry[object] = Registry(
    "circuit", entry_point_group="repro.circuits",
    builtin_loader=_load_builtin_circuits,
)


# ----------------------------------------------------------------------
# Synthesis backends
# ----------------------------------------------------------------------
def _load_builtin_backends() -> None:
    import repro.qor.backends  # noqa: F401


BACKENDS: Registry[Callable[..., object]] = Registry(
    "backend", entry_point_group="repro.backends",
    builtin_loader=_load_builtin_backends,
)


def register_backend(key: str, factory=None, *, replace: bool = False):
    """Register a synthesis-backend factory ``(**params) -> SynthesisBackend``.

    Built-ins (``native``, ``replay``, ``abc``) live in
    :mod:`repro.qor.backends`; external adapters publish under the
    ``repro.backends`` entry-point group and become addressable from
    campaigns and ``repro run --backend`` without an import statement.
    """
    return BACKENDS.register(key, factory, replace=replace)


# ----------------------------------------------------------------------
# Lint rules
# ----------------------------------------------------------------------
def _load_builtin_lint_rules() -> None:
    import repro.lint.rules  # noqa: F401


LINT_RULES: Registry[type] = Registry(
    "lint rule", entry_point_group="repro.lint_rules",
    builtin_loader=_load_builtin_lint_rules,
)


def register_lint_rule(cls: Optional[type] = None, *, replace: bool = False):
    """Class decorator registering a :class:`repro.lint.LintRule` subclass.

    The registry key is the rule's stable diagnostic code (``RPL###``
    for the built-in pack); external packs published under the
    ``repro.lint_rules`` entry-point group are discovered exactly like
    optimisers and objectives, so ``repro lint`` picks them up without
    an import statement anywhere.
    """

    def _decorate(rule_cls: type) -> type:
        code = getattr(rule_cls, "code", "")
        if not code:
            raise RegistryError(
                f"lint rule {rule_cls.__name__} must define a non-empty "
                "code class attribute")
        LINT_RULES.register(code, rule_cls, replace=replace)
        return rule_cls

    if cls is None:
        return _decorate
    return _decorate(cls)
