"""The declarative :class:`Campaign`: problems × methods × seeds × budget.

A campaign is the full description of an evaluation grid — the paper's
protocol is ``Campaign(problems=<10 circuits>, methods=<8 methods>,
seeds=(0..4), budget=200)`` — as one JSON-round-trippable value.  It
replaces the env-knob-steered ``ExperimentConfig``: environment overrides
still exist, but as the *explicit* :meth:`Campaign.with_env_overrides`
layer applied exactly where the caller asks for it, never implicitly at
construction time.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.problem import Problem
from repro.registry import OPTIMISERS
from repro.qor.objectives import resolve_objective

#: Manifest/JSON schema version, bumped on incompatible layout changes.
CAMPAIGN_FORMAT_VERSION = 1


def env_int(name: str, default: int, environ: Optional[Mapping[str, str]] = None) -> int:
    """An integer environment override that warns loudly when malformed.

    ``REPRO_BUDGET=abc`` used to silently fall back to the default — and
    silently run the wrong experiment.  It still falls back, but emits a
    :class:`UserWarning` naming the variable and the offending value.
    """
    environ = os.environ if environ is None else environ
    raw = environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except (TypeError, ValueError):
        warnings.warn(
            f"ignoring malformed environment override {name}={raw!r} "
            f"(expected an integer); using the default {default}",
            UserWarning,
            stacklevel=2,
        )
        return default


@dataclass(frozen=True)
class CampaignCell:
    """One (problem, method, seed) grid cell of a campaign."""

    index: int
    problem: Problem
    method: str
    seed: int

    @property
    def cell_id(self) -> str:
        """Stable identifier (also the per-cell record filename stem)."""
        return f"{self.problem.key}__{self.method}__s{self.seed}"


@dataclass(frozen=True)
class Campaign:
    """A declarative evaluation campaign.

    Attributes
    ----------
    problems:
        The :class:`Problem` list (order defines cell order).
    methods:
        Registered optimiser keys.
    seeds:
        Explicit seed values — ``(0, 1, 2)`` rather than a count, so a
        campaign can extend an earlier one with fresh seeds and resume
        cheaply.
    budget:
        Black-box evaluations per cell.
    method_overrides:
        Per-method constructor keyword overrides, applied on top of the
        method's registered grid defaults.
    name:
        Campaign id recorded in manifests and progress messages.
    wall_clock_budget:
        Optional per-cell wall-clock cap in seconds, threaded into the
        drive loop as ``max_seconds``.  Resumed cells continue the
        interrupted segment's clock rather than restarting it.  Note
        that wall-clock stops are inherently machine-dependent — grids
        using this knob trade bit-reproducibility for bounded runtime.
    early_stop_improvement:
        Optional per-cell early-stop threshold: a cell ends as soon as
        its best QoR improvement (percent over the reference flow)
        reaches this value.  Deterministic, unlike the wall clock.
    eval_timeout:
        Optional per-evaluation deadline in seconds, enforced inside
        every ``compute()`` (SIGALRM).  An evaluation that blows it is
        retried per the driver's :class:`~repro.engine.faults.RetryPolicy`
        before the cell is quarantined.
    cell_timeout:
        Optional per-cell-attempt deadline in seconds, enforced by the
        campaign driver.  A cell that blows it is cancelled (its worker
        recycled under ``jobs>1``) and retried from its last checkpoint.
    """

    problems: Tuple[Problem, ...]
    methods: Tuple[str, ...] = ("boils", "rs")
    seeds: Tuple[int, ...] = (0,)
    budget: int = 20
    method_overrides: Dict[str, Dict[str, object]] = field(default_factory=dict)
    name: str = "campaign"
    wall_clock_budget: Optional[float] = None
    early_stop_improvement: Optional[float] = None
    eval_timeout: Optional[float] = None
    cell_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "problems", tuple(
            problem if isinstance(problem, Problem) else Problem(str(problem))
            for problem in self.problems
        ))
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))

    # ------------------------------------------------------------------
    def validate(self) -> "Campaign":
        """Resolve every registry reference; raises early on unknowns."""
        if not self.problems:
            raise ValueError("campaign has no problems")
        if not self.methods:
            raise ValueError("campaign has no methods")
        if not self.seeds:
            raise ValueError("campaign has no seeds")
        if self.budget < 1:
            raise ValueError("budget must be at least 1")
        if self.wall_clock_budget is not None and self.wall_clock_budget <= 0:
            raise ValueError("wall_clock_budget must be positive (seconds)")
        if self.eval_timeout is not None and self.eval_timeout <= 0:
            raise ValueError("eval_timeout must be positive (seconds)")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (seconds)")
        for method in self.methods:
            OPTIMISERS.get(method)
        for key in self.method_overrides:
            if key not in self.methods:
                raise ValueError(
                    f"method_overrides names {key!r}, which is not in "
                    f"methods {list(self.methods)}"
                )
        for problem in self.problems:
            problem.validate()
        keys = [problem.key for problem in self.problems]
        duplicates = {key for key in keys if keys.count(key) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate problem keys {sorted(duplicates)}: give "
                "identical problems distinct names"
            )
        return self

    def resolved(self) -> "Campaign":
        """A copy with every problem's circuit name and width pinned.

        This is what gets persisted to a run-directory manifest: widths
        resolve ``REPRO_WIDTH_SCALE`` *now*, so resuming under a
        different environment still rebuilds identical circuits.
        """
        return replace(self, problems=tuple(p.resolved() for p in self.problems))

    # ------------------------------------------------------------------
    def cells(self) -> List[CampaignCell]:
        """All grid cells, problem-major then method then seed.

        The order matches the historical serial grid runner (circuit,
        method, seed), so campaign results align with legacy tables.
        """
        out: List[CampaignCell] = []
        index = 0
        for problem in self.problems:
            for method in self.methods:
                for seed in self.seeds:
                    out.append(CampaignCell(index=index, problem=problem,
                                            method=method, seed=seed))
                    index += 1
        return out

    def overrides_for(self, method: str) -> Dict[str, object]:
        return dict(self.method_overrides.get(method, {}))

    # ------------------------------------------------------------------
    # Environment-override layer (explicit, not ambient)
    # ------------------------------------------------------------------
    def with_env_overrides(
        self, environ: Optional[Mapping[str, str]] = None
    ) -> "Campaign":
        """Apply the ``REPRO_*`` environment knobs to this campaign.

        Reads ``REPRO_BUDGET``, ``REPRO_SEEDS`` (a seed *count* →
        ``range(n)``), ``REPRO_SEQ_LENGTH`` and ``REPRO_CIRCUIT_WIDTH``
        and returns the adjusted copy.  Unlike the legacy
        ``ExperimentConfig``, nothing happens unless this method is
        called — the environment never silently steers a campaign.
        Malformed values warn loudly (:func:`env_int`).
        """
        environ = os.environ if environ is None else environ
        budget = env_int("REPRO_BUDGET", self.budget, environ)
        num_seeds = env_int("REPRO_SEEDS", 0, environ)
        seeds = tuple(range(num_seeds)) if num_seeds > 0 else self.seeds
        sequence_length = env_int("REPRO_SEQ_LENGTH", 0, environ)
        width = env_int("REPRO_CIRCUIT_WIDTH", 0, environ)
        problems = tuple(
            replace(
                problem,
                sequence_length=sequence_length or problem.sequence_length,
                width=width or problem.width,
            )
            for problem in self.problems
        )
        return replace(self, budget=budget, seeds=seeds, problems=problems)

    @classmethod
    def from_env_overrides(
        cls,
        base: "Campaign",
        environ: Optional[Mapping[str, str]] = None,
    ) -> "Campaign":
        """Classmethod spelling of :meth:`with_env_overrides`."""
        return base.with_env_overrides(environ)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "name": self.name,
            "problems": [problem.to_dict() for problem in self.problems],
            "methods": list(self.methods),
            "seeds": list(self.seeds),
            "budget": self.budget,
            "method_overrides": {key: dict(value)
                                 for key, value in self.method_overrides.items()},
            "wall_clock_budget": self.wall_clock_budget,
            "early_stop_improvement": self.early_stop_improvement,
            "eval_timeout": self.eval_timeout,
            "cell_timeout": self.cell_timeout,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Campaign":
        version = int(payload.get("format_version", CAMPAIGN_FORMAT_VERSION))  # type: ignore[arg-type]
        if version > CAMPAIGN_FORMAT_VERSION:
            raise ValueError(
                f"campaign format version {version} is newer than this "
                f"repro build supports ({CAMPAIGN_FORMAT_VERSION})"
            )
        return cls(
            name=str(payload.get("name", "campaign")),
            problems=tuple(Problem.from_dict(entry)  # type: ignore[arg-type]
                           for entry in payload.get("problems", [])),
            methods=tuple(payload.get("methods", ())),  # type: ignore[arg-type]
            seeds=tuple(payload.get("seeds", (0,))),  # type: ignore[arg-type]
            budget=int(payload.get("budget", 20)),  # type: ignore[arg-type]
            method_overrides={
                str(key): dict(value)
                for key, value in dict(payload.get("method_overrides", {})).items()  # type: ignore[arg-type]
            },
            wall_clock_budget=(
                float(payload["wall_clock_budget"])  # type: ignore[arg-type]
                if payload.get("wall_clock_budget") is not None else None
            ),
            early_stop_improvement=(
                float(payload["early_stop_improvement"])  # type: ignore[arg-type]
                if payload.get("early_stop_improvement") is not None else None
            ),
            eval_timeout=(
                float(payload["eval_timeout"])  # type: ignore[arg-type]
                if payload.get("eval_timeout") is not None else None
            ),
            cell_timeout=(
                float(payload["cell_timeout"])  # type: ignore[arg-type]
                if payload.get("cell_timeout") is not None else None
            ),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Campaign":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, problem: Problem, method: str = "boils", seed: int = 0,
               budget: int = 20, **overrides: object) -> "Campaign":
        """One problem × one method × one seed."""
        method_overrides = {method: dict(overrides)} if overrides else {}
        return cls(problems=(problem,), methods=(method,), seeds=(seed,),
                   budget=budget, method_overrides=method_overrides,
                   name=f"{problem.key}-{method}")

    @classmethod
    def from_corpus(
        cls,
        corpus_dir: Union[str, Path],
        *,
        circuits: Optional[Sequence[str]] = None,
        methods: Sequence[str] = ("boils", "rs"),
        seeds: Sequence[int] = (0,),
        budget: int = 20,
        lut_size: int = 6,
        sequence_length: int = 20,
        objective: object = "eq1",
        backend: object = "native",
        name: Optional[str] = None,
        **kwargs: object,
    ) -> "Campaign":
        """A campaign over every circuit of a corpus directory.

        Expands the corpus manifest (see
        :func:`repro.circuits.corpus.corpus_problems`) into one
        file-backed :class:`Problem` per entry — mixed AIGER/BLIF/bench
        files and generated circuits alike — verifying each entry's
        content hash first.  ``circuits`` selects a subset of entries by
        manifest name.
        """
        # Imported lazily: repro.circuits.corpus builds Problems.
        from repro.circuits.corpus import corpus_problems

        problems = corpus_problems(
            corpus_dir,
            names=circuits,
            lut_size=lut_size,
            sequence_length=sequence_length,
            objective=objective,
            backend=backend,
        )
        return cls(
            problems=problems,
            methods=tuple(methods),
            seeds=tuple(seeds),
            budget=budget,
            name=name if name is not None else f"corpus-{Path(corpus_dir).name}",
            **kwargs,  # type: ignore[arg-type]
        )

    @classmethod
    def paper_protocol(cls, objective: object = "eq1") -> "Campaign":
        """The paper's full evaluation grid (hours of compute)."""
        resolve_objective(objective)
        circuits = ("adder", "bar", "div", "hyp", "log2", "max",
                    "multiplier", "sin", "sqrt", "square")
        return cls(
            name="paper-protocol",
            problems=tuple(Problem(circuit, sequence_length=20,
                                   objective=objective)
                           for circuit in circuits),
            methods=("boils", "sbo", "rs", "greedy", "ga", "a2c", "ppo",
                     "graph-rl"),
            seeds=tuple(range(5)),
            budget=200,
        )
