"""The declarative :class:`Problem`: one circuit + space + objective.

A problem is everything that defines *what is being optimised*, with no
run mechanics attached: the circuit (any registered name), its bit-width,
the LUT size of the mapping, the sequence length ``K`` of the search
space, the QoR objective and (optionally) a non-default reference flow.
Problems are frozen, JSON-round-trippable and cheap — build them freely::

    Problem("adder")                          # paper defaults, Equation 1
    Problem("multiplier", width=8, objective="area")
    Problem("sqrt", objective={"objective": "weighted",
                               "w_area": 2.0, "w_delay": 1.0})
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.bo.space import SequenceSpace
from repro.circuits.registry import get_circuit_spec, resolve_width
from repro.engine.spec import EvaluatorSpec
from repro.qor.backends import (
    DEFAULT_BACKEND_KEY,
    SynthesisBackend,
    backend_slug,
    resolve_backend,
)
from repro.qor.evaluator import QoREvaluator
from repro.qor.objectives import Objective, canonical_spec_string, resolve_objective


_SAFE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def objective_slug(objective: object) -> str:
    """Filename-safe identifier of an objective spec.

    Bare keys pass through (``"area"``); parameterised specs get a short
    content hash (``"weighted-1a2b3c"``) so distinct weightings never
    collide in cell ids or run directories.
    """
    canonical = canonical_spec_string(objective)
    if not canonical.lstrip().startswith("{"):
        return canonical
    key = json.loads(canonical).get("objective", "objective")
    digest = hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:6]
    return f"{key}-{digest}"


@dataclass(frozen=True)
class Problem:
    """One optimisation problem: circuit × space × objective.

    Attributes
    ----------
    circuit:
        Registered circuit name (bundled or user-registered, see
        :func:`repro.circuits.registry.register_circuit`).
    width:
        Bit-width, or ``None`` for the registry default (scaled by
        ``REPRO_WIDTH_SCALE``).  :meth:`resolved` pins it, which campaign
        manifests do so a resumed run rebuilds identical circuits.
    lut_size:
        LUT input count used for mapping (the paper uses 6).
    sequence_length:
        ``K``, the number of operations per tested sequence.
    objective:
        QoR objective spec (``"eq1"`` default, ``"area"``, ``"delay"``,
        ``{"objective": "weighted", ...}`` or any registered key).
    reference_sequence:
        Reference flow for the QoR denominators; ``None`` = ``resyn2``.
    name:
        Optional human-readable id; defaults to a derived slug.
    circuit_hash:
        For file-backed circuits: the pinned SHA-256 content hash of the
        circuit file.  :meth:`resolved` fills it in, campaign manifests
        persist it, and :meth:`evaluator_spec` verifies the file still
        matches — so a resume after the file was edited fails loudly
        instead of silently mixing two circuits in one trajectory.
    backend:
        Synthesis backend spec (``"native"`` default, ``"abc"``,
        ``{"backend": "replay", "tape": ...}`` or any registered key) —
        the substrate that measures ``sequence -> (area, delay)``.
        Part of the problem identity: non-default backends appear in
        :attr:`key` and get their own persistent-cache namespace.
    """

    circuit: str
    width: Optional[int] = None
    lut_size: int = 6
    sequence_length: int = 20
    objective: object = "eq1"
    reference_sequence: Optional[Tuple[str, ...]] = None
    name: Optional[str] = field(default=None)
    circuit_hash: Optional[str] = None
    backend: object = DEFAULT_BACKEND_KEY

    def __post_init__(self) -> None:
        if self.reference_sequence is not None:
            object.__setattr__(self, "reference_sequence",
                               tuple(self.reference_sequence))

    # ------------------------------------------------------------------
    def validate(self) -> "Problem":
        """Resolve every registry reference; raises early on unknowns."""
        get_circuit_spec(self.circuit)
        resolve_objective(self.objective)
        resolve_backend(self.backend)
        if self.sequence_length < 1:
            raise ValueError("sequence_length must be positive")
        if self.lut_size < 2:
            raise ValueError("lut_size must be at least 2")
        if self.name is not None and not _SAFE_NAME.match(self.name):
            # The name becomes a cell-record filename stem; reject path
            # separators and other unsafe characters before any compute.
            raise ValueError(
                f"problem name {self.name!r} must match "
                "[A-Za-z0-9][A-Za-z0-9._-]* (it is used as a filename)"
            )
        return self

    def resolved(self) -> "Problem":
        """A copy with the canonical circuit name, width and file hash pinned."""
        spec = get_circuit_spec(self.circuit)
        canonical = spec.name
        return replace(
            self,
            circuit=canonical,
            width=resolve_width(canonical, self.width),
            circuit_hash=(self.circuit_hash
                          or getattr(spec, "content_hash", None)),
        )

    @property
    def key(self) -> str:
        """Stable identifier used in cell ids and run directories."""
        if self.name:
            return self.name
        from repro.circuits.files import (
            file_circuit_path,
            file_slug,
            is_file_circuit_name,
        )

        if is_file_circuit_name(self.circuit):
            # File circuits: the absolute path in the canonical name is
            # neither filename-safe nor relocation-stable; a slug of
            # stem + (pinned) content-hash prefix is both.  No width
            # token — file circuits have no width knob.  With a pinned
            # hash the key never touches the filesystem, so inspecting
            # a store whose circuit files moved away keeps working.
            content_hash = self.circuit_hash
            if content_hash is None:
                content_hash = get_circuit_spec(self.circuit).content_hash
            slug_base = file_slug(file_circuit_path(self.circuit).stem,
                                  content_hash)
            parts = [slug_base, f"lut{self.lut_size}", f"k{self.sequence_length}"]
        else:
            resolved = self.resolved()
            parts = [resolved.circuit, f"w{resolved.width}",
                     f"lut{self.lut_size}", f"k{self.sequence_length}"]
        slug = objective_slug(self.objective)
        if slug != "eq1":
            parts.append(slug)
        bslug = backend_slug(self.backend)
        if bslug != DEFAULT_BACKEND_KEY:
            # Native problems keep their historical keys: stores, cell
            # ids and run directories from pre-backend runs stay valid.
            parts.append(bslug)
        return "-".join(parts)

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def space(self) -> SequenceSpace:
        return SequenceSpace(sequence_length=self.sequence_length)

    def evaluator_spec(self) -> EvaluatorSpec:
        """The picklable evaluator spec workers rebuild the black box from.

        For file-backed circuits with a pinned :attr:`circuit_hash`
        (i.e. problems loaded from a campaign manifest), the file's
        current content is verified against the pin before anything is
        dispatched.
        """
        spec = EvaluatorSpec.for_circuit(
            self.circuit,
            width=self.width,
            lut_size=self.lut_size,
            reference_sequence=self.reference_sequence,
            objective=self.objective,
            backend=self.backend,
        )
        if (self.circuit_hash is not None and spec.circuit_hash is not None
                and spec.circuit_hash != self.circuit_hash):
            from repro.circuits.files import CircuitFileError

            raise CircuitFileError(
                f"circuit file {spec.circuit_file} changed on disk: content "
                f"hash {spec.circuit_hash[:12]}… does not match the hash "
                f"{self.circuit_hash[:12]}… pinned when the problem was "
                "resolved")
        return spec

    def build_evaluator(
        self,
        cache: bool = True,
        persistent_cache: Optional[object] = None,
    ) -> QoREvaluator:
        """Instantiate the circuit and its QoR evaluator."""
        return self.evaluator_spec().build_evaluator(
            cache=cache, persistent_cache=persistent_cache)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        # Objective/backend instances serialise as their specs; str/dict
        # specs pass through verbatim so to_dict/from_dict round-trips
        # stay equal.
        objective = (self.objective.spec()
                     if isinstance(self.objective, Objective) else self.objective)
        backend = (self.backend.spec()
                   if isinstance(self.backend, SynthesisBackend) else self.backend)
        return {
            "circuit": self.circuit,
            "width": self.width,
            "lut_size": self.lut_size,
            "sequence_length": self.sequence_length,
            "objective": objective,
            "reference_sequence": (
                list(self.reference_sequence)
                if self.reference_sequence is not None else None
            ),
            "name": self.name,
            "circuit_hash": self.circuit_hash,
            "backend": backend,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Problem":
        reference = payload.get("reference_sequence")
        return cls(
            circuit=str(payload["circuit"]),
            width=(int(payload["width"])  # type: ignore[arg-type]
                   if payload.get("width") is not None else None),
            lut_size=int(payload.get("lut_size", 6)),  # type: ignore[arg-type]
            sequence_length=int(payload.get("sequence_length", 20)),  # type: ignore[arg-type]
            objective=payload.get("objective", "eq1"),
            reference_sequence=tuple(reference) if reference is not None else None,
            name=payload.get("name") or None,  # type: ignore[arg-type]
            circuit_hash=payload.get("circuit_hash") or None,  # type: ignore[arg-type]
            backend=payload.get("backend", DEFAULT_BACKEND_KEY),
        )
