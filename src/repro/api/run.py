"""Campaign execution: ``run``, ``resume`` and the one-problem helper.

:func:`run_campaign` is the single driver behind the CLI's ``run`` /
``resume`` subcommands and the legacy grid entry points: it expands a
:class:`~repro.api.campaign.Campaign` into cells, skips any cell that
already has a completed record in the
:class:`~repro.api.store.CampaignStore`, dispatches the rest serially or
across a process pool (reusing the engine's campaign workers —
``jobs=N`` is bit-identical to ``jobs=1``), and persists each finished
cell atomically.

The execution core is *round-granular*: workers stream typed
:class:`~repro.bo.base.RunEvent` summaries back to the parent as each
ask/tell round completes (``on_event``), append per-round trajectory
JSONL to the store, and persist periodic optimiser checkpoints.  Kill
the driver at any point; running ``resume_campaign`` completes exactly
the missing cells — and continues any *partially finished* cell from
its last checkpoint, with the continued trajectory and final record
bit-identical to an uninterrupted run.  A cell whose optimiser raises
is recorded as a failed-cell :class:`~repro.api.store.RunRecord` (the
campaign keeps going); ``resume`` retries failed cells.

The driver is also *fault-tolerant*: transient infrastructure trouble —
a cell blowing its ``cell_timeout``/``eval_timeout``, a worker process
dying (``BrokenProcessPool``), an injected fault — is retried with
backoff per a :class:`~repro.engine.faults.RetryPolicy`, resuming the
cell from its last checkpoint so the recovered run stays bit-identical.
The pool itself is rebuilt up to ``max_pool_rebuilds`` times before the
run aborts with :class:`~repro.engine.faults.PoolUnrecoverableError`,
and a cell that exhausts ``max_attempts`` is stamped ``quarantined``
(skipped by resume) while the rest of the campaign finishes.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.api.campaign import Campaign, CampaignCell
from repro.api.problem import Problem
from repro.api.store import CampaignStore, RunRecord
from repro.bo.base import OptimisationResult
from repro.engine import faults, worker
from repro.engine.engine import EvaluationEngine, resolve_jobs
from repro.engine.pool import WarmPool
from repro.engine.faults import (
    DeadlineExceeded,
    FaultPlan,
    PoolUnrecoverableError,
    RetryPolicy,
)
from repro.engine.grid import build_cell_payload

ProgressCallback = Callable[[str], None]
#: Round-event callback: ``(cell_id, event_dict)`` for every streamed
#: :class:`repro.bo.base.RunEvent` (see ``RunEvent.to_dict``).
EventCallback = Callable[[str, Dict[str, object]], None]


def _cell_payload(
    cell: CampaignCell,
    campaign: Campaign,
    store: Optional[CampaignStore] = None,
    checkpoint_every: int = 0,
    attempt: int = 0,
    fault_plan: Optional[str] = None,
) -> Dict[str, object]:
    spec = cell.problem.evaluator_spec()
    if campaign.eval_timeout is not None or fault_plan is not None:
        spec = dataclasses.replace(spec, eval_timeout=campaign.eval_timeout,
                                   fault_plan=fault_plan)
    return build_cell_payload(
        index=cell.index,
        spec=spec,
        method_key=cell.method,
        seed=cell.seed,
        budget=campaign.budget,
        sequence_length=cell.problem.sequence_length,
        overrides=campaign.overrides_for(cell.method),
        cell_id=cell.cell_id,
        store_root=str(store.root) if store is not None else None,
        checkpoint_every=checkpoint_every if store is not None else 0,
        wall_clock_budget=campaign.wall_clock_budget,
        early_stop_improvement=campaign.early_stop_improvement,
        attempt=attempt,
    )


def _progress_message(cell: CampaignCell, status: str) -> str:
    return f"{cell.method} / {cell.problem.key} / seed {cell.seed} [{status}]"


class _CallbackError(Exception):
    """Wrapper distinguishing a parent-callback crash from a cell crash.

    In the serial path the user's ``on_event`` callback runs *inside*
    the cell's drive loop; without this marker a buggy callback would be
    misrecorded as a failed cell.  Wrapped errors are re-raised to the
    caller — matching the parallel path, where callbacks run in the
    parent and their exceptions abort ``run_campaign`` directly.
    """

    # repro: lint-ok[RPL004] parent-side serial-path marker; never crosses a process boundary
    def __init__(self, original: BaseException) -> None:
        super().__init__(str(original))
        self.original = original


def _guard_sink(on_event: Optional[EventCallback]) -> Optional[EventCallback]:
    if on_event is None:
        return None

    def guarded(cell_id: str, event: Dict[str, object]) -> None:
        try:
            on_event(cell_id, event)
        except Exception as error:  # noqa: BLE001 - re-raised to caller
            raise _CallbackError(error) from error

    return guarded


def _drain_events(event_queue: Any, on_event: Optional[EventCallback]) -> None:
    """Forward every queued worker event to the parent callback."""
    if event_queue is None or on_event is None:
        return
    while True:
        try:
            cell_id, event = event_queue.get_nowait()
        except queue_module.Empty:
            return
        on_event(cell_id, event)


def run_campaign(
    campaign: Campaign,
    store: Optional[Union[str, CampaignStore]] = None,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[EventCallback] = None,
    checkpoint_every: int = 1,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[Union[str, FaultPlan]] = None,
    retry_quarantined: bool = False,
    sleep: Optional[Callable[[float], None]] = None,
) -> List[RunRecord]:
    """Run (or continue) a campaign; returns records in cell order.

    Parameters
    ----------
    campaign:
        The declarative grid to run.  Validated up front so unknown
        methods/circuits/objectives fail before any compute is spent.
    store:
        Optional run directory (path or :class:`CampaignStore`).  With a
        store, completed cells are loaded from disk and skipped
        bit-identically, every fresh cell is persisted the moment it
        finishes, per-round trajectories are appended as multi-line
        JSONL, and optimiser checkpoints make *mid-cell* kill+resume
        bit-identical — this is the checkpoint/restart mechanism behind
        ``repro run`` / ``repro resume``.
    jobs:
        Worker processes for pending cells (1 = serial, 0 = all CPUs).
        Results are independent of ``jobs``.
    cache_dir:
        Optional persistent QoR cache shared across cells and runs.
    progress:
        Callback receiving one human-readable line per cell.
    on_event:
        Callback receiving ``(cell_id, event_dict)`` for every round
        event streamed from the workers — live per-round progress even
        for parallel campaigns.  Per-cell event order is preserved;
        events of concurrently running cells interleave.
    checkpoint_every:
        Checkpoint cadence in rounds (store runs only); ``0`` disables
        mid-cell checkpoints (per-round trajectories are still written).
    retry:
        Retry policy for transient faults (deadlines, worker crashes).
        Defaults to :class:`RetryPolicy()`.
    fault_plan:
        Deterministic fault-injection schedule (testing/CI only): a
        :class:`~repro.engine.faults.FaultPlan` or its JSON string,
        threaded into every cell's evaluator spec.
    retry_quarantined:
        Re-run cells previously stamped ``quarantined`` instead of
        skipping them (the ``resume --retry-quarantined`` path).
    sleep:
        Injectable backoff sleeper; tests pass a recorder so assertions
        never depend on wall-clock sleeps.
    """
    campaign = campaign.validate().resolved()
    campaign_store: Optional[CampaignStore] = None
    if store is not None:
        campaign_store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        campaign = campaign_store.initialise(campaign)

    policy = retry or RetryPolicy()
    backoff_sleep = sleep or time.sleep
    plan_json: Optional[str] = None
    if fault_plan is not None:
        plan_json = (fault_plan.to_json() if isinstance(fault_plan, FaultPlan)
                     else str(fault_plan))

    cells = campaign.cells()
    statuses = campaign_store.cell_statuses() if campaign_store else {}
    records: List[Optional[RunRecord]] = [None] * len(cells)
    pending: List[CampaignCell] = []
    for cell in cells:
        status = statuses.get(cell.cell_id)
        if status == "ok":
            records[cell.index] = campaign_store.read_record(cell.cell_id)
            if progress is not None:
                progress(_progress_message(cell, "cached"))
        elif status == "quarantined" and not retry_quarantined:
            records[cell.index] = campaign_store.read_record(cell.cell_id)
            if progress is not None:
                progress(_progress_message(cell, "quarantined (skipped)"))
        else:
            pending.append(cell)

    cells_by_index = {cell.index: cell for cell in cells}

    def _finish(index: int, result: OptimisationResult) -> None:
        cell = cells_by_index[index]
        record = RunRecord.from_result(result, cell, campaign.budget)
        records[index] = record
        if campaign_store is not None:
            campaign_store.write_record(record)
            # Record first, checkpoint-drop second: a kill in between
            # leaves a resumable (merely redundant) checkpoint, never a
            # lost cell.
            campaign_store.clear_checkpoint(cell.cell_id)
        if progress is not None:
            progress(_progress_message(cell, "done"))

    def _finish_failure(cell: CampaignCell, error: BaseException) -> None:
        record = RunRecord.from_failure(cell, campaign.budget, error)
        records[cell.index] = record
        if campaign_store is not None:
            campaign_store.write_record(record)
        if progress is not None:
            progress(_progress_message(cell, f"failed: {error}"))

    def _finish_quarantine(cell: CampaignCell, error: BaseException,
                           attempts: int) -> None:
        # The checkpoint is deliberately *kept*: `resume
        # --retry-quarantined` continues from it bit-identically.
        record = RunRecord.from_quarantine(cell, campaign.budget, error,
                                           attempts)
        records[cell.index] = record
        if campaign_store is not None:
            campaign_store.write_record(record)
        if progress is not None:
            progress(_progress_message(
                cell, f"quarantined after {attempts} attempts: {error}"))

    attempts: Dict[str, int] = {}

    def _handle_retryable(cell: CampaignCell, error: BaseException,
                          requeue: Callable[[CampaignCell], None]) -> None:
        """Bump a cell's attempt count; requeue or quarantine it."""
        attempts[cell.cell_id] = attempts.get(cell.cell_id, 0) + 1
        count = attempts[cell.cell_id]
        if count >= policy.max_attempts:
            _finish_quarantine(cell, error, count)
            return
        delay = policy.delay_for(count, cell.cell_id)
        if delay > 0:
            backoff_sleep(delay)
        if progress is not None:
            progress(_progress_message(
                cell, f"retry {count + 1}/{policy.max_attempts}: {error}"))
        requeue(cell)

    jobs = resolve_jobs(jobs)

    def _payload_for(cell: CampaignCell) -> Dict[str, object]:
        return _cell_payload(cell, campaign, campaign_store, checkpoint_every,
                             attempt=attempts.get(cell.cell_id, 0),
                             fault_plan=plan_json)

    if jobs <= 1 or len(pending) <= 1:
        worker.init_campaign_worker(cache_dir)
        sink = _guard_sink(on_event)
        queue: deque = deque(pending)
        while queue:
            cell = queue.popleft()
            # Built outside the isolation block: a payload that cannot be
            # built (e.g. a pinned circuit hash no longer matching disk)
            # is a campaign-level configuration error, not a failed cell.
            payload = _payload_for(cell)
            try:
                with faults.deadline(campaign.cell_timeout, scope="cell"):
                    index, result = worker.run_campaign_cell(
                        payload, event_sink=sink)
            except _CallbackError as error:
                raise error.original
            except Exception as error:  # noqa: BLE001 - cell isolation
                if RetryPolicy.retryable(error):
                    _handle_retryable(cell, error, queue.append)
                else:
                    _finish_failure(cell, error)
            else:
                _finish(index, result)
    else:
        manager = None
        event_queue = None
        if on_event is not None:
            manager = multiprocessing.Manager()
            event_queue = manager.Queue()
        try:
            _run_parallel(
                pending, jobs, cache_dir, event_queue,
                on_event, campaign, policy,
                _payload_for, _finish, _finish_failure, _handle_retryable,
            )
        finally:
            if manager is not None:
                manager.shutdown()

    missing = [i for i, record in enumerate(records) if record is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"campaign cells {missing} produced no record")
    return records  # type: ignore[return-value]


def _run_parallel(
    pending: List[CampaignCell],
    jobs: int,
    cache_dir: Optional[str],
    event_queue: Any,
    on_event: Optional[EventCallback],
    campaign: Campaign,
    policy: RetryPolicy,
    payload_for: Callable[[CampaignCell], Dict[str, object]],
    finish: Callable[[int, OptimisationResult], None],
    finish_failure: Callable[[CampaignCell, BaseException], None],
    handle_retryable: Callable[..., None],
) -> None:
    """The supervised parallel loop: self-healing pool + deadlines.

    Submission is throttled to ``jobs`` futures in flight so every
    in-flight future corresponds to a cell actually *running* in a
    worker.  That is what makes recovery tractable: when the pool breaks
    or a deadline blows, the suspect set is exactly the in-flight cells
    — each is retried from its last checkpoint (bit-identical), and only
    cells implicated repeatedly reach quarantine.
    """
    queue: deque = deque(pending)
    in_flight: Dict[Future, Tuple[CampaignCell, float]] = {}
    # One warm pool for the whole campaign: workers keep their evaluator
    # caches and persistent-cache connection across cells, and crash
    # recovery advances the epoch instead of discarding warm state.
    warm = WarmPool(
        max_workers=min(jobs, max(1, len(pending))),
        initializer=worker.init_campaign_worker,
        initargs_for=lambda epoch: (cache_dir, event_queue, True),
    )
    crash_rebuilds = 0
    tick = 0.1 if (event_queue is not None
                   or campaign.cell_timeout is not None) else None

    def recycle_pool() -> None:
        warm.recycle()

    def crash_recovery(error: BaseException) -> None:
        """The pool died: settle finished futures, retry the suspects."""
        nonlocal crash_rebuilds
        crash_rebuilds += 1
        if crash_rebuilds > policy.max_pool_rebuilds:
            recycle_pool()
            raise PoolUnrecoverableError(
                f"campaign pool died {crash_rebuilds} times "
                f"(> {policy.max_pool_rebuilds} rebuilds): {error}"
            ) from error
        # Futures that finished before the crash carry real results —
        # settle them first so their cells are not needlessly re-run.
        suspects: List[CampaignCell] = []
        for future, (cell, _) in sorted(in_flight.items(),
                                        key=lambda kv: kv[1][0].index):
            if future.done():
                try:
                    index, result = future.result()
                except BrokenProcessPool:
                    suspects.append(cell)
                except Exception as cell_error:  # noqa: BLE001
                    if RetryPolicy.retryable(cell_error):
                        handle_retryable(cell, cell_error, queue.append)
                    else:
                        finish_failure(cell, cell_error)
                else:
                    finish(index, result)
            else:
                suspects.append(cell)
        in_flight.clear()
        recycle_pool()
        for cell in suspects:
            handle_retryable(cell, error, queue.append)

    try:
        while queue or in_flight:
            while queue and len(in_flight) < jobs:
                cell = queue.popleft()
                try:
                    future = warm.executor().submit(worker.run_campaign_cell,
                                                    payload_for(cell))
                except BrokenProcessPool as error:
                    queue.appendleft(cell)
                    crash_recovery(error)
                    continue
                in_flight[future] = (cell, time.monotonic())
            if not in_flight:
                continue
            done, _ = wait(set(in_flight), timeout=tick,
                           return_when=FIRST_COMPLETED)
            _drain_events(event_queue, on_event)
            broken: Optional[BrokenProcessPool] = None
            for future in sorted(done,
                                 key=lambda f: in_flight[f][0].index):
                cell, _ = in_flight.pop(future)
                try:
                    index, result = future.result()
                except BrokenProcessPool as error:
                    # The cell whose future broke is a crash suspect like
                    # any other in-flight cell: retry it with an attempt
                    # bump, or the same injected/systematic crash would
                    # re-fire on every resubmission.
                    broken = error
                    handle_retryable(cell, error, queue.append)
                except Exception as error:  # noqa: BLE001 - cell isolation
                    if RetryPolicy.retryable(error):
                        handle_retryable(cell, error, queue.append)
                    else:
                        finish_failure(cell, error)
                else:
                    finish(index, result)
            if broken is not None:
                crash_recovery(broken)
                continue
            if campaign.cell_timeout is not None and in_flight:
                now = time.monotonic()
                overdue = {future for future, (_, started) in in_flight.items()
                           if now - started > campaign.cell_timeout}
                if overdue:
                    # A wedged worker: kill the whole pool (executors
                    # cannot cancel a running task), blame only the
                    # overdue cells and restart the innocent ones from
                    # their checkpoints — bit-identical by the resume
                    # guarantee.  Deadline recycles are bounded by the
                    # per-cell attempt budget, so they do not count
                    # against the crash-rebuild budget.
                    victims = [(future, cell) for future, (cell, _)
                               in in_flight.items()]
                    in_flight.clear()
                    recycle_pool()
                    for future, cell in sorted(victims,
                                               key=lambda fc: fc[1].index):
                        if future in overdue:
                            handle_retryable(
                                cell,
                                DeadlineExceeded("cell",
                                                 campaign.cell_timeout),
                                queue.append)
                        else:
                            queue.append(cell)
        # Workers enqueue all of a cell's events before its future
        # resolves, so one final drain collects every straggler.
        _drain_events(event_queue, on_event)
    finally:
        warm.close(cancel_futures=True)


def resume_campaign(
    store: Union[str, CampaignStore],
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[EventCallback] = None,
    checkpoint_every: int = 1,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[Union[str, FaultPlan]] = None,
    retry_quarantined: bool = False,
    sleep: Optional[Callable[[float], None]] = None,
) -> List[RunRecord]:
    """Continue the campaign stored in a run directory.

    Loads the manifest and runs exactly the cells without a completed
    record: untouched cells start fresh, *partially finished* cells
    (mid-cell checkpoint present) continue from their checkpoint
    bit-identically, and failed cells are retried.  Quarantined cells
    are skipped unless ``retry_quarantined`` is set.  A directory whose
    every cell is complete returns immediately with the stored records.
    """
    campaign_store = store if isinstance(store, CampaignStore) else CampaignStore(store)
    campaign = campaign_store.load_campaign()
    return run_campaign(campaign, campaign_store, jobs=jobs,
                        cache_dir=cache_dir, progress=progress,
                        on_event=on_event, checkpoint_every=checkpoint_every,
                        retry=retry, fault_plan=fault_plan,
                        retry_quarantined=retry_quarantined, sleep=sleep)


def run_problem(
    problem: Problem,
    method: str = "boils",
    *,
    seed: int = 0,
    budget: int = 20,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    **overrides: object,
) -> OptimisationResult:
    """Run one optimiser on one problem — the five-line quickstart path.

    ``overrides`` are constructor keyword arguments for the chosen
    method (e.g. ``num_initial=5`` for BOiLS), applied on top of its
    registered grid defaults.
    """
    # Imported here: the runner shims import repro.api for conversions.
    from repro.engine.cache import PersistentQoRCache
    from repro.experiments.runner import make_optimiser

    problem = problem.validate()
    spec = problem.evaluator_spec()
    cache = PersistentQoRCache(cache_dir) if cache_dir else None
    try:
        evaluator = spec.build_evaluator(persistent_cache=cache)
        optimiser = make_optimiser(method, space=problem.space(), seed=seed,
                                   **overrides)
        with EvaluationEngine(spec, jobs=resolve_jobs(jobs),
                              evaluator=evaluator) as engine:
            evaluator.attach_engine(engine)
            result = optimiser.optimise(evaluator, budget=budget)
        result.circuit = spec.circuit
        return result
    finally:
        if cache is not None:
            cache.close()
