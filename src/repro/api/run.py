"""Campaign execution: ``run``, ``resume`` and the one-problem helper.

:func:`run_campaign` is the single driver behind the CLI's ``run`` /
``resume`` subcommands and the legacy grid entry points: it expands a
:class:`~repro.api.campaign.Campaign` into cells, skips any cell that
already has a completed record in the
:class:`~repro.api.store.CampaignStore`, dispatches the rest serially or
across a process pool (reusing the engine's campaign workers —
``jobs=N`` is bit-identical to ``jobs=1``), and persists each finished
cell atomically.

The execution core is *round-granular*: workers stream typed
:class:`~repro.bo.base.RunEvent` summaries back to the parent as each
ask/tell round completes (``on_event``), append per-round trajectory
JSONL to the store, and persist periodic optimiser checkpoints.  Kill
the driver at any point; running ``resume_campaign`` completes exactly
the missing cells — and continues any *partially finished* cell from
its last checkpoint, with the continued trajectory and final record
bit-identical to an uninterrupted run.  A cell whose optimiser raises
is recorded as a failed-cell :class:`~repro.api.store.RunRecord` (the
campaign keeps going); ``resume`` retries failed cells.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Union

from repro.api.campaign import Campaign, CampaignCell
from repro.api.problem import Problem
from repro.api.store import CampaignStore, RunRecord
from repro.bo.base import OptimisationResult
from repro.engine import worker
from repro.engine.engine import EvaluationEngine, resolve_jobs
from repro.engine.grid import build_cell_payload

ProgressCallback = Callable[[str], None]
#: Round-event callback: ``(cell_id, event_dict)`` for every streamed
#: :class:`repro.bo.base.RunEvent` (see ``RunEvent.to_dict``).
EventCallback = Callable[[str, Dict[str, object]], None]


def _cell_payload(
    cell: CampaignCell,
    campaign: Campaign,
    store: Optional[CampaignStore] = None,
    checkpoint_every: int = 0,
) -> Dict[str, object]:
    return build_cell_payload(
        index=cell.index,
        spec=cell.problem.evaluator_spec(),
        method_key=cell.method,
        seed=cell.seed,
        budget=campaign.budget,
        sequence_length=cell.problem.sequence_length,
        overrides=campaign.overrides_for(cell.method),
        cell_id=cell.cell_id,
        store_root=str(store.root) if store is not None else None,
        checkpoint_every=checkpoint_every if store is not None else 0,
        wall_clock_budget=campaign.wall_clock_budget,
        early_stop_improvement=campaign.early_stop_improvement,
    )


def _progress_message(cell: CampaignCell, status: str) -> str:
    return f"{cell.method} / {cell.problem.key} / seed {cell.seed} [{status}]"


class _CallbackError(Exception):
    """Wrapper distinguishing a parent-callback crash from a cell crash.

    In the serial path the user's ``on_event`` callback runs *inside*
    the cell's drive loop; without this marker a buggy callback would be
    misrecorded as a failed cell.  Wrapped errors are re-raised to the
    caller — matching the parallel path, where callbacks run in the
    parent and their exceptions abort ``run_campaign`` directly.
    """

    def __init__(self, original: BaseException) -> None:
        super().__init__(str(original))
        self.original = original


def _guard_sink(on_event: Optional[EventCallback]) -> Optional[EventCallback]:
    if on_event is None:
        return None

    def guarded(cell_id: str, event: Dict[str, object]) -> None:
        try:
            on_event(cell_id, event)
        except Exception as error:  # noqa: BLE001 - re-raised to caller
            raise _CallbackError(error) from error

    return guarded


def _drain_events(event_queue, on_event: Optional[EventCallback]) -> None:
    """Forward every queued worker event to the parent callback."""
    if event_queue is None or on_event is None:
        return
    while True:
        try:
            cell_id, event = event_queue.get_nowait()
        except queue_module.Empty:
            return
        on_event(cell_id, event)


def run_campaign(
    campaign: Campaign,
    store: Optional[Union[str, CampaignStore]] = None,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[EventCallback] = None,
    checkpoint_every: int = 1,
) -> List[RunRecord]:
    """Run (or continue) a campaign; returns records in cell order.

    Parameters
    ----------
    campaign:
        The declarative grid to run.  Validated up front so unknown
        methods/circuits/objectives fail before any compute is spent.
    store:
        Optional run directory (path or :class:`CampaignStore`).  With a
        store, completed cells are loaded from disk and skipped
        bit-identically, every fresh cell is persisted the moment it
        finishes, per-round trajectories are appended as multi-line
        JSONL, and optimiser checkpoints make *mid-cell* kill+resume
        bit-identical — this is the checkpoint/restart mechanism behind
        ``repro run`` / ``repro resume``.
    jobs:
        Worker processes for pending cells (1 = serial, 0 = all CPUs).
        Results are independent of ``jobs``.
    cache_dir:
        Optional persistent QoR cache shared across cells and runs.
    progress:
        Callback receiving one human-readable line per cell.
    on_event:
        Callback receiving ``(cell_id, event_dict)`` for every round
        event streamed from the workers — live per-round progress even
        for parallel campaigns.  Per-cell event order is preserved;
        events of concurrently running cells interleave.
    checkpoint_every:
        Checkpoint cadence in rounds (store runs only); ``0`` disables
        mid-cell checkpoints (per-round trajectories are still written).
    """
    campaign = campaign.validate().resolved()
    campaign_store: Optional[CampaignStore] = None
    if store is not None:
        campaign_store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        campaign = campaign_store.initialise(campaign)

    cells = campaign.cells()
    completed = campaign_store.completed_cell_ids() if campaign_store else set()
    records: List[Optional[RunRecord]] = [None] * len(cells)
    pending: List[CampaignCell] = []
    for cell in cells:
        if cell.cell_id in completed:
            records[cell.index] = campaign_store.read_record(cell.cell_id)
            if progress is not None:
                progress(_progress_message(cell, "cached"))
        else:
            pending.append(cell)

    cells_by_index = {cell.index: cell for cell in cells}

    def _finish(index: int, result: OptimisationResult) -> None:
        cell = cells_by_index[index]
        record = RunRecord.from_result(result, cell, campaign.budget)
        records[index] = record
        if campaign_store is not None:
            campaign_store.write_record(record)
            # Record first, checkpoint-drop second: a kill in between
            # leaves a resumable (merely redundant) checkpoint, never a
            # lost cell.
            campaign_store.clear_checkpoint(cell.cell_id)
        if progress is not None:
            progress(_progress_message(cell, "done"))

    def _finish_failure(cell: CampaignCell, error: BaseException) -> None:
        record = RunRecord.from_failure(cell, campaign.budget, error)
        records[cell.index] = record
        if campaign_store is not None:
            campaign_store.write_record(record)
        if progress is not None:
            progress(_progress_message(cell, f"failed: {error}"))

    jobs = resolve_jobs(jobs)
    payloads = [_cell_payload(cell, campaign, campaign_store, checkpoint_every)
                for cell in pending]
    if jobs <= 1 or len(payloads) <= 1:
        worker.init_campaign_worker(cache_dir)
        sink = _guard_sink(on_event)
        for payload in payloads:
            cell = cells_by_index[int(payload["index"])]  # type: ignore[arg-type]
            try:
                index, result = worker.run_campaign_cell(payload,
                                                         event_sink=sink)
            except _CallbackError as error:
                raise error.original
            except Exception as error:  # noqa: BLE001 - cell isolation
                _finish_failure(cell, error)
            else:
                _finish(index, result)
    else:
        manager = None
        event_queue = None
        if on_event is not None:
            manager = multiprocessing.Manager()
            event_queue = manager.Queue()
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(payloads)),
                initializer=worker.init_campaign_worker,
                initargs=(cache_dir, event_queue),
            ) as pool:
                futures = {pool.submit(worker.run_campaign_cell, payload): payload
                           for payload in payloads}
                waiting = set(futures)
                while waiting:
                    done, waiting = wait(
                        waiting,
                        timeout=0.1 if event_queue is not None else None,
                        return_when=FIRST_COMPLETED,
                    )
                    _drain_events(event_queue, on_event)
                    for future in done:
                        cell = cells_by_index[
                            int(futures[future]["index"])]  # type: ignore[arg-type]
                        try:
                            index, result = future.result()
                        except BrokenProcessPool:
                            # Infrastructure failure (a worker died hard),
                            # not an optimiser bug: abort instead of
                            # stamping every pending cell as failed.
                            raise
                        except Exception as error:  # noqa: BLE001 - cell isolation
                            _finish_failure(cell, error)
                        else:
                            _finish(index, result)
                # Workers enqueue all of a cell's events before its future
                # resolves, so one final drain collects every straggler.
                _drain_events(event_queue, on_event)
        finally:
            if manager is not None:
                manager.shutdown()

    missing = [i for i, record in enumerate(records) if record is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"campaign cells {missing} produced no record")
    return records  # type: ignore[return-value]


def resume_campaign(
    store: Union[str, CampaignStore],
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[EventCallback] = None,
    checkpoint_every: int = 1,
) -> List[RunRecord]:
    """Continue the campaign stored in a run directory.

    Loads the manifest and runs exactly the cells without a completed
    record: untouched cells start fresh, *partially finished* cells
    (mid-cell checkpoint present) continue from their checkpoint
    bit-identically, and failed cells are retried.  A directory whose
    every cell is complete returns immediately with the stored records.
    """
    campaign_store = store if isinstance(store, CampaignStore) else CampaignStore(store)
    campaign = campaign_store.load_campaign()
    return run_campaign(campaign, campaign_store, jobs=jobs,
                        cache_dir=cache_dir, progress=progress,
                        on_event=on_event, checkpoint_every=checkpoint_every)


def run_problem(
    problem: Problem,
    method: str = "boils",
    *,
    seed: int = 0,
    budget: int = 20,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    **overrides: object,
) -> OptimisationResult:
    """Run one optimiser on one problem — the five-line quickstart path.

    ``overrides`` are constructor keyword arguments for the chosen
    method (e.g. ``num_initial=5`` for BOiLS), applied on top of its
    registered grid defaults.
    """
    # Imported here: the runner shims import repro.api for conversions.
    from repro.engine.cache import PersistentQoRCache
    from repro.experiments.runner import make_optimiser

    problem = problem.validate()
    spec = problem.evaluator_spec()
    cache = PersistentQoRCache(cache_dir) if cache_dir else None
    try:
        evaluator = spec.build_evaluator(persistent_cache=cache)
        optimiser = make_optimiser(method, space=problem.space(), seed=seed,
                                   **overrides)
        with EvaluationEngine(spec, jobs=resolve_jobs(jobs),
                              evaluator=evaluator) as engine:
            evaluator.attach_engine(engine)
            result = optimiser.optimise(evaluator, budget=budget)
        result.circuit = spec.circuit
        return result
    finally:
        if cache is not None:
            cache.close()
