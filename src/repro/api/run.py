"""Campaign execution: ``run``, ``resume`` and the one-problem helper.

:func:`run_campaign` is the single driver behind the CLI's ``run`` /
``resume`` subcommands and the legacy grid entry points: it expands a
:class:`~repro.api.campaign.Campaign` into cells, skips any cell that
already has a record in the :class:`~repro.api.store.CampaignStore`,
dispatches the rest serially or across a process pool (reusing the
engine's grid workers — ``jobs=N`` is bit-identical to ``jobs=1``), and
persists each finished cell atomically.  Kill it at any point; running
it again completes exactly the missing cells and returns the same grid
an uninterrupted run would have produced.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional, Union

from repro.api.campaign import Campaign, CampaignCell
from repro.api.problem import Problem
from repro.api.store import CampaignStore, RunRecord
from repro.bo.base import OptimisationResult
from repro.engine import worker
from repro.engine.engine import EvaluationEngine, resolve_jobs

ProgressCallback = Callable[[str], None]


def _cell_payload(cell: CampaignCell, campaign: Campaign) -> Dict[str, object]:
    return {
        "index": cell.index,
        "cell_id": cell.cell_id,
        "spec": cell.problem.evaluator_spec().to_payload(),
        "method_key": cell.method,
        "seed": cell.seed,
        "budget": campaign.budget,
        "sequence_length": cell.problem.sequence_length,
        "overrides": campaign.overrides_for(cell.method),
    }


def _progress_message(cell: CampaignCell, status: str) -> str:
    return f"{cell.method} / {cell.problem.key} / seed {cell.seed} [{status}]"


def run_campaign(
    campaign: Campaign,
    store: Optional[Union[str, CampaignStore]] = None,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[RunRecord]:
    """Run (or continue) a campaign; returns records in cell order.

    Parameters
    ----------
    campaign:
        The declarative grid to run.  Validated up front so unknown
        methods/circuits/objectives fail before any compute is spent.
    store:
        Optional run directory (path or :class:`CampaignStore`).  With a
        store, completed cells are loaded from disk and skipped
        bit-identically, and every fresh cell is persisted the moment it
        finishes — this is the checkpoint/restart mechanism behind
        ``repro run`` / ``repro resume``.
    jobs:
        Worker processes for pending cells (1 = serial, 0 = all CPUs).
        Results are independent of ``jobs``.
    cache_dir:
        Optional persistent QoR cache shared across cells and runs.
    progress:
        Callback receiving one human-readable line per cell.
    """
    campaign = campaign.validate().resolved()
    campaign_store: Optional[CampaignStore] = None
    if store is not None:
        campaign_store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        campaign = campaign_store.initialise(campaign)

    cells = campaign.cells()
    completed = campaign_store.completed_cell_ids() if campaign_store else set()
    records: List[Optional[RunRecord]] = [None] * len(cells)
    pending: List[CampaignCell] = []
    for cell in cells:
        if cell.cell_id in completed:
            records[cell.index] = campaign_store.read_record(cell.cell_id)
            if progress is not None:
                progress(_progress_message(cell, "cached"))
        else:
            pending.append(cell)

    cells_by_index = {cell.index: cell for cell in cells}

    def _finish(index: int, result: OptimisationResult) -> None:
        cell = cells_by_index[index]
        record = RunRecord.from_result(result, cell, campaign.budget)
        records[index] = record
        if campaign_store is not None:
            campaign_store.write_record(record)
        if progress is not None:
            progress(_progress_message(cell, "done"))

    jobs = resolve_jobs(jobs)
    payloads = [_cell_payload(cell, campaign) for cell in pending]
    if jobs <= 1 or len(payloads) <= 1:
        worker.init_grid_worker(cache_dir)
        for payload in payloads:
            index, result = worker.run_grid_cell(payload)
            _finish(index, result)
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(payloads)),
            initializer=worker.init_grid_worker,
            initargs=(cache_dir,),
        ) as pool:
            futures = [pool.submit(worker.run_grid_cell, payload)
                       for payload in payloads]
            for future in as_completed(futures):
                index, result = future.result()
                _finish(index, result)

    missing = [i for i, record in enumerate(records) if record is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"campaign cells {missing} produced no record")
    return records  # type: ignore[return-value]


def resume_campaign(
    store: Union[str, CampaignStore],
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[RunRecord]:
    """Continue the campaign stored in a run directory.

    Loads the manifest, runs exactly the cells that have no record yet
    and returns the full grid.  A directory whose every cell is complete
    returns immediately with the stored records.
    """
    campaign_store = store if isinstance(store, CampaignStore) else CampaignStore(store)
    campaign = campaign_store.load_campaign()
    return run_campaign(campaign, campaign_store, jobs=jobs,
                        cache_dir=cache_dir, progress=progress)


def run_problem(
    problem: Problem,
    method: str = "boils",
    *,
    seed: int = 0,
    budget: int = 20,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    **overrides: object,
) -> OptimisationResult:
    """Run one optimiser on one problem — the five-line quickstart path.

    ``overrides`` are constructor keyword arguments for the chosen
    method (e.g. ``num_initial=5`` for BOiLS), applied on top of its
    registered grid defaults.
    """
    # Imported here: the runner shims import repro.api for conversions.
    from repro.engine.cache import PersistentQoRCache
    from repro.experiments.runner import make_optimiser

    problem = problem.validate()
    spec = problem.evaluator_spec()
    cache = PersistentQoRCache(cache_dir) if cache_dir else None
    try:
        evaluator = spec.build_evaluator(persistent_cache=cache)
        optimiser = make_optimiser(method, space=problem.space(), seed=seed,
                                   **overrides)
        with EvaluationEngine(spec, jobs=resolve_jobs(jobs),
                              evaluator=evaluator) as engine:
            evaluator.attach_engine(engine)
            result = optimiser.optimise(evaluator, budget=budget)
        result.circuit = spec.circuit
        return result
    finally:
        if cache is not None:
            cache.close()
