"""Resumable run directories: manifest, per-cell records, trajectories.

A :class:`CampaignStore` is a plain directory::

    <root>/
      manifest.json              # the (resolved) campaign + format version
      cells/
        <cell_id>.jsonl          # final RunRecord, one line (status ok/failed)
      trajectories/
        <cell_id>.jsonl          # one line per ask/tell round (multi-line)
      checkpoints/
        <cell_id>.json           # latest mid-cell optimiser checkpoint

Final records and checkpoints are written atomically (temp file +
``os.replace``), so a killed run leaves either a complete file or none —
never a torn one; trajectory files are append-per-round, and resume
truncates them back to the checkpointed round before continuing (the
re-emitted rounds are bit-identical, so the final file matches an
uninterrupted run byte for byte).  On resume, cells with an ``ok``
record are loaded verbatim and skipped; cells with a checkpoint but no
``ok`` record (killed or failed mid-cell) restart *from the checkpoint*
rather than from scratch.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.api.campaign import Campaign, CampaignCell, CAMPAIGN_FORMAT_VERSION
from repro.bo.base import OptimisationResult
from repro.qor.evaluator import SequenceEvaluation
from repro.qor.objectives import canonical_spec_string

#: Mid-cell checkpoint schema version, bumped on incompatible changes.
CHECKPOINT_FORMAT_VERSION = 1


def evaluation_to_dict(record: SequenceEvaluation) -> Dict[str, object]:
    """JSON-exact payload of one black-box evaluation record."""
    return {
        "sequence": list(record.sequence),
        "area": int(record.area),
        "delay": int(record.delay),
        "qor": record.qor,
        "qor_improvement": record.qor_improvement,
    }


def evaluation_from_dict(payload: Dict[str, object]) -> SequenceEvaluation:
    """Rebuild a :class:`SequenceEvaluation` from :func:`evaluation_to_dict`."""
    return SequenceEvaluation(
        sequence=tuple(str(op) for op in payload["sequence"]),  # type: ignore[union-attr]
        area=int(payload["area"]),  # type: ignore[arg-type]
        delay=int(payload["delay"]),  # type: ignore[arg-type]
        qor=float(payload["qor"]),  # type: ignore[arg-type]
        qor_improvement=float(payload["qor_improvement"]),  # type: ignore[arg-type]
    )


def _jsonify(value: object) -> object:
    """Recursively convert a value into plain JSON-serialisable types.

    Run metadata routinely contains numpy scalars and arrays (kernel
    hyperparameters, episode returns); those become native ints, floats
    and lists.  Python floats survive JSON bit-exactly (``repr`` is the
    shortest round-trip representation), which is what makes stored
    histories comparable with ``==`` on resume.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(item) for item in value]
    return repr(value)


@dataclass
class RunRecord:
    """The persisted outcome of one campaign cell.

    A JSON-serialisable superset of :class:`OptimisationResult`: the full
    result payload (including optimiser-specific :attr:`metadata`) plus
    the cell identity and objective it was produced under.

    :attr:`status` is ``"ok"`` for a completed cell, ``"failed"`` for a
    cell whose optimiser raised (the error text lives in
    ``metadata["error"]``) and ``"quarantined"`` for a cell the driver
    gave up on after exhausting its retry budget (transient-looking
    faults — deadline blowouts, worker crashes — that kept recurring).
    Failed records keep the campaign running and are *retried* — not
    skipped — by ``resume_campaign``; quarantined records are *skipped*
    on resume (opt back in with ``retry_quarantined``) and carry the
    reproducing ``(circuit_hash, sequence, seed)`` in
    ``metadata["quarantine"]``.
    """

    cell_id: str
    problem_key: str
    method: str
    method_display: str
    circuit: str
    seed: int
    budget: int
    objective: str
    best_sequence: Tuple[str, ...]
    best_qor: float
    best_improvement: float
    best_area: int
    best_delay: int
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    best_trajectory: List[float] = field(default_factory=list)
    evaluated_points: List[Tuple[int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def quarantined(self) -> bool:
        return self.status == "quarantined"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: OptimisationResult,
        cell: CampaignCell,
        budget: int,
    ) -> "RunRecord":
        return cls(
            cell_id=cell.cell_id,
            problem_key=cell.problem.key,
            method=cell.method,
            method_display=result.method,
            circuit=result.circuit,
            seed=result.seed,
            budget=budget,
            objective=canonical_spec_string(cell.problem.objective),
            best_sequence=tuple(result.best_sequence),
            best_qor=result.best_qor,
            best_improvement=result.best_improvement,
            best_area=result.best_area,
            best_delay=result.best_delay,
            num_evaluations=result.num_evaluations,
            history=list(result.history),
            best_trajectory=list(result.best_trajectory),
            evaluated_points=[(int(a), int(d)) for a, d in result.evaluated_points],
            metadata=dict(result.metadata),
        )

    @classmethod
    def from_failure(
        cls,
        cell: CampaignCell,
        budget: int,
        error: BaseException,
    ) -> "RunRecord":
        """Sentinel record for a cell whose optimiser raised.

        Numeric fields are zeroed sentinels — the record exists to keep
        the grid position filled and the error visible, never to feed a
        table (table builders must filter on :attr:`failed`).
        """
        return cls(
            cell_id=cell.cell_id,
            problem_key=cell.problem.key,
            method=cell.method,
            method_display=cell.method,
            circuit=cell.problem.circuit,
            seed=cell.seed,
            budget=budget,
            objective=canonical_spec_string(cell.problem.objective),
            best_sequence=(),
            best_qor=0.0,
            best_improvement=0.0,
            best_area=0,
            best_delay=0,
            num_evaluations=0,
            metadata={"error": f"{type(error).__name__}: {error}"},
            status="failed",
        )

    @classmethod
    def from_quarantine(
        cls,
        cell: CampaignCell,
        budget: int,
        error: BaseException,
        attempts: int,
    ) -> "RunRecord":
        """Sentinel record for a cell retired after exhausting retries.

        Besides the error text, the metadata carries the reproducing
        triple — circuit hash, offending sequence (when a deadline or
        poison error identified one) and seed — so the input can be
        replayed in isolation.
        """
        record = cls.from_failure(cell, budget, error)
        sequence = getattr(error, "sequence", None)
        return dataclasses.replace(
            record,
            status="quarantined",
            metadata={
                "error": f"{type(error).__name__}: {error}",
                "attempts": int(attempts),
                "quarantine": {
                    "circuit_hash": cell.problem.circuit_hash,
                    "sequence": list(sequence) if sequence else None,
                    "seed": cell.seed,
                },
            },
        )

    def to_result(self) -> OptimisationResult:
        """The equivalent :class:`OptimisationResult` (for tables/figures)."""
        return OptimisationResult(
            method=self.method_display,
            circuit=self.circuit,
            seed=self.seed,
            best_sequence=tuple(self.best_sequence),
            best_qor=self.best_qor,
            best_improvement=self.best_improvement,
            best_area=self.best_area,
            best_delay=self.best_delay,
            num_evaluations=self.num_evaluations,
            history=list(self.history),
            best_trajectory=list(self.best_trajectory),
            evaluated_points=[tuple(point) for point in self.evaluated_points],
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["best_sequence"] = list(self.best_sequence)
        payload["evaluated_points"] = [list(point) for point in self.evaluated_points]
        payload["metadata"] = _jsonify(self.metadata)
        payload["status"] = self.status
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        return cls(
            cell_id=str(payload["cell_id"]),
            problem_key=str(payload["problem_key"]),
            method=str(payload["method"]),
            method_display=str(payload.get("method_display", payload["method"])),
            circuit=str(payload["circuit"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            budget=int(payload["budget"]),  # type: ignore[arg-type]
            objective=str(payload.get("objective", "eq1")),
            best_sequence=tuple(payload.get("best_sequence", ())),  # type: ignore[arg-type]
            best_qor=float(payload["best_qor"]),  # type: ignore[arg-type]
            best_improvement=float(payload["best_improvement"]),  # type: ignore[arg-type]
            best_area=int(payload["best_area"]),  # type: ignore[arg-type]
            best_delay=int(payload["best_delay"]),  # type: ignore[arg-type]
            num_evaluations=int(payload["num_evaluations"]),  # type: ignore[arg-type]
            history=list(payload.get("history", [])),  # type: ignore[arg-type]
            best_trajectory=list(payload.get("best_trajectory", [])),  # type: ignore[arg-type]
            evaluated_points=[(int(a), int(d))
                              for a, d in payload.get("evaluated_points", [])],  # type: ignore[union-attr]
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
            status=str(payload.get("status", "ok")),
        )


class StoreError(RuntimeError):
    """A run directory is missing, torn, or belongs to another campaign."""


class CampaignStore:
    """A campaign run directory with checkpoint/restart semantics."""

    MANIFEST_NAME = "manifest.json"
    CELLS_DIR = "cells"
    TRAJECTORIES_DIR = "trajectories"
    CHECKPOINTS_DIR = "checkpoints"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    @property
    def cells_dir(self) -> Path:
        return self.root / self.CELLS_DIR

    @property
    def trajectories_dir(self) -> Path:
        return self.root / self.TRAJECTORIES_DIR

    @property
    def checkpoints_dir(self) -> Path:
        return self.root / self.CHECKPOINTS_DIR

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    # ------------------------------------------------------------------
    def initialise(self, campaign: Campaign) -> Campaign:
        """Create (or re-open) the run directory for ``campaign``.

        The manifest stores the *resolved* campaign — circuit widths
        pinned — so resuming under a different environment still
        rebuilds identical circuits.  Re-opening with a different
        campaign raises :class:`StoreError` rather than silently mixing
        two grids in one directory.
        """
        resolved = campaign.resolved()
        if self.exists():
            existing = self.load_campaign()
            if existing.to_dict() != resolved.to_dict():
                raise StoreError(
                    f"run directory {self.root} already holds campaign "
                    f"{existing.name!r} with a different configuration; "
                    "use a fresh directory (or `repro resume` to continue it)"
                )
            return existing
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "campaign": resolved.to_dict(),
        }
        self._atomic_write(self.manifest_path,
                           json.dumps(manifest, indent=2, allow_nan=False) + "\n")
        return resolved

    def load_campaign(self) -> Campaign:
        if not self.exists():
            raise StoreError(f"no campaign manifest in {self.root}")
        payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        return Campaign.from_dict(payload["campaign"])

    # ------------------------------------------------------------------
    # Cell records
    # ------------------------------------------------------------------
    def cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{cell_id}.jsonl"

    def _record_status(self, path: Path) -> Optional[str]:
        """Status of the record at ``path``, ``None`` if torn/unreadable."""
        try:
            lines = [line for line in
                     path.read_text(encoding="utf-8").splitlines() if line.strip()]
            if not lines:
                return None
            return str(json.loads(lines[-1]).get("status", "ok"))
        except (OSError, ValueError):
            return None

    def record_status(self, cell_id: str) -> Optional[str]:
        """Status of one cell's final record, ``None`` if absent/torn.

        A torn record (interrupted write, truncated file, invalid JSON)
        reads as ``None`` — the cell counts as never finished, so resume
        re-runs it instead of trusting half a record.
        """
        return self._record_status(self.cell_path(cell_id))

    def cell_statuses(self) -> Dict[str, str]:
        """One-scan status map over every cell the store knows about.

        Values: ``"ok"`` / ``"failed"`` / ``"quarantined"`` from the
        final records, plus ``"partial"`` for cells that only have a
        mid-run checkpoint.  Derived sets (:meth:`completed_cell_ids` &
        co.) are views over this map; callers polling repeatedly
        (``show --follow``) should call this once per tick instead of
        stacking the set queries.
        """
        statuses: Dict[str, str] = {}
        if self.cells_dir.is_dir():
            for path in self.cells_dir.glob("*.jsonl"):
                status = self._record_status(path)
                if status in ("ok", "failed", "quarantined"):
                    statuses[path.stem] = status
        if self.checkpoints_dir.is_dir():
            for path in self.checkpoints_dir.glob("*.json"):
                if statuses.get(path.stem) != "ok":
                    statuses.setdefault(path.stem, "partial")
        return statuses

    def completed_cell_ids(self) -> Set[str]:
        """Cells with an ``ok`` final record (failed cells are retried)."""
        return {cell_id for cell_id, status in self.cell_statuses().items()
                if status == "ok"}

    def failed_cell_ids(self) -> Set[str]:
        """Cells whose last attempt raised (see :meth:`RunRecord.from_failure`)."""
        return {cell_id for cell_id, status in self.cell_statuses().items()
                if status == "failed"}

    def quarantined_cell_ids(self) -> Set[str]:
        """Cells retired after exhausting their retry budget.

        Skipped by resume (unlike failed cells) until the operator opts
        back in with ``retry_quarantined``; the reproducing input lives
        in the record's ``metadata["quarantine"]``.
        """
        return {cell_id for cell_id, status in self.cell_statuses().items()
                if status == "quarantined"}

    def partial_cell_ids(self) -> Set[str]:
        """Cells with a mid-run checkpoint but no final record at all.

        A *failed* cell that also has a checkpoint reports as
        ``"failed"``, not partial — though resume still continues it
        from the checkpoint rather than from scratch.
        """
        return {cell_id for cell_id, status in self.cell_statuses().items()
                if status == "partial"}

    def write_record(self, record: RunRecord) -> Path:
        """Atomically persist one cell's record (complete-or-absent)."""
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        path = self.cell_path(record.cell_id)
        self._atomic_write(path, json.dumps(record.to_dict(), allow_nan=False) + "\n")
        return path

    def read_record(self, cell_id: str) -> RunRecord:
        path = self.cell_path(cell_id)
        try:
            lines = [line for line in
                     path.read_text(encoding="utf-8").splitlines() if line.strip()]
            if not lines:
                raise ValueError("empty record file")
            return RunRecord.from_dict(json.loads(lines[-1]))
        except (OSError, ValueError) as error:
            raise StoreError(f"cannot read cell record {path}: {error}") from error

    def load_records(
        self, cells: Optional[Sequence[CampaignCell]] = None
    ) -> List[RunRecord]:
        """Records for ``cells`` (campaign order) or every stored cell."""
        if cells is not None:
            return [self.read_record(cell.cell_id) for cell in cells
                    if self.cell_path(cell.cell_id).is_file()]
        return [self.read_record(path.stem)
                for path in sorted(self.cells_dir.glob("*.jsonl"))]

    # ------------------------------------------------------------------
    # Per-round trajectories (true multi-line JSONL, append-per-round)
    # ------------------------------------------------------------------
    def trajectory_path(self, cell_id: str) -> Path:
        return self.trajectories_dir / f"{cell_id}.jsonl"

    def append_trajectory(self, cell_id: str, payload: Dict[str, object]) -> None:
        """Append one round's line to the cell's trajectory JSONL.

        Lines are rendered with sorted keys so two byte-identical runs
        produce byte-identical trajectory files — the property the
        resume suite compares directly.
        """
        self.trajectories_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(payload, sort_keys=True, allow_nan=False) + "\n"
        with open(self.trajectory_path(cell_id), "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()

    def _complete_trajectory_lines(self, cell_id: str) -> List[str]:
        """Raw complete lines of the trajectory file, torn tail dropped.

        ``append_trajectory`` is a plain append, so a kill mid-write can
        leave a partial final line.  The single sequential writer means
        only the *last* line can ever be torn — and it is always beyond
        the last checkpoint (the round's checkpoint is written after its
        trajectory line), so dropping it loses nothing a resume needs.
        """
        path = self.trajectory_path(cell_id)
        if not path.is_file():
            return []
        text = path.read_text(encoding="utf-8")
        # Everything after the last newline is a torn partial line (or
        # empty); only the newline-terminated prefix is trusted.
        complete, _, _torn = text.rpartition("\n")
        return [line for line in complete.split("\n") if line.strip()]

    def read_trajectory(self, cell_id: str) -> List[Dict[str, object]]:
        """All persisted rounds of a cell, in round order (may be empty).

        Tolerates a torn trailing line (see
        :meth:`_complete_trajectory_lines`); corruption anywhere earlier
        raises :class:`StoreError`.
        """
        rounds: List[Dict[str, object]] = []
        for line in self._complete_trajectory_lines(cell_id):
            try:
                rounds.append(json.loads(line))
            except ValueError as error:
                raise StoreError(
                    f"corrupt trajectory line for cell {cell_id!r} "
                    f"(round {len(rounds) + 1}): {error}") from error
        return rounds

    def trajectory_round_count(self, cell_id: str) -> int:
        """Rounds persisted so far — the live-progress probe ``--follow`` polls."""
        return len(self._complete_trajectory_lines(cell_id))

    def truncate_trajectory(self, cell_id: str, rounds: int) -> None:
        """Keep only the first ``rounds`` lines (resume-from-checkpoint).

        A kill can land between a trajectory append and the next
        checkpoint write — possibly mid-append, tearing the final line;
        resuming from the checkpoint at round *r* first discards any
        (complete or torn) content past *r*, then re-emits it
        bit-identically as the rounds re-run.  Kept lines are copied
        verbatim, so no re-serialisation can perturb them.
        """
        lines = self._complete_trajectory_lines(cell_id)[:max(0, rounds)]
        text = "".join(line + "\n" for line in lines)
        self.trajectories_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.trajectory_path(cell_id), text)

    def reset_trajectory(self, cell_id: str) -> None:
        """Drop a stale trajectory (fresh attempt with no usable checkpoint)."""
        try:
            os.unlink(self.trajectory_path(cell_id))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Mid-cell optimiser checkpoints
    # ------------------------------------------------------------------
    def checkpoint_path(self, cell_id: str) -> Path:
        return self.checkpoints_dir / f"{cell_id}.json"

    def write_checkpoint(self, cell_id: str, payload: Dict[str, object]) -> Path:
        """Atomically persist the cell's latest checkpoint (replaces prior)."""
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)
        path = self.checkpoint_path(cell_id)
        body = dict(payload)
        body.setdefault("format_version", CHECKPOINT_FORMAT_VERSION)
        body.setdefault("cell_id", cell_id)
        self._atomic_write(path, json.dumps(body, sort_keys=True, allow_nan=False) + "\n",
                           durable=False)
        return path

    def read_checkpoint(self, cell_id: str) -> Optional[Dict[str, object]]:
        """The cell's latest checkpoint, or ``None`` when absent/unusable."""
        path = self.checkpoint_path(cell_id)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        version = int(payload.get("format_version", CHECKPOINT_FORMAT_VERSION))
        if version > CHECKPOINT_FORMAT_VERSION:
            raise StoreError(
                f"checkpoint {path} has format version {version}, newer than "
                f"this repro build supports ({CHECKPOINT_FORMAT_VERSION})")
        return payload

    def clear_checkpoint(self, cell_id: str) -> None:
        """Remove the checkpoint once the cell's final record is written."""
        try:
            os.unlink(self.checkpoint_path(cell_id))
        except OSError:
            pass

    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, text: str, durable: bool = True) -> None:
        """Complete-or-absent file replacement.

        ``durable=True`` additionally fsyncs before the rename —
        required for files written once whose loss would corrupt the
        store (manifest, final records).  High-frequency files that are
        rewritten every round (checkpoints) pass ``durable=False``: the
        rename is still atomic, which is all that process-kill
        resilience needs, and skipping the per-round fsync keeps the
        round-granular machinery's overhead negligible (a stale-by-one
        checkpoint after a power loss merely replays one extra round).
        """
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=str(path.parent),
            prefix=f".{path.name}.", suffix=".tmp", delete=False,
        )
        try:
            with handle:
                handle.write(text)
                handle.flush()
                if durable:
                    os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
