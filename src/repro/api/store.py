"""Resumable run directories: manifest + per-cell JSONL run records.

A :class:`CampaignStore` is a plain directory::

    <root>/
      manifest.json            # the (resolved) campaign + format version
      cells/
        <cell_id>.jsonl        # one RunRecord per line (currently one)

Records are written atomically (temp file + ``os.replace``), so a killed
run leaves either a complete cell file or none — never a torn one.  On
resume, cells with a record on disk are loaded verbatim and skipped;
because every cell is deterministically seeded and starts from fresh
evaluator state, the merged result grid is bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.api.campaign import Campaign, CampaignCell, CAMPAIGN_FORMAT_VERSION
from repro.bo.base import OptimisationResult
from repro.qor.objectives import canonical_spec_string


def _jsonify(value: object) -> object:
    """Recursively convert a value into plain JSON-serialisable types.

    Run metadata routinely contains numpy scalars and arrays (kernel
    hyperparameters, episode returns); those become native ints, floats
    and lists.  Python floats survive JSON bit-exactly (``repr`` is the
    shortest round-trip representation), which is what makes stored
    histories comparable with ``==`` on resume.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(item) for item in value]
    return repr(value)


@dataclass
class RunRecord:
    """The persisted outcome of one campaign cell.

    A JSON-serialisable superset of :class:`OptimisationResult`: the full
    result payload (including optimiser-specific :attr:`metadata`) plus
    the cell identity and objective it was produced under.
    """

    cell_id: str
    problem_key: str
    method: str
    method_display: str
    circuit: str
    seed: int
    budget: int
    objective: str
    best_sequence: Tuple[str, ...]
    best_qor: float
    best_improvement: float
    best_area: int
    best_delay: int
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    best_trajectory: List[float] = field(default_factory=list)
    evaluated_points: List[Tuple[int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: OptimisationResult,
        cell: CampaignCell,
        budget: int,
    ) -> "RunRecord":
        return cls(
            cell_id=cell.cell_id,
            problem_key=cell.problem.key,
            method=cell.method,
            method_display=result.method,
            circuit=result.circuit,
            seed=result.seed,
            budget=budget,
            objective=canonical_spec_string(cell.problem.objective),
            best_sequence=tuple(result.best_sequence),
            best_qor=result.best_qor,
            best_improvement=result.best_improvement,
            best_area=result.best_area,
            best_delay=result.best_delay,
            num_evaluations=result.num_evaluations,
            history=list(result.history),
            best_trajectory=list(result.best_trajectory),
            evaluated_points=[(int(a), int(d)) for a, d in result.evaluated_points],
            metadata=dict(result.metadata),
        )

    def to_result(self) -> OptimisationResult:
        """The equivalent :class:`OptimisationResult` (for tables/figures)."""
        return OptimisationResult(
            method=self.method_display,
            circuit=self.circuit,
            seed=self.seed,
            best_sequence=tuple(self.best_sequence),
            best_qor=self.best_qor,
            best_improvement=self.best_improvement,
            best_area=self.best_area,
            best_delay=self.best_delay,
            num_evaluations=self.num_evaluations,
            history=list(self.history),
            best_trajectory=list(self.best_trajectory),
            evaluated_points=[tuple(point) for point in self.evaluated_points],
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["best_sequence"] = list(self.best_sequence)
        payload["evaluated_points"] = [list(point) for point in self.evaluated_points]
        payload["metadata"] = _jsonify(self.metadata)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        return cls(
            cell_id=str(payload["cell_id"]),
            problem_key=str(payload["problem_key"]),
            method=str(payload["method"]),
            method_display=str(payload.get("method_display", payload["method"])),
            circuit=str(payload["circuit"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            budget=int(payload["budget"]),  # type: ignore[arg-type]
            objective=str(payload.get("objective", "eq1")),
            best_sequence=tuple(payload.get("best_sequence", ())),  # type: ignore[arg-type]
            best_qor=float(payload["best_qor"]),  # type: ignore[arg-type]
            best_improvement=float(payload["best_improvement"]),  # type: ignore[arg-type]
            best_area=int(payload["best_area"]),  # type: ignore[arg-type]
            best_delay=int(payload["best_delay"]),  # type: ignore[arg-type]
            num_evaluations=int(payload["num_evaluations"]),  # type: ignore[arg-type]
            history=list(payload.get("history", [])),  # type: ignore[arg-type]
            best_trajectory=list(payload.get("best_trajectory", [])),  # type: ignore[arg-type]
            evaluated_points=[(int(a), int(d))
                              for a, d in payload.get("evaluated_points", [])],  # type: ignore[union-attr]
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )


class StoreError(RuntimeError):
    """A run directory is missing, torn, or belongs to another campaign."""


class CampaignStore:
    """A campaign run directory with checkpoint/restart semantics."""

    MANIFEST_NAME = "manifest.json"
    CELLS_DIR = "cells"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    @property
    def cells_dir(self) -> Path:
        return self.root / self.CELLS_DIR

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    # ------------------------------------------------------------------
    def initialise(self, campaign: Campaign) -> Campaign:
        """Create (or re-open) the run directory for ``campaign``.

        The manifest stores the *resolved* campaign — circuit widths
        pinned — so resuming under a different environment still
        rebuilds identical circuits.  Re-opening with a different
        campaign raises :class:`StoreError` rather than silently mixing
        two grids in one directory.
        """
        resolved = campaign.resolved()
        if self.exists():
            existing = self.load_campaign()
            if existing.to_dict() != resolved.to_dict():
                raise StoreError(
                    f"run directory {self.root} already holds campaign "
                    f"{existing.name!r} with a different configuration; "
                    "use a fresh directory (or `repro resume` to continue it)"
                )
            return existing
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "campaign": resolved.to_dict(),
        }
        self._atomic_write(self.manifest_path,
                           json.dumps(manifest, indent=2) + "\n")
        return resolved

    def load_campaign(self) -> Campaign:
        if not self.exists():
            raise StoreError(f"no campaign manifest in {self.root}")
        payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        return Campaign.from_dict(payload["campaign"])

    # ------------------------------------------------------------------
    # Cell records
    # ------------------------------------------------------------------
    def cell_path(self, cell_id: str) -> Path:
        return self.cells_dir / f"{cell_id}.jsonl"

    def completed_cell_ids(self) -> Set[str]:
        if not self.cells_dir.is_dir():
            return set()
        return {path.stem for path in self.cells_dir.glob("*.jsonl")}

    def write_record(self, record: RunRecord) -> Path:
        """Atomically persist one cell's record (complete-or-absent)."""
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        path = self.cell_path(record.cell_id)
        self._atomic_write(path, json.dumps(record.to_dict()) + "\n")
        return path

    def read_record(self, cell_id: str) -> RunRecord:
        path = self.cell_path(cell_id)
        try:
            lines = [line for line in
                     path.read_text(encoding="utf-8").splitlines() if line.strip()]
            if not lines:
                raise ValueError("empty record file")
            return RunRecord.from_dict(json.loads(lines[-1]))
        except (OSError, ValueError) as error:
            raise StoreError(f"cannot read cell record {path}: {error}") from error

    def load_records(
        self, cells: Optional[Sequence[CampaignCell]] = None
    ) -> List[RunRecord]:
        """Records for ``cells`` (campaign order) or every stored cell."""
        if cells is not None:
            return [self.read_record(cell.cell_id) for cell in cells
                    if self.cell_path(cell.cell_id).is_file()]
        return [self.read_record(path.stem)
                for path in sorted(self.cells_dir.glob("*.jsonl"))]

    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=str(path.parent),
            prefix=f".{path.name}.", suffix=".tmp", delete=False,
        )
        try:
            with handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
