"""``repro.api`` — the declarative public surface of the reproduction.

Five-line quickstart::

    from repro.api import Problem, run_problem

    result = run_problem(Problem("adder", sequence_length=8), "boils",
                         budget=20)
    print(result.best_improvement)

Campaigns (grids of problems × methods × seeds) with resumable run
directories::

    from repro.api import Campaign, Problem, run_campaign

    campaign = Campaign(
        problems=(Problem("adder"), Problem("sqrt", objective="area")),
        methods=("boils", "rs"), seeds=(0, 1, 2), budget=50,
    )
    records = run_campaign(campaign, store="runs/demo", jobs=4)
    # kill it at any point, then:  resume_campaign("runs/demo", jobs=4)

Everything named by string — methods, circuits, objectives — resolves
through the :mod:`repro.registry` registries, so third-party extensions
plug in via decorator or entry point without touching ``repro``
internals.  The optimisation loop itself is the ask/tell
:func:`repro.bo.base.drive` driver, re-exported here together with its
callback types.
"""

from repro.api.campaign import Campaign, CampaignCell, env_int
from repro.api.problem import Problem, objective_slug
from repro.api.run import resume_campaign, run_campaign, run_problem
from repro.api.store import CampaignStore, RunRecord, StoreError
from repro.engine.faults import (
    DeadlineExceeded,
    EngineFaultError,
    FaultEvent,
    FaultPlan,
    PoisonInputError,
    PoolUnrecoverableError,
    RetryPolicy,
)
from repro.bo.base import (
    BudgetExhausted,
    DriveProgress,
    EarlyStopped,
    IncumbentImproved,
    OptimisationResult,
    RoundCompleted,
    RoundStarted,
    RunEvent,
    SequenceOptimiser,
    drive,
)
from repro.qor.objectives import (
    Objective,
    parse_objective_argument,
    resolve_objective,
)
from repro.registry import (
    CIRCUITS,
    OBJECTIVES,
    OPTIMISERS,
    MethodSpec,
    Registry,
    RegistryError,
    register_objective,
    register_optimiser,
)
from repro.circuits.registry import register_circuit

__all__ = [
    "BudgetExhausted",
    "Campaign",
    "CampaignCell",
    "CampaignStore",
    "DeadlineExceeded",
    "DriveProgress",
    "EarlyStopped",
    "EngineFaultError",
    "FaultEvent",
    "FaultPlan",
    "IncumbentImproved",
    "PoisonInputError",
    "PoolUnrecoverableError",
    "RetryPolicy",
    "RoundCompleted",
    "RoundStarted",
    "RunEvent",
    "MethodSpec",
    "Objective",
    "OptimisationResult",
    "Problem",
    "Registry",
    "RegistryError",
    "RunRecord",
    "SequenceOptimiser",
    "StoreError",
    "CIRCUITS",
    "OBJECTIVES",
    "OPTIMISERS",
    "drive",
    "env_int",
    "objective_slug",
    "parse_objective_argument",
    "register_circuit",
    "register_objective",
    "register_optimiser",
    "resolve_objective",
    "resume_campaign",
    "run_campaign",
    "run_problem",
]
