"""Functionally-reduced AIG construction (ABC ``fraig`` analogue).

``fraig`` detects functionally equivalent nodes across the whole network
and merges them.  The original uses simulation to form candidate
equivalence classes and SAT to prove them; this reproduction uses the same
simulation front-end, then proves candidates exactly when their combined
support is small enough for truth tables and otherwise confirms them with
a second, independent batch of random patterns (a standard SAT-free
fallback; the probability of accepting a wrong merge falls off as
``2^-patterns``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.aig.graph import AIG, Literal, lit_not, lit_var
from repro.aig.simulation import node_signatures
from repro.aig.cuts import Cut, cut_truth_table
from repro.aig import truth


def fraig(
    aig: AIG,
    num_sim_words: int = 8,
    confirm_words: int = 16,
    exact_support_limit: int = 12,
    rng: Optional[np.random.Generator] = None,
) -> AIG:
    """Merge functionally equivalent (and antivalent) nodes.

    Parameters
    ----------
    num_sim_words:
        Words of random simulation used to build candidate classes.
    confirm_words:
        Extra confirmation patterns for candidates whose support is too
        wide for exact truth-table proof.
    exact_support_limit:
        Maximum combined support size for which equivalence is proved
        exactly by truth tables.
    """
    if aig.num_ands == 0:
        return aig.copy()
    rng = rng if rng is not None else np.random.default_rng(29)
    patterns = rng.integers(
        0, np.iinfo(np.uint64).max, size=(aig.num_pis, num_sim_words),
        dtype=np.uint64, endpoint=True,
    )
    signatures = node_signatures(aig, patterns)
    confirm_patterns = rng.integers(
        0, np.iinfo(np.uint64).max, size=(aig.num_pis, confirm_words),
        dtype=np.uint64, endpoint=True,
    )
    confirm_sigs = node_signatures(aig, confirm_patterns)

    sig_mask = (1 << (64 * num_sim_words)) - 1
    confirm_mask = (1 << (64 * confirm_words)) - 1
    sig_int = [int.from_bytes(signatures[v].tobytes(), "little") for v in range(aig.num_vars)]
    confirm_int = [
        int.from_bytes(confirm_sigs[v].tobytes(), "little") for v in range(aig.num_vars)
    ]

    # Group nodes by signature up to complementation: the class key is the
    # lexicographically smaller of (sig, ~sig).
    classes: Dict[int, List[int]] = {}
    for node in aig.nodes():
        if node.is_const:
            continue
        sig = sig_int[node.var]
        key = min(sig, sig ^ sig_mask)
        classes.setdefault(key, []).append(node.var)

    # Representative literal (in the *old* graph's numbering) per variable.
    replacement_lit: Dict[int, Literal] = {}
    for key, members in classes.items():
        if len(members) < 2:
            continue
        representative = members[0]
        for var in members[1:]:
            complemented = sig_int[var] != sig_int[representative]
            if not _confirm_equivalence(
                aig, representative, var, complemented,
                confirm_int, confirm_mask, exact_support_limit,
            ):
                continue
            rep_lit = 2 * representative + int(complemented)
            replacement_lit[var] = rep_lit

    if not replacement_lit:
        return aig.copy()

    # Rebuild, substituting merged nodes by their representative's literal.
    new = AIG(name=aig.name)
    mapping: Dict[int, Literal] = {0: 0}
    for pi_var in aig.pis:
        mapping[pi_var] = new.add_pi(name=aig.node(pi_var).name)

    def resolve(var: int) -> Literal:
        """New literal implementing old variable ``var`` (follows merges)."""
        if var in mapping:
            return mapping[var]
        target = replacement_lit.get(var)
        if target is not None and lit_var(target) != var:
            base = resolve(lit_var(target))
            result = base ^ (target & 1)
            mapping[var] = result
            return result
        node = aig.node(var)
        assert node.fanin0 is not None and node.fanin1 is not None
        a = resolve(lit_var(node.fanin0)) ^ (node.fanin0 & 1)
        b = resolve(lit_var(node.fanin1)) ^ (node.fanin1 & 1)
        result = new.add_and(a, b)
        mapping[var] = result
        return result

    for po_lit, po_name in zip(aig.pos, aig.po_names):
        new_lit = resolve(lit_var(po_lit)) ^ (po_lit & 1)
        new.add_po(new_lit, name=po_name)
    return new


def _confirm_equivalence(
    aig: AIG,
    rep: int,
    var: int,
    complemented: bool,
    confirm_int: List[int],
    confirm_mask: int,
    exact_support_limit: int,
) -> bool:
    """Second-stage check of a candidate equivalence."""
    expected = confirm_int[rep] ^ (confirm_mask if complemented else 0)
    if confirm_int[var] != expected:
        return False
    support = _combined_support(aig, rep, var, exact_support_limit)
    if support is None:
        # Too wide for exact proof: the two independent simulation batches
        # (num_sim_words + confirm_words words) are the accepted evidence.
        return True
    leaves = tuple(sorted(support))
    try:
        t_rep = cut_truth_table(aig, rep, Cut(leaves))
        t_var = cut_truth_table(aig, var, Cut(leaves))
    except ValueError:
        return False
    if complemented:
        t_rep = truth.tt_not(t_rep, len(leaves))
    return t_rep == t_var


def _combined_support(aig: AIG, a: int, b: int, limit: int) -> Optional[set]:
    is_and, fanin0, fanin1 = aig.node_arrays()
    support = set()
    for root in (a, b):
        stack = [root]
        seen = set()
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            if is_and[v]:
                stack.append(fanin0[v] >> 1)
                stack.append(fanin1[v] >> 1)
            elif aig.is_pi(v):
                support.add(v)
            if len(support) > limit:
                return None
    return support
