"""AND-tree balancing (ABC ``balance`` analogue).

``balance`` reduces the depth of an AIG without changing its logic by
collapsing maximal multi-input AND "supergates" and rebuilding them as
delay-balanced trees: the earliest-arriving operands are combined first.
This is a full-graph reconstruction pass.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.aig.graph import AIG, Literal, lit_not, lit_var, lit_is_compl


def balance(aig: AIG) -> AIG:
    """Return a depth-balanced, functionally equivalent copy of ``aig``."""
    fanouts = aig.fanout_array()
    new = AIG(name=aig.name)
    mapping: Dict[int, Literal] = {0: 0}
    arrival: Dict[int, int] = {0: 0}
    for pi_var in aig.pis:
        mapping[pi_var] = new.add_pi(name=aig.node(pi_var).name)
        arrival[lit_var(mapping[pi_var])] = 0

    def translate(old_lit: Literal) -> Literal:
        base = mapping[lit_var(old_lit)]
        return base ^ (old_lit & 1)

    def collect_supergate(old_lit: Literal, root_var: int, operands: List[Literal]) -> None:
        """Flatten a tree of single-fanout, non-complemented AND fanins."""
        var = lit_var(old_lit)
        node = aig.node(var)
        expandable = (
            node.is_and
            and not lit_is_compl(old_lit)
            and var != root_var
            and fanouts[var] <= 1
        )
        if not expandable:
            operands.append(old_lit)
            return
        assert node.fanin0 is not None and node.fanin1 is not None
        collect_supergate(node.fanin0, root_var, operands)
        collect_supergate(node.fanin1, root_var, operands)

    for node in aig.nodes():
        if not node.is_and:
            continue
        assert node.fanin0 is not None and node.fanin1 is not None
        operands: List[Literal] = []
        collect_supergate(node.fanin0, node.var, operands)
        collect_supergate(node.fanin1, node.var, operands)
        # Deduplicate operands: repeated literals are idempotent under AND,
        # and complementary pairs make the supergate constant false.
        seen = set()
        unique_ops: List[Literal] = []
        constant_false = False
        for op in operands:
            if op in seen:
                continue
            if lit_not(op) in seen:
                constant_false = True
                break
            seen.add(op)
            unique_ops.append(op)
        if constant_false:
            mapping[node.var] = 0
            arrival[0] = 0
            continue
        new_ops = [translate(op) for op in unique_ops]
        new_lit = _balanced_and(new, new_ops, arrival)
        mapping[node.var] = new_lit

    for po_lit, po_name in zip(aig.pos, aig.po_names):
        new.add_po(translate(po_lit), name=po_name)
    return new


def _balanced_and(new: AIG, operands: List[Literal], arrival: Dict[int, int]) -> Literal:
    """Combine operands into an AND tree, earliest arrivals first."""
    if not operands:
        return 1
    pending = sorted(operands, key=lambda l: (arrival.get(lit_var(l), 0), l))
    while len(pending) > 1:
        a = pending.pop(0)
        b = pending.pop(0)
        combined = new.add_and(a, b)
        arr = 1 + max(arrival.get(lit_var(a), 0), arrival.get(lit_var(b), 0))
        existing = arrival.get(lit_var(combined))
        arrival[lit_var(combined)] = min(existing, arr) if existing is not None else arr
        # Insert keeping arrival order.
        key = arrival[lit_var(combined)]
        idx = 0
        while idx < len(pending) and arrival.get(lit_var(pending[idx]), 0) <= key:
            idx += 1
        pending.insert(idx, combined)
    return pending[0]
