"""Sum-of-products covers and algebraic factoring.

This module provides the cube-cover algebra used by ``refactor`` and the
SOP-balancing pass: ISOP extraction (delegated to :mod:`repro.aig.truth`),
algebraic division, kernel extraction and a factored-form representation
that can be costed (literal count) and instantiated into an AIG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig import truth
from repro.aig.graph import AIG, Literal, lit_not


Cube = Tuple[int, int]
"""A product term: ``(positive_var_mask, negative_var_mask)``."""


# ----------------------------------------------------------------------
# Factored forms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FactoredNode:
    """A node of a factored form tree.

    ``kind`` is one of ``"lit"``, ``"and"``, ``"or"``.  Literal leaves carry
    ``(var, complemented)``; internal nodes carry a tuple of children.
    """

    kind: str
    var: int = -1
    complemented: bool = False
    children: Tuple["FactoredNode", ...] = ()

    def literal_count(self) -> int:
        """Number of literal leaves in the tree (the classical FF cost)."""
        if self.kind == "lit":
            return 1
        return sum(child.literal_count() for child in self.children)

    def depth(self) -> int:
        if self.kind == "lit" or not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)


def literal_node(var: int, complemented: bool = False) -> FactoredNode:
    return FactoredNode(kind="lit", var=var, complemented=complemented)


def and_node(children: Sequence[FactoredNode]) -> FactoredNode:
    children = tuple(children)
    if len(children) == 1:
        return children[0]
    return FactoredNode(kind="and", children=children)


def or_node(children: Sequence[FactoredNode]) -> FactoredNode:
    children = tuple(children)
    if len(children) == 1:
        return children[0]
    return FactoredNode(kind="or", children=children)


CONST0_FF = FactoredNode(kind="or", children=())
CONST1_FF = FactoredNode(kind="and", children=())


# ----------------------------------------------------------------------
# Cube-cover algebra
# ----------------------------------------------------------------------
def cube_literals(cube: Cube) -> List[Tuple[int, bool]]:
    """List of ``(var, complemented)`` literal pairs of a cube."""
    pos, neg = cube
    lits: List[Tuple[int, bool]] = []
    var = 0
    mask = pos | neg
    while mask:
        if (pos >> var) & 1:
            lits.append((var, False))
        elif (neg >> var) & 1:
            lits.append((var, True))
        mask &= ~(1 << var)
        var += 1
    return lits


def cover_literal_count(cover: Sequence[Cube]) -> int:
    return sum(truth.cube_literal_count(cube) for cube in cover)


def cube_divide(cube: Cube, divisor: Cube) -> Optional[Cube]:
    """Algebraic division of one cube by another (``None`` if not divisible)."""
    cpos, cneg = cube
    dpos, dneg = divisor
    if (cpos & dpos) != dpos or (cneg & dneg) != dneg:
        return None
    return (cpos & ~dpos, cneg & ~dneg)


def cover_divide(cover: Sequence[Cube], divisor: Sequence[Cube]) -> Tuple[List[Cube], List[Cube]]:
    """Weak algebraic division of a cover by a divisor cover.

    Returns ``(quotient, remainder)`` such that
    ``cover = quotient * divisor + remainder`` algebraically.
    """
    divisor = list(divisor)
    if not divisor:
        return [], list(cover)
    quotients_per_cube: List[set] = []
    for div_cube in divisor:
        quotients = set()
        for cube in cover:
            q = cube_divide(cube, div_cube)
            if q is not None:
                quotients.add(q)
        quotients_per_cube.append(quotients)
    quotient = set.intersection(*quotients_per_cube) if quotients_per_cube else set()
    quotient_list = sorted(quotient)
    covered = set()
    for q in quotient_list:
        for div_cube in divisor:
            covered.add((q[0] | div_cube[0], q[1] | div_cube[1]))
    remainder = [cube for cube in cover if cube not in covered]
    return quotient_list, remainder


def _literal_occurrences(cover: Sequence[Cube]) -> Dict[Tuple[int, bool], int]:
    counts: Dict[Tuple[int, bool], int] = {}
    for cube in cover:
        for literal in cube_literals(cube):
            counts[literal] = counts.get(literal, 0) + 1
    return counts


def best_literal_divisor(cover: Sequence[Cube]) -> Optional[Tuple[int, bool]]:
    """Most frequent literal appearing in at least two cubes (quick-divisor)."""
    counts = _literal_occurrences(cover)
    best = None
    best_count = 1
    for literal, count in sorted(counts.items()):
        if count > best_count:
            best = literal
            best_count = count
    return best


def quick_factor(cover: Sequence[Cube]) -> FactoredNode:
    """Quick algebraic factoring (literal-divisor based, recursive).

    This mirrors the ``quick_factor`` procedure from classic multi-level
    synthesis: repeatedly divide by the most common literal, factor the
    quotient and remainder recursively, and fall back to a flat SOP when no
    divisor exists.
    """
    cover = [c for c in cover]
    if not cover:
        return CONST0_FF
    if any(cube == (0, 0) for cube in cover):
        return CONST1_FF
    if len(cover) == 1:
        lits = [literal_node(var, compl) for var, compl in cube_literals(cover[0])]
        return and_node(lits) if lits else CONST1_FF

    divisor_literal = best_literal_divisor(cover)
    if divisor_literal is None:
        # No common literal: express as a flat OR of cube ANDs.
        cubes = []
        for cube in cover:
            lits = [literal_node(var, compl) for var, compl in cube_literals(cube)]
            cubes.append(and_node(lits) if lits else CONST1_FF)
        return or_node(cubes)

    var, compl = divisor_literal
    div_cube: Cube = ((1 << var), 0) if not compl else (0, (1 << var))
    quotient, remainder = cover_divide(cover, [div_cube])
    if not quotient:
        cubes = []
        for cube in cover:
            lits = [literal_node(v, c) for v, c in cube_literals(cube)]
            cubes.append(and_node(lits) if lits else CONST1_FF)
        return or_node(cubes)
    factored_quotient = quick_factor(quotient)
    product = and_node([literal_node(var, compl), factored_quotient])
    if not remainder:
        return product
    factored_remainder = quick_factor(remainder)
    return or_node([product, factored_remainder])


def factor_truth_table(table: int, num_vars: int) -> FactoredNode:
    """Factored form of a completely specified function.

    Chooses the cheaper of factoring the on-set or the complemented
    function (off-set), matching how refactoring decides output phase.
    """
    mask = truth.table_mask(num_vars)
    table &= mask
    if table == 0:
        return CONST0_FF
    if table == mask:
        return CONST1_FF
    on_cover = truth.isop(table, table, num_vars)
    off_table = truth.tt_not(table, num_vars)
    off_cover = truth.isop(off_table, off_table, num_vars)
    ff_on = quick_factor(on_cover)
    ff_off = quick_factor(off_cover)
    if ff_off.literal_count() + 1 < ff_on.literal_count():
        return FactoredNode(kind="not", children=(ff_off,))
    return ff_on


# ----------------------------------------------------------------------
# Instantiation into an AIG
# ----------------------------------------------------------------------
def build_factored_form(
    aig: AIG,
    node: FactoredNode,
    leaf_literals: Sequence[Literal],
    arrival: Optional[Dict[Literal, int]] = None,
) -> Literal:
    """Instantiate a factored form into ``aig`` over the given leaf literals.

    ``leaf_literals[i]`` provides the AIG literal implementing variable ``i``
    of the factored form.  When ``arrival`` maps literals to arrival times,
    the multi-input AND/OR gates are built as delay-aware (Huffman-style)
    trees; otherwise balanced trees are used.
    """
    if node.kind == "lit":
        literal = leaf_literals[node.var]
        return lit_not(literal) if node.complemented else literal
    if node.kind == "not":
        inner = build_factored_form(aig, node.children[0], leaf_literals, arrival)
        return lit_not(inner)
    child_lits = [
        build_factored_form(aig, child, leaf_literals, arrival) for child in node.children
    ]
    if node.kind == "and":
        if not child_lits:
            return 1  # constant true
        return _build_tree(aig, child_lits, arrival, is_and=True)
    if node.kind == "or":
        if not child_lits:
            return 0  # constant false
        return _build_tree(aig, child_lits, arrival, is_and=False)
    raise ValueError(f"unknown factored node kind {node.kind!r}")


def _build_tree(
    aig: AIG,
    literals: List[Literal],
    arrival: Optional[Dict[Literal, int]],
    is_and: bool,
) -> Literal:
    """Build a multi-input AND/OR as a tree, optionally delay-aware."""
    items = list(literals)
    if arrival is None:
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                nxt.append(_gate(aig, items[i], items[i + 1], is_and))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]
    # Huffman-style: repeatedly combine the two earliest-arriving operands.
    def time(literal: Literal) -> int:
        return arrival.get(literal & ~1, 0)

    pending = sorted(items, key=time)
    while len(pending) > 1:
        a = pending.pop(0)
        b = pending.pop(0)
        combined = _gate(aig, a, b, is_and)
        arrival[combined & ~1] = max(time(a), time(b)) + 1
        # Insert keeping the list sorted by arrival.
        idx = 0
        while idx < len(pending) and time(pending[idx]) <= time(combined):
            idx += 1
        pending.insert(idx, combined)
    return pending[0]


def _gate(aig: AIG, a: Literal, b: Literal, is_and: bool) -> Literal:
    return aig.add_and(a, b) if is_and else aig.add_or(a, b)


def factored_form_table(node: FactoredNode, num_vars: int) -> int:
    """Truth table of a factored form (used by correctness tests)."""
    if node.kind == "lit":
        table = truth.var_table(node.var, num_vars)
        return truth.tt_not(table, num_vars) if node.complemented else table
    if node.kind == "not":
        return truth.tt_not(factored_form_table(node.children[0], num_vars), num_vars)
    if node.kind == "and":
        result = truth.table_mask(num_vars)
        for child in node.children:
            result &= factored_form_table(child, num_vars)
        return result
    if node.kind == "or":
        result = 0
        for child in node.children:
            result |= factored_form_table(child, num_vars)
        return result
    raise ValueError(f"unknown factored node kind {node.kind!r}")
