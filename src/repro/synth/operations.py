"""Registry of synthesis operations — the BOiLS search alphabet.

The BOiLS paper optimises over sequences drawn from the eleven-operation
alphabet::

    Alg = [rewrite, rewrite -z, refactor, refactor -z, resub, resub -z,
           balance, fraig, sopb, blut, dsdb]

Each operation is a pure function ``AIG -> AIG``.  The registry also
stores the two-letter mnemonic used by the paper's Table I (``Rw``, ``Rf``,
``Bl`` …) so that sequences can be rendered exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Union

from repro.aig.graph import AIG
from repro.synth.balance import balance
from repro.synth.fraig import fraig
from repro.synth.refactor import refactor, refactor_z
from repro.synth.restructure import blut, dsdb, sopb
from repro.synth.resub import resub, resub_z
from repro.synth.rewrite import rewrite, rewrite_z


@dataclass(frozen=True)
class Operation:
    """A named synthesis transformation.

    Attributes
    ----------
    name:
        The ABC-style command name (e.g. ``"rewrite -z"``).
    mnemonic:
        Two-letter code used in compact sequence strings (``"Rz"``).
    func:
        The transformation, a pure ``AIG -> AIG`` function.
    """

    name: str
    mnemonic: str
    func: Callable[[AIG], AIG]

    def __call__(self, aig: AIG) -> AIG:
        return self.func(aig)


_OPERATIONS: List[Operation] = [
    Operation("rewrite", "Rw", rewrite),
    Operation("rewrite -z", "Rz", rewrite_z),
    Operation("refactor", "Rf", refactor),
    Operation("refactor -z", "Fz", refactor_z),
    Operation("resub", "Rs", resub),
    Operation("resub -z", "Sz", resub_z),
    Operation("balance", "Bl", balance),
    Operation("fraig", "Fr", fraig),
    Operation("sopb", "So", sopb),
    Operation("blut", "Bu", blut),
    Operation("dsdb", "Ds", dsdb),
]

OPERATION_ALPHABET: List[str] = [op.name for op in _OPERATIONS]
"""Operation names in the canonical order used for integer encodings."""

_BY_NAME: Dict[str, Operation] = {op.name: op for op in _OPERATIONS}
_BY_MNEMONIC: Dict[str, Operation] = {op.mnemonic: op for op in _OPERATIONS}


def list_operations() -> List[Operation]:
    """All registered operations in canonical order."""
    return list(_OPERATIONS)


def get_operation(key: Union[str, int]) -> Operation:
    """Look up an operation by name, mnemonic or alphabet index."""
    if isinstance(key, int):
        if not 0 <= key < len(_OPERATIONS):
            raise KeyError(f"operation index {key} out of range")
        return _OPERATIONS[key]
    if key in _BY_NAME:
        return _BY_NAME[key]
    if key in _BY_MNEMONIC:
        return _BY_MNEMONIC[key]
    raise KeyError(f"unknown operation {key!r}")


def apply_operation(aig: AIG, key: Union[str, int]) -> AIG:
    """Apply one operation (by name, mnemonic or index) to an AIG."""
    return get_operation(key)(aig)


def apply_sequence(aig: AIG, sequence: Sequence[Union[str, int]]) -> AIG:
    """Apply a sequence of operations left-to-right and return the result."""
    current = aig
    for key in sequence:
        current = get_operation(key)(current)
    return current


def sequence_to_names(sequence: Sequence[Union[str, int]]) -> List[str]:
    """Normalise a sequence to canonical operation names."""
    return [get_operation(key).name for key in sequence]


def sequence_to_indices(sequence: Sequence[Union[str, int]]) -> List[int]:
    """Normalise a sequence to alphabet indices."""
    index_of = {op.name: i for i, op in enumerate(_OPERATIONS)}
    return [index_of[get_operation(key).name] for key in sequence]


def sequence_to_string(sequence: Sequence[Union[str, int]]) -> str:
    """Render a sequence using the paper's two-letter mnemonics (``RwRfDs…``)."""
    return "".join(get_operation(key).mnemonic for key in sequence)


def string_to_sequence(text: str) -> List[str]:
    """Parse a mnemonic string (``"RwRfDs"``) back into operation names."""
    if len(text) % 2:
        raise ValueError("mnemonic strings must have even length")
    names = []
    for i in range(0, len(text), 2):
        mnemonic = text[i:i + 2]
        if mnemonic not in _BY_MNEMONIC:
            raise ValueError(f"unknown mnemonic {mnemonic!r}")
        names.append(_BY_MNEMONIC[mnemonic].name)
    return names
