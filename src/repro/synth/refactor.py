"""Large-cut refactoring (ABC ``refactor`` / ``refactor -z`` analogue).

Refactoring collapses a large cone (up to ``cut_size`` leaves, 10 by
default as in ABC) into a truth table / SOP cover, re-derives a factored
form algebraically and rebuilds the cone from that form.  Compared to
``rewrite`` it looks at much larger windows, so it can undo structural
decisions that 4-input rewriting cannot see across.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.aig import truth
from repro.aig.cuts import Cut, cut_cone_vars, cut_truth_table, enumerate_cuts
from repro.aig.graph import AIG, Literal
from repro.synth import sop
from repro.synth.rewrite_framework import Replacement, mffc_size, rebuild_with_replacements


def _refactor_candidate(table: int, num_vars: int) -> Tuple[sop.FactoredNode, int]:
    """Factored form and its two-input gate cost for a cone function."""
    ff = sop.factor_truth_table(table, num_vars)
    return ff, _ff_gate_count(ff)


def _ff_gate_count(node: sop.FactoredNode) -> int:
    if node.kind == "lit":
        return 0
    cost = sum(_ff_gate_count(child) for child in node.children)
    if node.kind == "not":
        return cost
    return cost + max(0, len(node.children) - 1)


def refactor(
    aig: AIG,
    zero_cost: bool = False,
    cut_size: int = 10,
    max_cuts: int = 4,
    max_table_vars: int = 12,
) -> AIG:
    """Refactor the AIG by re-deriving factored forms of large cones.

    Parameters
    ----------
    zero_cost:
        ``refactor -z`` behaviour: accept replacements with zero gain.
    cut_size:
        Maximum cut size used for collapsing (ABC uses 10 by default).
    max_table_vars:
        Safety bound on truth-table width.
    """
    if aig.num_ands == 0:
        return aig.copy()
    cut_size = min(cut_size, max_table_vars)
    cuts = enumerate_cuts(aig, k=cut_size, max_cuts=max_cuts, include_trivial=False)
    fanouts = aig.fanout_array()
    replacements: Dict[int, Replacement] = {}
    claimed: set = set()

    # Visit nodes from the outputs downwards so that large cones get
    # priority over their sub-cones.
    for node in reversed(list(aig.nodes())):
        if not node.is_and or node.var in claimed:
            continue
        node_cuts = [c for c in cuts.get(node.var, []) if 2 <= c.size <= cut_size]
        if not node_cuts:
            continue
        # Prefer the largest cut: that is the point of refactoring.
        cut = max(node_cuts, key=lambda c: (c.size, c.leaves))
        table = cut_truth_table(aig, node.var, cut)
        mask = truth.table_mask(cut.size)
        old_cost = mffc_size(aig, node.var, cut, fanouts)
        if table == 0 or table == mask:
            builder = (lambda new, leaves, arrival: 0) if table == 0 else (
                lambda new, leaves, arrival: 1
            )
            replacements[node.var] = Replacement(cut=cut, builder=builder, gain=old_cost)
            for interior in cut_cone_vars(aig, node.var, cut):
                claimed.add(interior)
            continue
        ff, new_cost = _refactor_candidate(table, cut.size)
        gain = old_cost - new_cost
        if gain > 0 or (zero_cost and gain == 0):
            replacements[node.var] = Replacement(
                cut=cut, builder=_ff_builder(ff), gain=gain
            )
            for interior in cut_cone_vars(aig, node.var, cut):
                claimed.add(interior)

    if not replacements:
        return aig.copy()
    result = rebuild_with_replacements(aig, replacements)
    if result.num_ands > aig.num_ands and not zero_cost:
        return aig.copy()
    return result


def _ff_builder(ff: sop.FactoredNode):
    def builder(new: AIG, leaf_literals: Sequence[Literal], arrival) -> Literal:
        return sop.build_factored_form(new, ff, leaf_literals)

    return builder


def refactor_z(aig: AIG, cut_size: int = 10, max_cuts: int = 4) -> AIG:
    """Zero-cost refactoring (``refactor -z``)."""
    return refactor(aig, zero_cost=True, cut_size=cut_size, max_cuts=max_cuts)
