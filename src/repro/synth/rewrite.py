"""Cut-based AIG rewriting (ABC ``rewrite`` / ``rewrite -z`` analogue).

For every AND node we enumerate 4-feasible cuts, compute the cut function,
and synthesise a minimal replacement structure for its NPN class using a
memoised exhaustive/ISOP-based synthesiser.  A replacement is accepted when
the number of nodes it adds is smaller than the node's maximum fanout-free
cone (strictly smaller for ``rewrite``, allowing equality for the
zero-cost-replacement variant ``rewrite -z``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig import truth
from repro.aig.cuts import Cut, cut_truth_table, enumerate_cuts
from repro.aig.graph import AIG, Literal, lit_not
from repro.synth import sop
from repro.synth.rewrite_framework import Replacement, mffc_size, rebuild_with_replacements


# ----------------------------------------------------------------------
# Small-function resynthesis library
# ----------------------------------------------------------------------
@lru_cache(maxsize=4096)
def _optimal_structure(table: int, num_vars: int) -> Tuple[sop.FactoredNode, int]:
    """Best known factored-form implementation of a small function.

    Uses ISOP-based quick factoring on both phases; the returned cost is
    an upper bound on the number of AND nodes needed (literal count minus
    one per gate level is a loose bound, so we cost by actually counting
    two-input gates required by the tree).
    """
    ff = sop.factor_truth_table(table, num_vars)
    return ff, _ff_and_count(ff)


def _ff_and_count(node: sop.FactoredNode) -> int:
    """Number of two-input AND gates needed to realise a factored form."""
    if node.kind == "lit":
        return 0
    child_cost = sum(_ff_and_count(child) for child in node.children)
    if node.kind == "not":
        return child_cost
    arity = len(node.children)
    return child_cost + max(0, arity - 1)


def _make_builder(table: int, num_vars: int):
    """Builder closure instantiating the optimal structure for ``table``."""
    ff, _ = _optimal_structure(table, num_vars)

    def builder(new: AIG, leaf_literals: Sequence[Literal], arrival) -> Literal:
        return sop.build_factored_form(new, ff, leaf_literals)

    return builder


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------
def rewrite(aig: AIG, zero_cost: bool = False, cut_size: int = 4, max_cuts: int = 8) -> AIG:
    """Rewrite the AIG using precomputed small-function structures.

    Parameters
    ----------
    zero_cost:
        When ``True`` (the ``rewrite -z`` behaviour) replacements with zero
        estimated gain are also applied; these do not reduce node count by
        themselves but perturb the structure so that later passes find new
        opportunities.
    cut_size:
        Number of cut leaves considered (4, as in ABC's rewriting).
    """
    if aig.num_ands == 0:
        return aig.copy()
    cuts = enumerate_cuts(aig, k=cut_size, max_cuts=max_cuts, include_trivial=False)
    fanouts = aig.fanout_array()
    replacements: Dict[int, Replacement] = {}
    # Nodes already claimed as interior of an accepted replacement cone; we
    # avoid planning overlapping replacements in a single pass, which keeps
    # gain estimates trustworthy.
    claimed: set = set()

    for node in aig.nodes():
        if not node.is_and or node.var in claimed:
            continue
        best: Optional[Tuple[int, Cut, int]] = None  # (gain, cut, table)
        for cut in cuts.get(node.var, []):
            if cut.size < 2 or cut.size > cut_size:
                continue
            table = cut_truth_table(aig, node.var, cut)
            num_vars = cut.size
            mask = truth.table_mask(num_vars)
            if table == 0 or table == mask:
                # Constant cone: replacing it is always maximal gain.
                gain = mffc_size(aig, node.var, cut, fanouts)
                candidate = (gain, cut, table)
                if best is None or candidate[0] > best[0]:
                    best = candidate
                continue
            _, new_cost = _optimal_structure(table, num_vars)
            old_cost = mffc_size(aig, node.var, cut, fanouts)
            gain = old_cost - new_cost
            if best is None or gain > best[0]:
                best = (gain, cut, table)
        if best is None:
            continue
        gain, cut, table = best
        if gain > 0 or (zero_cost and gain == 0):
            mask = truth.table_mask(cut.size)
            if table == 0:
                replacements[node.var] = Replacement(
                    cut=cut, builder=lambda new, leaves, arrival: 0, gain=gain
                )
            elif table == mask:
                replacements[node.var] = Replacement(
                    cut=cut, builder=lambda new, leaves, arrival: 1, gain=gain
                )
            else:
                replacements[node.var] = Replacement(
                    cut=cut, builder=_make_builder(table, cut.size), gain=gain
                )
            from repro.aig.cuts import cut_cone_vars

            for interior in cut_cone_vars(aig, node.var, cut):
                claimed.add(interior)

    if not replacements:
        return aig.copy()
    result = rebuild_with_replacements(aig, replacements)
    # Rewriting must never increase size; fall back to the original if the
    # estimate was off (can happen because sharing estimates are local).
    if result.num_ands > aig.num_ands and not zero_cost:
        return aig.copy()
    return result


def rewrite_z(aig: AIG, cut_size: int = 4, max_cuts: int = 8) -> AIG:
    """Zero-cost-replacement rewriting (``rewrite -z``)."""
    return rewrite(aig, zero_cost=True, cut_size=cut_size, max_cuts=max_cuts)
