"""Simulation-guided resubstitution (ABC ``resub`` / ``resub -z`` analogue).

Resubstitution re-expresses a node's function in terms of *divisors*:
other nodes already present in the network.  We implement the classic 0-
and 1-resubstitution checks guided by bit-parallel simulation signatures
and verified exactly on cut truth tables:

* **0-resub** — the node is functionally identical (up to complement) to
  an existing divisor; replace it and free its MFFC.
* **1-resub** — the node equals ``d1 AND d2``, ``d1 OR d2`` (up to input /
  output complementation) for two divisors; replace the cone by a single
  new gate.

``resub -z`` additionally accepts replacements with zero net gain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig import truth
from repro.aig.cuts import Cut, cut_cone_vars, cut_truth_table, enumerate_cuts
from repro.aig.graph import AIG, Literal, lit_not, lit_var
from repro.aig.simulation import random_simulation
from repro.synth.rewrite_framework import Replacement, mffc_size, rebuild_with_replacements


def resub(
    aig: AIG,
    zero_cost: bool = False,
    cut_size: int = 8,
    max_cuts: int = 4,
    max_divisors: int = 24,
    num_sim_words: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> AIG:
    """Resubstitute nodes using divisors from their surrounding window.

    Parameters
    ----------
    zero_cost:
        ``resub -z`` behaviour (accept zero-gain moves).
    cut_size:
        Window cut size; divisors are nodes whose support lies inside the
        window (ABC default is 8 leaves).
    max_divisors:
        Cap on the number of divisors tried per node.
    """
    if aig.num_ands == 0:
        return aig.copy()
    rng = rng if rng is not None else np.random.default_rng(17)
    signatures = random_simulation(aig, num_words=num_sim_words, rng=rng)
    cuts = enumerate_cuts(aig, k=cut_size, max_cuts=max_cuts, include_trivial=False)
    fanouts = aig.fanout_array()
    levels = aig.levels_array()
    replacements: Dict[int, Replacement] = {}
    claimed: set = set()

    # Convert numpy signatures to Python ints once: integer AND/compare in
    # the divisor-pair loop is much faster than per-pair numpy calls.
    sig_mask = (1 << (64 * num_sim_words)) - 1
    sig_int: List[int] = [
        int.from_bytes(signatures[var].tobytes(), "little") for var in range(aig.num_vars)
    ]

    for node in aig.nodes():
        if not node.is_and or node.var in claimed:
            continue
        node_cuts = [c for c in cuts.get(node.var, []) if 2 <= c.size <= cut_size]
        if not node_cuts:
            continue
        cut = max(node_cuts, key=lambda c: (c.size, c.leaves))
        gain_bound = mffc_size(aig, node.var, cut, fanouts)
        if gain_bound <= 0:
            continue
        cone = set(cut_cone_vars(aig, node.var, cut))
        leaves = set(cut.leaves)
        # Divisors: nodes outside this node's MFFC whose level is below the
        # node's and which are not the node itself.  We take leaves plus
        # nearby nodes (bounded), preferring structurally close ones.
        divisor_vars: List[int] = list(cut.leaves)
        for candidate in range(1, aig.num_vars):
            if len(divisor_vars) >= max_divisors:
                break
            if candidate == node.var or candidate in cone or candidate in leaves:
                continue
            if levels[candidate] >= levels[node.var]:
                continue
            divisor_vars.append(candidate)

        found = _find_resub(
            aig, node.var, cut, divisor_vars, sig_int, sig_mask, gain_bound, zero_cost,
        )
        if found is None:
            continue
        replacement, interior_claim = found
        replacements[node.var] = replacement
        for interior in interior_claim:
            claimed.add(interior)

    if not replacements:
        return aig.copy()
    result = rebuild_with_replacements(aig, replacements)
    if result.num_ands > aig.num_ands and not zero_cost:
        return aig.copy()
    return result


def _find_resub(
    aig: AIG,
    root: int,
    cut: Cut,
    divisor_vars: List[int],
    sig_int: List[int],
    sig_mask: int,
    gain_bound: int,
    zero_cost: bool,
) -> Optional[Tuple[Replacement, List[int]]]:
    """Search for a 0- or 1-resubstitution of ``root``."""
    target = sig_int[root]
    target_neg = target ^ sig_mask
    interior = cut_cone_vars(aig, root, cut)

    # --- 0-resub: an existing node matches the target signature.
    for div in divisor_vars:
        if div == root:
            continue
        if sig_int[div] == target and _verify_equal(aig, root, div, cut):
            gain = gain_bound  # the whole MFFC dies; no new nodes are added
            if gain > 0 or zero_cost:
                return Replacement(cut=cut, builder=_copy_divisor_builder(aig, div, cut),
                                   gain=gain), interior
        if sig_int[div] == target_neg and _verify_equal(aig, root, div, cut, complemented=True):
            gain = gain_bound
            if gain > 0 or zero_cost:
                return Replacement(
                    cut=cut,
                    builder=_copy_divisor_builder(aig, div, cut, complemented=True),
                    gain=gain,
                ), interior

    # --- 1-resub: target = f(d1, d2) for a simple two-input gate.
    if gain_bound < 2 and not zero_cost:
        return None
    for i, d1 in enumerate(divisor_vars):
        s1 = sig_int[d1]
        for d2 in divisor_vars[i + 1:]:
            s2 = sig_int[d2]
            for c1 in (False, True):
                a = s1 ^ sig_mask if c1 else s1
                for c2 in (False, True):
                    b = s2 ^ sig_mask if c2 else s2
                    combined = a & b
                    if combined == target:
                        if _verify_and(aig, root, cut, d1, c1, d2, c2):
                            gain = gain_bound - 1
                            if gain > 0 or (zero_cost and gain == 0):
                                return Replacement(
                                    cut=cut,
                                    builder=_and_divisor_builder(aig, cut, d1, c1, d2, c2),
                                    gain=gain,
                                ), interior
                    elif combined == target_neg:
                        if _verify_and(aig, root, cut, d1, c1, d2, c2, out_compl=True):
                            gain = gain_bound - 1
                            if gain > 0 or (zero_cost and gain == 0):
                                return Replacement(
                                    cut=cut,
                                    builder=_and_divisor_builder(
                                        aig, cut, d1, c1, d2, c2, out_compl=True
                                    ),
                                    gain=gain,
                                ), interior
    return None


# ----------------------------------------------------------------------
# Exact verification on a joint cut
# ----------------------------------------------------------------------
def _joint_table(aig: AIG, var: int, leaves: Tuple[int, ...]) -> Optional[int]:
    """Truth table of ``var`` over ``leaves`` when its support allows it."""
    try:
        return cut_truth_table(aig, var, Cut(leaves))
    except ValueError:
        return None


def _expanded_cut(aig: AIG, root: int, cut: Cut, extra: List[int]) -> Optional[Tuple[int, ...]]:
    """Leaves covering both the root cone and the divisors' cones (bounded)."""
    leaves = set(cut.leaves)
    for var in extra:
        support = _transitive_pis_or_bound(aig, var, bound=16)
        if support is None:
            return None
        leaves |= support
    if len(leaves) > 14:
        return None
    return tuple(sorted(leaves))


def _transitive_pis_or_bound(aig: AIG, var: int, bound: int) -> Optional[set]:
    """Transitive-fanin frontier of ``var`` down to PIs, or ``None`` if too wide."""
    is_and, fanin0, fanin1 = aig.node_arrays()
    seen = set()
    stack = [var]
    frontier = set()
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        if is_and[v]:
            stack.append(fanin0[v] >> 1)
            stack.append(fanin1[v] >> 1)
        else:
            frontier.add(v)
        if len(seen) > 4 * bound:
            return None
    if len(frontier) > bound:
        return None
    return frontier


def _verify_equal(aig: AIG, root: int, divisor: int, cut: Cut, complemented: bool = False) -> bool:
    leaves = _expanded_cut(aig, root, cut, [divisor])
    if leaves is None:
        return False
    t_root = _joint_table(aig, root, leaves)
    t_div = _joint_table(aig, divisor, leaves)
    if t_root is None or t_div is None:
        return False
    if complemented:
        t_div = truth.tt_not(t_div, len(leaves))
    return t_root == t_div


def _verify_and(
    aig: AIG, root: int, cut: Cut, d1: int, c1: bool, d2: int, c2: bool, out_compl: bool = False
) -> bool:
    leaves = _expanded_cut(aig, root, cut, [d1, d2])
    if leaves is None:
        return False
    n = len(leaves)
    t_root = _joint_table(aig, root, leaves)
    t1 = _joint_table(aig, d1, leaves)
    t2 = _joint_table(aig, d2, leaves)
    if t_root is None or t1 is None or t2 is None:
        return False
    if c1:
        t1 = truth.tt_not(t1, n)
    if c2:
        t2 = truth.tt_not(t2, n)
    combined = t1 & t2
    if out_compl:
        combined = truth.tt_not(combined, n)
    return t_root == combined


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _copy_divisor_builder(aig: AIG, divisor: int, cut: Cut, complemented: bool = False):
    """Builder that re-creates the divisor's cone (strash will share it)."""
    support = _transitive_pis_or_bound(aig, divisor, bound=64) or set()
    frontier = tuple(sorted(support))

    def builder(new: AIG, leaf_literals: Sequence[Literal], arrival) -> Literal:
        # The divisor already exists somewhere in the new graph in most
        # cases; rebuilding it from PIs and letting structural hashing find
        # the existing copy keeps the builder self-contained.
        lit_result = _rebuild_cone_from_pis(aig, divisor, new)
        return lit_not(lit_result) if complemented else lit_result

    return builder


def _and_divisor_builder(aig: AIG, cut: Cut, d1: int, c1: bool, d2: int, c2: bool,
                         out_compl: bool = False):
    def builder(new: AIG, leaf_literals: Sequence[Literal], arrival) -> Literal:
        l1 = _rebuild_cone_from_pis(aig, d1, new)
        l2 = _rebuild_cone_from_pis(aig, d2, new)
        if c1:
            l1 = lit_not(l1)
        if c2:
            l2 = lit_not(l2)
        result = new.add_and(l1, l2)
        return lit_not(result) if out_compl else result

    return builder


def _rebuild_cone_from_pis(old: AIG, var: int, new: AIG) -> Literal:
    """Rebuild the cone of ``var`` in ``new`` assuming PI order matches."""
    pi_map = {old_pi: 2 * (i + 1) for i, old_pi in enumerate(old.pis)}
    cache: Dict[int, Literal] = {0: 0}

    def build(v: int) -> Literal:
        if v in cache:
            return cache[v]
        node = old.node(v)
        if node.is_pi:
            cache[v] = pi_map[v]
            return cache[v]
        assert node.fanin0 is not None and node.fanin1 is not None
        a = build(lit_var(node.fanin0)) ^ (node.fanin0 & 1)
        b = build(lit_var(node.fanin1)) ^ (node.fanin1 & 1)
        cache[v] = new.add_and(a, b)
        return cache[v]

    return build(var)


def resub_z(aig: AIG, **kwargs) -> AIG:
    """Zero-cost resubstitution (``resub -z``)."""
    return resub(aig, zero_cost=True, **kwargs)
