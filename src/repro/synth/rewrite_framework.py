"""Shared machinery for cut-based resynthesis passes.

ABC's ``rewrite``, ``refactor``, ``resub`` and the balancing family all
follow the same template: walk the AIG, pick a cut per node, decide whether
re-expressing the node's function over that cut is profitable (in nodes
saved or in depth), and reconstruct the network with the chosen
replacements.  Because :class:`repro.aig.graph.AIG` is append-only, our
passes perform the replacement during a demand-driven rebuild from the
primary outputs: nodes whose cones become unreferenced are simply never
copied into the new graph, which is how the "freed MFFC" gain
materialises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.aig.cuts import Cut, cut_cone_vars
from repro.aig.graph import AIG, Literal, lit_not, lit_var, lit_is_compl


@dataclass
class Replacement:
    """A planned resynthesis of one node.

    Attributes
    ----------
    cut:
        The cut whose leaves the new logic is expressed over.
    builder:
        Callable ``(new_aig, leaf_literals, arrival) -> Literal`` that
        instantiates the replacement logic in the new graph and returns the
        literal implementing the (non-complemented) function of the node.
    gain:
        Estimated node-count gain (old MFFC size minus estimated new size).
        Only used for reporting.
    """

    cut: Cut
    builder: Callable[[AIG, Sequence[Literal], Dict[Literal, int]], Literal]
    gain: int = 0


def mffc_size(aig: AIG, root: int, cut: Cut, fanout_counts: Sequence[int]) -> int:
    """Size of the maximum fanout-free cone of ``root`` w.r.t. ``cut``.

    Counts the AND nodes in the cone between the cut leaves and the root
    that are referenced *only* from inside that cone (plus the root
    itself); these are exactly the nodes that die if the root is
    re-expressed over the cut leaves.

    A node joins the MFFC when every one of its fanout references comes
    from a node already in the MFFC.  Processing the cone in reverse
    topological order and bumping per-fanin counters as members join makes
    this a single O(cone) sweep.
    """
    is_and, fanin0, fanin1 = aig.node_arrays()
    cone = [v for v in cut_cone_vars(aig, root, cut) if is_and[v]]
    if not cone or cone[-1] != root:
        return 0
    mffc_refs: Dict[int, int] = {}

    def join(var: int) -> None:
        for fv in (fanin0[var] >> 1, fanin1[var] >> 1):
            mffc_refs[fv] = mffc_refs.get(fv, 0) + 1

    count = 1
    join(root)
    for var in reversed(cone):
        if var == root:
            continue
        total_refs = fanout_counts[var]
        if total_refs > 0 and mffc_refs.get(var, 0) == total_refs:
            count += 1
            join(var)
    return count


def rebuild_with_replacements(
    aig: AIG,
    replacements: Dict[int, Replacement],
) -> AIG:
    """Rebuild the AIG applying the planned per-node replacements.

    The rebuild is demand-driven from the primary outputs, so any logic that
    is no longer referenced after the replacements disappears automatically.
    Structural hashing in the new graph provides incidental sharing between
    replacement cones.
    """
    new = AIG(name=aig.name)
    mapping: Dict[int, Literal] = {0: 0}
    for pi_var in aig.pis:
        mapping[pi_var] = new.add_pi(name=aig.node(pi_var).name)
    arrival: Dict[Literal, int] = {}
    building: set = set()

    def build(var: int) -> Literal:
        if var in mapping:
            return mapping[var]
        node = aig.node(var)
        if not node.is_and:
            raise ValueError(f"unmapped non-AND node {var}")
        replacement = replacements.get(var)
        if replacement is not None and var not in building:
            building.add(var)
            try:
                leaf_lits = [build_lit(2 * leaf) for leaf in replacement.cut.leaves]
                new_lit = replacement.builder(new, leaf_lits, arrival)
            finally:
                building.discard(var)
            mapping[var] = new_lit
            return new_lit
        assert node.fanin0 is not None and node.fanin1 is not None
        a = build_lit(node.fanin0)
        b = build_lit(node.fanin1)
        new_lit = new.add_and(a, b)
        arrival[new_lit & ~1] = 1 + max(arrival.get(a & ~1, 0), arrival.get(b & ~1, 0))
        mapping[var] = new_lit
        return new_lit

    def build_lit(old_lit: Literal) -> Literal:
        base = build(lit_var(old_lit))
        return base ^ (old_lit & 1)

    for po_lit, po_name in zip(aig.pos, aig.po_names):
        new.add_po(build_lit(po_lit), name=po_name)
    return new


def copy_cone_builder(aig: AIG, root: int, cut: Cut) -> Callable:
    """Builder that replays the original cone structure (identity rebuild)."""

    cone = cut_cone_vars(aig, root, cut)

    def builder(new: AIG, leaf_literals: Sequence[Literal], arrival: Dict[Literal, int]) -> Literal:
        local: Dict[int, Literal] = {leaf: leaf_literals[i] for i, leaf in enumerate(cut.leaves)}
        local[0] = 0
        for var in cone:
            node = aig.node(var)
            if not node.is_and:
                continue
            assert node.fanin0 is not None and node.fanin1 is not None
            a = local[lit_var(node.fanin0)] ^ (node.fanin0 & 1)
            b = local[lit_var(node.fanin1)] ^ (node.fanin1 & 1)
            local[var] = new.add_and(a, b)
        return local[root]

    return builder
