"""Delay-oriented restructuring passes: ``sopb``, ``blut`` and ``dsdb``.

In ABC these commands re-derive the network from a K-LUT mapping-like cut
cover and re-express each selected cone in a delay-friendly form:

* ``sopb`` — SOP balancing: each cone is collapsed to an ISOP cover and
  rebuilt as a delay-aware AND-OR tree (late-arriving leaves placed close
  to the cone output).
* ``blut`` — LUT balancing: cones are chosen under a 6-leaf bound (the
  mapper's K) and rebuilt from a factored form with delay-aware tree
  construction.
* ``dsdb`` — DSD balancing: cones are first decomposed by disjoint-support
  decomposition; each block is rebuilt separately, which preserves
  structure helpful to the downstream mapper.

All three share the cone-selection machinery and differ in the rebuild
strategy, mirroring how the original commands share ``if``-mapping
infrastructure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.aig import truth
from repro.aig.cuts import Cut, cut_truth_table, enumerate_cuts
from repro.aig.graph import AIG, Literal, lit_not, lit_var
from repro.synth import sop
from repro.synth.rewrite_framework import Replacement, rebuild_with_replacements


# ----------------------------------------------------------------------
# Shared: delay-aware cone rebuild pass
# ----------------------------------------------------------------------
def _delay_restructure(
    aig: AIG,
    cut_size: int,
    rebuild: Callable[[int, int], Optional[sop.FactoredNode]],
    max_cuts: int = 6,
) -> AIG:
    """Rebuild timing-critical cones using ``rebuild(table, num_vars)``.

    Only nodes on (or near) the critical path are touched: restructuring
    off-critical logic would add area for no delay benefit, which matches
    the behaviour of the delay-oriented ABC passes.
    """
    if aig.num_ands == 0:
        return aig.copy()
    levels = aig.levels_array()
    depth = aig.depth()
    if depth == 0:
        return aig.copy()
    cuts = enumerate_cuts(aig, k=cut_size, max_cuts=max_cuts, include_trivial=False)
    replacements: Dict[int, Replacement] = {}
    # Criticality threshold: nodes within one level of the critical depth
    # through any PO path.  We approximate with required times.
    required = _required_times(aig, depth)

    for node in aig.nodes():
        if not node.is_and:
            continue
        slack = required[node.var] - levels[node.var]
        if slack > 0:
            continue
        node_cuts = [c for c in cuts.get(node.var, []) if 2 <= c.size <= cut_size]
        if not node_cuts:
            continue
        # Choose the cut with minimum leaf arrival spread (best balancing
        # potential) preferring larger cuts.
        def cut_score(cut: Cut) -> Tuple[int, int]:
            leaf_levels = [levels[leaf] for leaf in cut.leaves]
            return (-(max(leaf_levels) - min(leaf_levels)), cut.size)

        cut = max(node_cuts, key=cut_score)
        table = cut_truth_table(aig, node.var, cut)
        mask = truth.table_mask(cut.size)
        if table == 0 or table == mask:
            builder = (lambda new, leaves, arrival: 0) if table == 0 else (
                lambda new, leaves, arrival: 1
            )
            replacements[node.var] = Replacement(cut=cut, builder=builder)
            continue
        ff = rebuild(table, cut.size)
        if ff is None:
            continue
        replacements[node.var] = Replacement(cut=cut, builder=_delay_builder(ff))

    if not replacements:
        return aig.copy()
    result = rebuild_with_replacements(aig, replacements)
    # These passes target depth; reject results that made depth worse.
    if result.depth() > aig.depth():
        return aig.copy()
    return result


def _required_times(aig: AIG, depth: int) -> List[int]:
    """Latest allowed level per node assuming all POs are required at ``depth``."""
    required = [depth] * aig.num_vars
    is_and, fanin0, fanin1 = aig.node_arrays()
    for var in range(aig.num_vars - 1, 0, -1):
        if not is_and[var]:
            continue
        limit = required[var] - 1
        for fv in (fanin0[var] >> 1, fanin1[var] >> 1):
            if limit < required[fv]:
                required[fv] = limit
    return required


def _delay_builder(ff: sop.FactoredNode):
    def builder(new: AIG, leaf_literals: Sequence[Literal], arrival) -> Literal:
        return sop.build_factored_form(new, ff, leaf_literals, arrival=arrival)

    return builder


# ----------------------------------------------------------------------
# sopb: SOP balance
# ----------------------------------------------------------------------
def sopb(aig: AIG, cut_size: int = 8, max_cuts: int = 6) -> AIG:
    """SOP balancing of timing-critical cones."""

    def rebuild(table: int, num_vars: int) -> Optional[sop.FactoredNode]:
        cover = truth.isop(table, table, num_vars)
        if not cover:
            return sop.CONST0_FF
        cubes = []
        for cube in cover:
            lits = [sop.literal_node(v, c) for v, c in sop.cube_literals(cube)]
            cubes.append(sop.and_node(lits) if lits else sop.CONST1_FF)
        return sop.or_node(cubes)

    return _delay_restructure(aig, cut_size=cut_size, rebuild=rebuild, max_cuts=max_cuts)


# ----------------------------------------------------------------------
# blut: LUT balance
# ----------------------------------------------------------------------
def blut(aig: AIG, cut_size: int = 6, max_cuts: int = 6) -> AIG:
    """LUT balancing: factored-form rebuild under the mapper's K=6 bound."""

    def rebuild(table: int, num_vars: int) -> Optional[sop.FactoredNode]:
        return sop.factor_truth_table(table, num_vars)

    return _delay_restructure(aig, cut_size=cut_size, rebuild=rebuild, max_cuts=max_cuts)


# ----------------------------------------------------------------------
# dsdb: DSD balance
# ----------------------------------------------------------------------
def dsdb(aig: AIG, cut_size: int = 8, max_cuts: int = 6) -> AIG:
    """DSD balancing: disjoint-support decomposition guided rebuild."""

    def rebuild(table: int, num_vars: int) -> Optional[sop.FactoredNode]:
        return _dsd_decompose(table, num_vars, list(range(num_vars)))

    return _delay_restructure(aig, cut_size=cut_size, rebuild=rebuild, max_cuts=max_cuts)


def _dsd_decompose(table: int, num_vars: int, variables: List[int]) -> sop.FactoredNode:
    """Top-down disjoint-support decomposition into AND/OR/XOR-free blocks.

    Recursively peels variables that appear in a simple decomposition
    ``f = x op g`` or ``f = ~x op g`` (op in {AND, OR}); whatever cannot be
    decomposed further falls back to quick factoring.  This captures the
    useful part of DSD for balancing purposes — splitting the function into
    independent blocks that the tree builder can schedule by arrival time.
    """
    mask = truth.table_mask(num_vars)
    table &= mask
    if table == 0:
        return sop.CONST0_FF
    if table == mask:
        return sop.CONST1_FF
    supp = truth.support(table, num_vars)
    if len(supp) == 1:
        v = supp[0]
        cof1 = truth.cofactor(table, num_vars, v, 1)
        complemented = cof1 == 0
        return sop.literal_node(variables[v], complemented)

    for v in supp:
        cof0 = truth.cofactor(table, num_vars, v, 0)
        cof1 = truth.cofactor(table, num_vars, v, 1)
        # f = x & g  when cof0 == 0;   f = ~x & g when cof1 == 0
        if cof0 == 0:
            rest = _dsd_decompose(cof1, num_vars, variables)
            return sop.and_node([sop.literal_node(variables[v], False), rest])
        if cof1 == 0:
            rest = _dsd_decompose(cof0, num_vars, variables)
            return sop.and_node([sop.literal_node(variables[v], True), rest])
        # f = x | g  when cof1 == all-ones;   f = ~x | g when cof0 == all-ones
        if cof1 == mask:
            rest = _dsd_decompose(cof0, num_vars, variables)
            return sop.or_node([sop.literal_node(variables[v], False), rest])
        if cof0 == mask:
            rest = _dsd_decompose(cof1, num_vars, variables)
            return sop.or_node([sop.literal_node(variables[v], True), rest])
    # No simple disjoint decomposition: fall back to algebraic factoring.
    return sop.factor_truth_table(table, num_vars)
