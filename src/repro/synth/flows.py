"""Named synthesis flows.

The most important flow is ``resyn2``, ABC's standard ten-step script::

    balance; rewrite; refactor; balance; rewrite; rewrite -z;
    balance; refactor -z; rewrite -z; balance

which the BOiLS paper uses as the *reference sequence* that normalises the
QoR metric (Equation 1).  A few other classic scripts are provided for
convenience and for the example applications.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.aig.graph import AIG
from repro.synth.operations import apply_sequence

RESYN2_SEQUENCE: List[str] = [
    "balance",
    "rewrite",
    "refactor",
    "balance",
    "rewrite",
    "rewrite -z",
    "balance",
    "refactor -z",
    "rewrite -z",
    "balance",
]

RESYN_SEQUENCE: List[str] = [
    "balance",
    "rewrite",
    "rewrite -z",
    "balance",
    "rewrite -z",
    "balance",
]

COMPRESS2_SEQUENCE: List[str] = [
    "balance",
    "rewrite",
    "refactor",
    "balance",
    "rewrite",
    "rewrite -z",
    "balance",
    "refactor -z",
    "rewrite -z",
    "balance",
]

_FLOWS: Dict[str, List[str]] = {
    "resyn": RESYN_SEQUENCE,
    "resyn2": RESYN2_SEQUENCE,
    "compress2": COMPRESS2_SEQUENCE,
}


def resyn2(aig: AIG) -> AIG:
    """Apply the ``resyn2`` reference flow."""
    return apply_sequence(aig, RESYN2_SEQUENCE)


def named_flow(name: str) -> List[str]:
    """Return the operation sequence of a named flow."""
    if name not in _FLOWS:
        raise KeyError(f"unknown flow {name!r}; available: {sorted(_FLOWS)}")
    return list(_FLOWS[name])


def apply_flow(aig: AIG, name: str) -> AIG:
    """Apply a named flow to an AIG."""
    return apply_sequence(aig, named_flow(name))


def available_flows() -> List[str]:
    return sorted(_FLOWS)
