"""Logic-synthesis transformation passes (ABC operation analogues).

Every pass is a pure function ``AIG -> AIG`` registered in
:mod:`repro.synth.operations`; the registry exposes the eleven-operation
alphabet used by the BOiLS paper:

``rewrite, rewrite -z, refactor, refactor -z, resub, resub -z, balance,
fraig, sopb, blut, dsdb``

plus the ``resyn2`` reference flow used to normalise QoR values.
"""

from repro.synth.operations import (
    OPERATION_ALPHABET,
    Operation,
    apply_operation,
    apply_sequence,
    get_operation,
    list_operations,
)
from repro.synth.flows import resyn2, named_flow

__all__ = [
    "OPERATION_ALPHABET",
    "Operation",
    "apply_operation",
    "apply_sequence",
    "get_operation",
    "list_operations",
    "resyn2",
    "named_flow",
]
