"""Pluggable synthesis backends for the QoR evaluator.

See :mod:`repro.qor.backends.base` for the protocol and the module map:

- :mod:`~repro.qor.backends.native` — the in-repo python substrate
  (default, bit-identical to the pre-backend evaluator)
- :mod:`~repro.qor.backends.replay` — recorded measurement tapes
- :mod:`~repro.qor.backends.external` — external ``abc`` subprocess
  adapter
- :mod:`~repro.qor.backends.differential` — cross-backend validation

Importing this package registers the built-ins in
:data:`repro.registry.BACKENDS` (the registry's builtin loader does so
lazily on first lookup).
"""

from repro.qor.backends.base import (
    DEFAULT_BACKEND_KEY,
    BackendError,
    BackendSpec,
    BackendUnavailable,
    SynthesisBackend,
    aig_fingerprint,
    backend_slug,
    canonical_backend_spec,
    parse_backend_argument,
    resolve_backend,
)
from repro.qor.backends.differential import Mismatch, assert_equivalent, cross_check
from repro.qor.backends.external import ExternalABCBackend
from repro.qor.backends.native import NativeBackend
from repro.qor.backends.replay import TAPE_FORMAT, ReplayBackend, TapeMismatch

__all__ = [
    "DEFAULT_BACKEND_KEY",
    "TAPE_FORMAT",
    "BackendError",
    "BackendSpec",
    "BackendUnavailable",
    "ExternalABCBackend",
    "Mismatch",
    "NativeBackend",
    "ReplayBackend",
    "SynthesisBackend",
    "TapeMismatch",
    "aig_fingerprint",
    "assert_equivalent",
    "backend_slug",
    "canonical_backend_spec",
    "cross_check",
    "parse_backend_argument",
    "resolve_backend",
]
