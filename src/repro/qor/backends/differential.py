"""Differential validation: cross-check two backends on the same circuits.

The fuzz harness's differential mode (``tests/properties``) uses this
module to compare measurement substrates: native vs recorded tapes in
hermetic CI, native vs an external ``abc`` binary when one is installed
(the external-oracle extension of the PR 5 internal-reference fuzzing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.aig.graph import AIG
from repro.qor.backends.base import BackendError, SynthesisBackend


@dataclass(frozen=True)
class Mismatch:
    """One disagreement between two backends on one measurement."""

    circuit: str
    sequence: Tuple[str, ...]
    lut_size: int
    reference: Tuple[int, int]
    candidate: Tuple[int, int]

    def __str__(self) -> str:
        return (
            f"{self.circuit} lut{self.lut_size} {list(self.sequence)}: "
            f"reference (area, delay) = {self.reference}, "
            f"candidate = {self.candidate}"
        )


def cross_check(
    reference: SynthesisBackend,
    candidate: SynthesisBackend,
    aig: AIG,
    sequences: Sequence[Sequence[str]],
    lut_size: int = 6,
) -> List[Mismatch]:
    """Measure every sequence on both backends; return the disagreements.

    Raises nothing on mismatches — callers decide whether a non-empty
    report is fatal (:func:`assert_equivalent`) or just logged (the
    native-vs-real-ABC comparison is *expected* to disagree on some
    circuits; the interesting signal is how much).
    """
    mismatches: List[Mismatch] = []
    for sequence in sequences:
        names = tuple(sequence)
        expected = reference.measure(aig, names, lut_size)
        actual = candidate.measure(aig, names, lut_size)
        if tuple(expected) != tuple(actual):
            mismatches.append(Mismatch(
                circuit=aig.name,
                sequence=names,
                lut_size=lut_size,
                reference=(int(expected[0]), int(expected[1])),
                candidate=(int(actual[0]), int(actual[1])),
            ))
    return mismatches


def assert_equivalent(
    reference: SynthesisBackend,
    candidate: SynthesisBackend,
    aig: AIG,
    sequences: Sequence[Sequence[str]],
    lut_size: int = 6,
) -> None:
    """Raise :class:`BackendError` listing every mismatch (if any)."""
    mismatches = cross_check(reference, candidate, aig, sequences, lut_size)
    if mismatches:
        rendered = "\n  ".join(str(m) for m in mismatches)
        raise BackendError(
            f"backends {reference.backend_spec!r} and "
            f"{candidate.backend_spec!r} disagree on {len(mismatches)} of "
            f"{len(sequences)} measurements:\n  {rendered}"
        )
