"""The replay backend: recorded measurement tapes for hermetic runs.

A *tape* is a JSON file of ``(circuit, lut_size, sequence) -> (area,
delay)`` measurements.  In ``record`` mode the backend delegates every
measurement to a source backend (native by default) and appends the
result to the tape; in ``replay`` mode (the default) it answers
*exclusively* from the tape and aborts loudly on anything unrecorded —
a replayed run can never silently fall back to fresh synthesis, which
is exactly what makes it a hermetic CI substrate and a differential
oracle (see :mod:`repro.qor.backends.differential`).

Circuits are keyed by structural fingerprint
(:func:`~repro.qor.backends.base.aig_fingerprint`), not by name: a tape
recorded from circuit A refuses to answer for circuit B even when both
are called ``"adder"``.

Recording is meant for serial runs (tests, ``--jobs 1`` campaigns):
each recording backend instance owns its tape file, and parallel
workers recording to one path would race.  Replaying is safe at any
parallelism — the tape is read-only.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.aig.graph import AIG
from repro.qor.backends.base import (
    BackendError,
    SynthesisBackend,
    aig_fingerprint,
    canonical_backend_spec,
    resolve_backend,
)
from repro.registry import register_backend

#: Tape schema tag; bumped on incompatible layout changes.
TAPE_FORMAT = "repro-measurement-tape-v1"

_SEQUENCE_JOIN = "|"  # same joiner the persistent QoR cache uses


class TapeMismatch(BackendError):
    """The tape does not cover the requested circuit or sequence."""


def _sequence_key(sequence: Sequence[str]) -> str:
    return _SEQUENCE_JOIN.join(sequence)


@register_backend("replay")
class ReplayBackend(SynthesisBackend):
    """Record measurements to a JSON tape, or replay them hermetically.

    Parameters
    ----------
    tape:
        Path of the tape file.  Must exist in ``replay`` mode; created
        (parents included) on the first recorded measurement in
        ``record`` mode.
    mode:
        ``"replay"`` (default) answers only from the tape; ``"record"``
        measures through ``source`` and appends to the tape.
    source:
        Backend spec measurements are recorded from (``record`` mode
        only); defaults to ``native``.
    """

    key = "replay"

    def __init__(
        self,
        tape: Union[str, "os.PathLike[str]"],
        mode: str = "replay",
        source: object = None,
    ) -> None:
        if mode not in ("replay", "record"):
            raise ValueError(
                f"replay backend mode must be 'replay' or 'record', got {mode!r}"
            )
        self.tape = str(tape)
        self.mode = mode
        self._source_spec = canonical_backend_spec(
            source if source is not None else "native"
        )
        self._source: Optional[SynthesisBackend] = None
        self._data: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, object]:
        params: Dict[str, object] = {"tape": self.tape}
        if self.mode != "replay":
            params["mode"] = self.mode
        if self._source_spec != "native":
            params["source"] = self._source_spec
        return params

    @property
    def cache_namespace(self) -> str:
        # One namespace for all tapes: the tape *path* is transport, not
        # measurement semantics, and recorded pairs must never leak into
        # the native namespace (the tape's source backend may not be
        # native).
        return "replay"

    # ------------------------------------------------------------------
    # Tape IO
    # ------------------------------------------------------------------
    def _empty_tape(self) -> Dict[str, object]:
        return {
            "format": TAPE_FORMAT,
            "source": self._source_spec,
            "circuits": {},
        }

    def _load(self) -> Dict[str, object]:
        if self._data is not None:
            return self._data
        path = Path(self.tape)
        if not path.exists():
            if self.mode == "record":
                self._data = self._empty_tape()
                return self._data
            raise BackendError(
                f"replay backend: tape {self.tape!r} does not exist; record "
                "one first (mode='record' or the CLI's --backend record:TAPE)"
            )
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise BackendError(
                f"replay backend: tape {self.tape!r} is unreadable: {error}"
            ) from error
        if not isinstance(data, dict) or data.get("format") != TAPE_FORMAT:
            raise BackendError(
                f"replay backend: tape {self.tape!r} is not a "
                f"{TAPE_FORMAT!r} file"
            )
        self._data = data
        return data

    def save(self) -> Path:
        """Write the tape atomically (tmp file + rename) and return its path."""
        data = self._load()
        path = Path(self.tape)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2, sort_keys=True,
                          allow_nan=False)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def _circuits(self) -> Dict[str, Dict[str, object]]:
        circuits = self._load().setdefault("circuits", {})
        assert isinstance(circuits, dict)
        return circuits

    @staticmethod
    def _circuit_key(aig: AIG, lut_size: int) -> str:
        return f"{aig_fingerprint(aig)}:lut{int(lut_size)}"

    def measure(
        self, aig: AIG, sequence: Sequence[str], lut_size: int
    ) -> Tuple[int, int]:
        names = tuple(sequence)
        if self.mode == "record":
            return self._record(aig, names, lut_size)
        return self._replay(aig, names, lut_size)

    def _record(
        self, aig: AIG, names: Tuple[str, ...], lut_size: int
    ) -> Tuple[int, int]:
        if self._source is None:
            self._source = resolve_backend(self._source_spec)
        area, delay = self._source.measure(aig, names, lut_size)
        circuits = self._circuits()
        entry = circuits.setdefault(
            self._circuit_key(aig, lut_size),
            {"circuit": aig.name, "lut_size": int(lut_size), "entries": {}},
        )
        entries = entry.setdefault("entries", {})
        assert isinstance(entries, dict)
        entries[_sequence_key(names)] = [int(area), int(delay)]
        self.save()
        return int(area), int(delay)

    def _replay(
        self, aig: AIG, names: Tuple[str, ...], lut_size: int
    ) -> Tuple[int, int]:
        circuits = self._circuits()
        circuit_key = self._circuit_key(aig, lut_size)
        entry = circuits.get(circuit_key)
        if entry is None:
            recorded = sorted(
                f"{value.get('circuit', '?')} ({key.split(':')[0][:12]}…)"
                for key, value in circuits.items()
                if isinstance(value, dict)
            )
            raise TapeMismatch(
                f"tape {self.tape!r} was not recorded for circuit "
                f"{aig.name!r} at lut{lut_size} (fingerprint "
                f"{circuit_key.split(':')[0][:12]}…); it covers: "
                f"{recorded or ['nothing']}"
            )
        entries = entry.get("entries", {})
        assert isinstance(entries, dict)
        pair = entries.get(_sequence_key(names))
        if pair is None:
            raise TapeMismatch(
                f"tape {self.tape!r} has no measurement for sequence "
                f"{list(names)!r} on circuit {aig.name!r} at lut{lut_size} "
                f"({len(entries)} recorded sequences); replay never falls "
                "back to fresh synthesis — re-record the tape"
            )
        area, delay = pair  # type: ignore[misc]
        return int(area), int(delay)
