"""The :class:`SynthesisBackend` protocol — sequence → ``(area, delay)``.

The paper measures QoR by running a synthesis sequence through ABC's
optimisation + LUT-mapping flow.  This module makes *what runs that
flow* a configuration choice: a backend is any object that can measure

    ``measure(aig, sequence, lut_size) -> (area, delay)``

and name itself with a canonical, picklable ``backend_spec`` string.
:class:`repro.qor.QoREvaluator` routes every measurement — the reference
flow, the initial mapping and each tested sequence — through its
backend, so the whole stack above (engine, campaigns, CLI) selects a
backend by spec string exactly the way it selects an objective.

Built-in backends (all registered in :data:`repro.registry.BACKENDS`
and addressable by spec from JSON campaigns and the CLI):

=========== ==========================================================
``native``  the in-repo python substrate (default, bit-identical to
            the pre-backend evaluator)
``replay``  records/replays measurement tapes to JSON — hermetic tests
            and CI without synthesis work
``abc``     subprocess adapter around an external ``abc`` binary,
            guarded by the deadline/retry machinery
=========== ==========================================================

A **spec** is the JSON-round-trippable form: the bare key string for
parameterless backends (``"native"``), or a dict with the key under
``"backend"`` plus its parameters (``{"backend": "replay", "tape":
"runs/tape.json"}``).  :func:`resolve_backend` accepts a spec, a
:class:`SynthesisBackend` instance, or ``None`` (→ ``native``).

Cache namespaces
----------------
The persistent QoR cache stores raw ``(area, delay)`` pairs keyed by
circuit + LUT size.  Different backends can legitimately measure
different numbers for the same sequence (the python substrate is not
gate-identical to real ABC), so each non-native backend appends its
:attr:`~SynthesisBackend.cache_namespace` tag to the cache key
(``sha256:<hash>:lut6:abc``).  The native namespace is the empty string
— native keys are unchanged, so every existing cache stays valid.

Custom backends register a factory without touching this module::

    from repro.registry import register_backend

    @register_backend("yosys")
    class YosysBackend(SynthesisBackend):
        key = "yosys"
        def measure(self, aig, sequence, lut_size):
            ...
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple, Union

from repro.aig.graph import AIG
from repro.registry import BACKENDS, RegistryError

BackendSpec = Union[str, Dict[str, object]]

DEFAULT_BACKEND_KEY = "native"


class BackendError(RuntimeError):
    """A synthesis backend could not produce a measurement."""


class BackendUnavailable(BackendError):
    """The backend's external dependency is missing on this host."""


def aig_fingerprint(aig: AIG) -> str:
    """Stable structural hash of an AIG (used as a persistent-cache key).

    Two structurally identical AIGs — e.g. the same generated benchmark
    circuit built in two different processes — hash to the same value.
    (Canonical home of the helper historically exported as
    :func:`repro.qor.evaluator.aig_fingerprint`, which re-exports it.)
    """
    digest = hashlib.sha256()
    digest.update(aig.name.encode("utf-8"))
    for node in aig.nodes():
        digest.update(
            f"{node.var}:{node.kind}:{node.fanin0}:{node.fanin1}".encode("utf-8")
        )
    for po in aig.pos:
        digest.update(f"po:{po}".encode("utf-8"))
    return digest.hexdigest()


class SynthesisBackend(ABC):
    """One way of measuring ``sequence -> (area, delay)`` on a circuit.

    Subclasses implement :meth:`measure` and set :attr:`key`; everything
    else (canonical spec, cache namespace, equality) derives from those
    plus :meth:`params`.  Backends must be *deterministic*: the same
    ``(aig, sequence, lut_size)`` always measures the same pair — the
    persistent QoR cache and the campaign resume machinery both rely on
    it.
    """

    #: Registry key (``"native"``, ``"replay"``, ``"abc"``, ...).
    key: str = ""

    @abstractmethod
    def measure(
        self, aig: AIG, sequence: Sequence[str], lut_size: int
    ) -> Tuple[int, int]:
        """Measure ``(area, delay)`` of ``sequence`` applied to ``aig``.

        ``sequence`` is a tuple of canonical operation names (may be
        empty — the initial mapping of the unoptimised circuit); the
        result is the post-``lut_size``-LUT-mapping LUT count and level
        count.  Raises :class:`BackendError` when no measurement can be
        produced.
        """

    def params(self) -> Dict[str, object]:
        """JSON-serialisable constructor parameters (spec round trip)."""
        return {}

    def spec(self) -> BackendSpec:
        """This backend's spec: bare key, or dict for parameterised ones."""
        params = self.params()
        if not params:
            return self.key
        payload: Dict[str, object] = {"backend": self.key}
        payload.update(params)
        return payload

    @property
    def backend_spec(self) -> str:
        """Canonical string spec (see :func:`canonical_backend_spec`)."""
        return canonical_backend_spec(self.spec())

    @property
    def cache_namespace(self) -> str:
        """Tag appended to persistent-QoR-cache keys for this backend.

        The empty string means "share the native namespace" — only the
        native backend may claim it, since cached pairs from different
        measurement substrates must never mix.  The default is the
        backend's slug, which for parameterised backends includes a
        content hash of the params; backends whose parameters cannot
        change measurements (e.g. a tape *path*) should override this
        with their bare key.
        """
        return backend_slug(self.spec())

    def available(self) -> bool:
        """Whether this backend can measure on this host right now."""
        return True

    def availability_note(self) -> str:
        """Human-readable reason shown when :meth:`available` is False."""
        return ""

    # Identity follows the canonical spec: two backends with the same
    # spec are interchangeable by construction (determinism contract).
    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.backend_spec})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SynthesisBackend):
            return NotImplemented
        return self.backend_spec == other.backend_spec

    def __hash__(self) -> int:
        return hash((SynthesisBackend, self.backend_spec))


def resolve_backend(
    spec: Union[BackendSpec, SynthesisBackend, None]
) -> SynthesisBackend:
    """Build a :class:`SynthesisBackend` from a spec (or pass one through).

    Accepts ``None`` (the default ``native``), a key string, a params
    dict with the key under ``"backend"``, a JSON-encoded dict string
    (the canonical wire form used inside picklable evaluator specs), or
    a :class:`SynthesisBackend` instance.
    """
    if spec is None:
        spec = DEFAULT_BACKEND_KEY
    if isinstance(spec, SynthesisBackend):
        return spec
    if isinstance(spec, str) and spec.lstrip().startswith("{"):
        spec = json.loads(spec)
    if isinstance(spec, str):
        key: str = spec
        params: Dict[str, object] = {}
    elif isinstance(spec, dict):
        params = dict(spec)
        raw_key = params.pop("backend", None)
        if not isinstance(raw_key, str):
            raise RegistryError(
                f"backend spec {spec!r} must name its key under 'backend'"
            )
        key = raw_key
    else:
        raise TypeError(f"cannot resolve a backend from {spec!r}")
    factory = BACKENDS.get(key)
    backend = factory(**params)
    if not isinstance(backend, SynthesisBackend):
        raise TypeError(
            f"backend factory for {key!r} returned {backend!r}, "
            "not a SynthesisBackend"
        )
    return backend


def canonical_backend_spec(
    spec: Union[BackendSpec, SynthesisBackend, None]
) -> str:
    """Deterministic string form of a spec (hashable, picklable, tiny).

    Mirrors :func:`repro.qor.objectives.canonical_spec_string`: bare key
    strings stay themselves, parameterised specs become sorted-key JSON.
    """
    if spec is None:
        return DEFAULT_BACKEND_KEY
    if isinstance(spec, SynthesisBackend):
        spec = spec.spec()
    if isinstance(spec, str) and spec.lstrip().startswith("{"):
        spec = json.loads(spec)
    if isinstance(spec, str):
        return spec
    return json.dumps(spec, sort_keys=True, allow_nan=False)


def backend_slug(spec: Union[BackendSpec, SynthesisBackend, None]) -> str:
    """Filename-safe identifier of a backend spec.

    Bare keys pass through (``"abc"``); parameterised specs get a short
    content hash (``"replay-1a2b3c"``) so distinct configurations never
    collide in cell ids, run directories or cache namespaces.
    """
    canonical = canonical_backend_spec(spec)
    if not canonical.lstrip().startswith("{"):
        return canonical
    key = json.loads(canonical).get("backend", "backend")
    digest = hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:6]
    return f"{key}-{digest}"


def parse_backend_argument(text: str) -> BackendSpec:
    """Parse the CLI's ``--backend`` argument into a spec.

    Accepts a bare key (``native``, ``abc``), the tape shorthands
    ``replay:TAPE`` / ``record:TAPE``, or inline JSON
    (``{"backend": "abc", "binary": "/opt/abc/abc"}``).
    """
    text = text.strip()
    if text.startswith("{"):
        parsed = json.loads(text)
        if not isinstance(parsed, dict):
            raise ValueError(f"backend JSON must be an object, got {text!r}")
        return parsed
    if ":" in text:
        key, _, tape = text.partition(":")
        key = key.strip()
        tape = tape.strip()
        if key not in ("replay", "record") or not tape:
            raise ValueError(
                f"only 'replay:TAPE' and 'record:TAPE' take ':' arguments, "
                f"got {text!r}; use JSON for parameterised custom backends"
            )
        spec: Dict[str, object] = {"backend": "replay", "tape": tape}
        if key == "record":
            spec["mode"] = "record"
        return spec
    return text
