"""The native backend: the in-repo python synthesis substrate.

This is the default backend and the reference implementation of the
measurement contract: apply the sequence with
:func:`repro.synth.operations.apply_sequence`, map the result with
:class:`repro.mapping.lut_mapper.LutMapper`, and report the mapping's
LUT count and level count.  It is bit-identical to the pre-backend
:class:`~repro.qor.evaluator.QoREvaluator` paths it replaced — golden
trajectories and persistent-cache contents are unchanged — and its
:attr:`cache_namespace` is the empty string, so existing cache keys
stay valid.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.aig.graph import AIG
from repro.mapping.lut_mapper import LutMapper
from repro.qor.backends.base import SynthesisBackend
from repro.registry import register_backend
from repro.synth.operations import apply_sequence


@register_backend("native")
class NativeBackend(SynthesisBackend):
    """Measure with the in-repo python substrate (default)."""

    key = "native"

    def __init__(self) -> None:
        # One mapper per LUT size, reused across measurements: mapper
        # construction is cheap but not free, and a backend instance
        # lives as long as its evaluator.
        self._mappers: Dict[int, LutMapper] = {}

    def _mapper(self, lut_size: int) -> LutMapper:
        mapper = self._mappers.get(lut_size)
        if mapper is None:
            mapper = LutMapper(lut_size=lut_size)
            self._mappers[lut_size] = mapper
        return mapper

    def measure(
        self, aig: AIG, sequence: Sequence[str], lut_size: int
    ) -> Tuple[int, int]:
        optimised = apply_sequence(aig, tuple(sequence))
        mapping = self._mapper(lut_size).map(optimised)
        return int(mapping.area), int(mapping.delay)

    @property
    def cache_namespace(self) -> str:
        # The native namespace is the unsuffixed one: every persistent
        # cache written before backends existed was measured natively.
        return ""
