"""The external-ABC backend: a subprocess adapter around a real ``abc``.

When an ABC binary is installed this backend measures sequences with
the real tool instead of the python substrate: the circuit is written
to a temporary BLIF file, ABC runs ``read → strash → <sequence> →
if -K <lut_size> → print_stats``, and the LUT count (``nd``) and level
count (``lev``) are parsed from the stats line.  Operation names in the
search alphabet are ABC-style command names already (``"rewrite -z"``),
so sequences pass through verbatim.

Every invocation is guarded by the fault-tolerance machinery from the
engine layer: a wall-clock deadline per call (both a ``subprocess``
timeout and the SIGALRM :func:`repro.engine.faults.deadline`, so a
wedged binary cannot hang a worker), and bounded retry with the
deterministic backoff of :class:`repro.engine.faults.RetryPolicy` for
transient launch failures.  Parse failures and non-zero exits are *not*
retried — ABC is deterministic, so re-running reproduces them.

Measurements from real ABC are not gate-identical to the python
substrate, so this backend gets its own persistent-cache namespace
(``…:lutN:abc``) and is the external oracle of the differential fuzz
mode (:mod:`repro.qor.backends.differential`).
"""

from __future__ import annotations

import re
import shutil
import subprocess  # noqa: S404 - the whole point of this adapter
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.aig.graph import AIG
from repro.qor.backends.base import (
    BackendError,
    BackendUnavailable,
    SynthesisBackend,
)
from repro.registry import register_backend

_STATS_ND = re.compile(r"\bnd\s*=\s*(\d+)")
_STATS_LEV = re.compile(r"\blev\s*=\s*(\d+)")

#: Per-call wall-clock deadline (seconds) when none is configured.
DEFAULT_ABC_TIMEOUT = 60.0


@register_backend("abc")
class ExternalABCBackend(SynthesisBackend):
    """Measure with an external ``abc`` binary (when installed).

    Parameters
    ----------
    binary:
        Name or path of the ABC executable (resolved via ``PATH``).
    timeout:
        Per-invocation wall-clock deadline in seconds.
    attempts:
        Total tries per measurement for *transient* failures (launch
        errors, timeouts); deterministic failures are never retried.
    """

    key = "abc"

    def __init__(
        self,
        binary: str = "abc",
        timeout: float = DEFAULT_ABC_TIMEOUT,
        attempts: int = 2,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.binary = str(binary)
        self.timeout = float(timeout)
        self.attempts = int(attempts)

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, object]:
        params: Dict[str, object] = {}
        if self.binary != "abc":
            params["binary"] = self.binary
        if self.timeout != DEFAULT_ABC_TIMEOUT:
            params["timeout"] = self.timeout
        if self.attempts != 2:
            params["attempts"] = self.attempts
        return params

    @property
    def cache_namespace(self) -> str:
        # All ABC configurations share one namespace: binary path,
        # timeout and retry budget are transport, not measurement
        # semantics (ABC itself is deterministic for these commands).
        return "abc"

    def resolved_binary(self) -> Optional[str]:
        return shutil.which(self.binary)

    def available(self) -> bool:
        return self.resolved_binary() is not None

    def availability_note(self) -> str:
        if self.available():
            return ""
        return f"external binary {self.binary!r} not found on PATH"

    # ------------------------------------------------------------------
    def _script(self, circuit_path: Path, sequence: Sequence[str],
                lut_size: int) -> str:
        commands = [f"read_blif {circuit_path}", "strash"]
        commands.extend(sequence)
        commands.append(f"if -K {int(lut_size)}")
        commands.append("print_stats")
        return "; ".join(commands)

    def _run_once(self, script: str) -> str:
        executable = self.resolved_binary()
        if executable is None:
            raise BackendUnavailable(
                f"abc backend: {self.availability_note()}; install ABC or "
                "select a different --backend"
            )
        # Both guards on purpose: the subprocess timeout kills the child,
        # the SIGALRM deadline (engine layer) bounds this caller even if
        # process reaping itself wedges.  faults imports lazily to keep
        # qor importable without the engine package initialised.
        from repro.engine.faults import deadline

        with deadline(self.timeout * 1.5, scope="abc-backend"):
            completed = subprocess.run(  # noqa: S603 - fixed argv, no shell
                [executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=self.timeout,
                check=False,
            )
        if completed.returncode != 0:
            raise BackendError(
                f"abc backend: {executable} exited with code "
                f"{completed.returncode} for script {script!r}: "
                f"{(completed.stderr or completed.stdout).strip()[:500]}"
            )
        return completed.stdout

    def _invoke(self, script: str) -> str:
        from repro.engine.faults import RetryPolicy

        policy = RetryPolicy(max_attempts=self.attempts)
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.attempts + 1):
            try:
                return self._run_once(script)
            except (subprocess.TimeoutExpired, OSError) as error:
                # Transient: a wedged or slow-to-launch child may succeed
                # on a clean retry.  Deterministic failures (BackendError
                # from a non-zero exit, parse errors) propagate at once.
                last_error = error
                if attempt < self.attempts:
                    time.sleep(policy.delay_for(attempt, key=script))
        raise BackendError(
            f"abc backend: {self.attempts} attempt(s) failed for script "
            f"{script!r}; last error: {last_error!r}"
        )

    @staticmethod
    def _parse_stats(output: str, script: str) -> Tuple[int, int]:
        # print_stats emits one line per network; the mapped network's is
        # the last (and only) one after `if`.
        area_matches = _STATS_ND.findall(output)
        level_matches = _STATS_LEV.findall(output)
        if not area_matches or not level_matches:
            raise BackendError(
                f"abc backend: could not parse 'nd =' / 'lev =' from "
                f"print_stats output for script {script!r}: {output[-500:]!r}"
            )
        return int(area_matches[-1]), int(level_matches[-1])

    def measure(
        self, aig: AIG, sequence: Sequence[str], lut_size: int
    ) -> Tuple[int, int]:
        from repro.aig.blif import write_blif

        names = tuple(sequence)
        with tempfile.TemporaryDirectory(prefix="repro-abc-") as tmp_dir:
            circuit_path = Path(tmp_dir) / "circuit.blif"
            write_blif(aig, circuit_path)
            script = self._script(circuit_path, names, lut_size)
            output = self._invoke(script)
        return self._parse_stats(output, script)
