"""Quality-of-results evaluation (Equation 1 of the paper)."""

from repro.qor.evaluator import QoREvaluator, QoRResult, SequenceEvaluation

__all__ = ["QoREvaluator", "QoRResult", "SequenceEvaluation"]
