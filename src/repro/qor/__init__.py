"""Quality-of-results evaluation (Equation 1 of the paper, pluggable)."""

from repro.qor.backends import (
    BackendError,
    ExternalABCBackend,
    NativeBackend,
    ReplayBackend,
    SynthesisBackend,
    resolve_backend,
)
from repro.qor.evaluator import QoREvaluator, QoRResult, SequenceEvaluation
from repro.qor.objectives import (
    AreaObjective,
    DelayObjective,
    Eq1Objective,
    Objective,
    WeightedObjective,
    parse_objective_argument,
    resolve_objective,
)

__all__ = [
    "QoREvaluator",
    "QoRResult",
    "SequenceEvaluation",
    "Objective",
    "Eq1Objective",
    "AreaObjective",
    "DelayObjective",
    "WeightedObjective",
    "resolve_objective",
    "parse_objective_argument",
    "SynthesisBackend",
    "BackendError",
    "NativeBackend",
    "ReplayBackend",
    "ExternalABCBackend",
    "resolve_backend",
]
