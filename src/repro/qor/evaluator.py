"""The QoR black box that all optimisers query.

Implements Equation (1) of the paper:

    QoR_C(seq) = Area_C(seq) / Area_C(ref) + Delay_C(seq) / Delay_C(ref)

where Area is the LUT count and Delay the LUT level count after K-LUT
mapping, and the reference is the ``resyn2`` flow.  The evaluator memoises
sequence evaluations because several optimisers (GA with elitism, trust
region restarts, greedy) re-visit sequences, and the paper counts *distinct
tested sequences* as the sample-complexity unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.graph import AIG
from repro.mapping.lut_mapper import LutMapper, MappingResult
from repro.synth.flows import RESYN2_SEQUENCE
from repro.synth.operations import apply_sequence, sequence_to_names


@dataclass(frozen=True)
class QoRResult:
    """Area/delay/QoR of one mapped network."""

    area: int
    delay: int
    qor: float


@dataclass
class SequenceEvaluation:
    """Full record of one black-box evaluation."""

    sequence: Tuple[str, ...]
    area: int
    delay: int
    qor: float
    qor_improvement: float
    """Relative improvement over the reference flow, in percent
    (``(QoR(ref_as_seq) - QoR(seq)) / QoR(ref_as_seq) * 100``); matches the
    numbers reported in the paper's Figure 3 table."""


class QoREvaluator:
    """Black-box QoR evaluator for a fixed circuit.

    Parameters
    ----------
    aig:
        The initial (unoptimised) circuit.
    lut_size:
        LUT input count used for mapping (the paper uses ``if -K 6``).
    reference_sequence:
        The reference flow defining the QoR denominators; defaults to
        ``resyn2`` as in the paper.
    cache:
        Whether to memoise evaluations by sequence.
    """

    def __init__(
        self,
        aig: AIG,
        lut_size: int = 6,
        reference_sequence: Optional[Sequence[str]] = None,
        cache: bool = True,
    ) -> None:
        self.aig = aig
        self.mapper = LutMapper(lut_size=lut_size)
        self.reference_sequence = tuple(
            reference_sequence if reference_sequence is not None else RESYN2_SEQUENCE
        )
        self._cache_enabled = cache
        self._cache: Dict[Tuple[str, ...], SequenceEvaluation] = {}
        self._num_evaluations = 0
        self.history: List[SequenceEvaluation] = []

        # Reference area/delay (denominators of Equation 1).
        reference_aig = apply_sequence(aig, self.reference_sequence)
        reference_mapping = self.mapper.map(reference_aig)
        self.reference_area = max(1, reference_mapping.area)
        self.reference_delay = max(1, reference_mapping.delay)
        # QoR of the reference itself is 2.0 by construction; the paper's
        # "% improvement over resyn2" is measured against this value.
        self.reference_qor = 2.0

        # Mapping of the unoptimised circuit, for Pareto plots ("init").
        initial_mapping = self.mapper.map(aig)
        self.initial_result = QoRResult(
            area=initial_mapping.area,
            delay=initial_mapping.delay,
            qor=self._qor(initial_mapping),
        )

    # ------------------------------------------------------------------
    @property
    def num_evaluations(self) -> int:
        """Number of distinct black-box evaluations performed so far."""
        return self._num_evaluations

    def _qor(self, mapping: MappingResult) -> float:
        return mapping.area / self.reference_area + mapping.delay / self.reference_delay

    def evaluate(self, sequence: Sequence[Union[str, int]]) -> SequenceEvaluation:
        """Evaluate a synthesis sequence; returns the full QoR record."""
        names = tuple(sequence_to_names(sequence))
        if self._cache_enabled and names in self._cache:
            return self._cache[names]
        optimised = apply_sequence(self.aig, names)
        mapping = self.mapper.map(optimised)
        qor = self._qor(mapping)
        improvement = (self.reference_qor - qor) / self.reference_qor * 100.0
        record = SequenceEvaluation(
            sequence=names,
            area=mapping.area,
            delay=mapping.delay,
            qor=qor,
            qor_improvement=improvement,
        )
        self._num_evaluations += 1
        self.history.append(record)
        if self._cache_enabled:
            self._cache[names] = record
        return record

    def qor(self, sequence: Sequence[Union[str, int]]) -> float:
        """QoR value of a sequence (the quantity BOiLS minimises)."""
        return self.evaluate(sequence).qor

    def negative_qor(self, sequence: Sequence[Union[str, int]]) -> float:
        """``-QoR`` — the quantity the GP surrogate models (maximisation)."""
        return -self.evaluate(sequence).qor

    def improvement(self, sequence: Sequence[Union[str, int]]) -> float:
        """Relative QoR improvement over the reference flow, in percent."""
        return self.evaluate(sequence).qor_improvement

    # ------------------------------------------------------------------
    def best_so_far(self) -> Optional[SequenceEvaluation]:
        """Best (lowest-QoR) evaluation seen so far, if any."""
        if not self.history:
            return None
        return min(self.history, key=lambda record: record.qor)

    def best_trajectory(self) -> List[float]:
        """Best-so-far QoR improvement after each evaluation (for curves)."""
        best = float("-inf")
        trajectory = []
        for record in self.history:
            best = max(best, record.qor_improvement)
            trajectory.append(best)
        return trajectory

    def reset_history(self) -> None:
        """Clear the evaluation history and counters (cache is kept)."""
        self.history = []
        self._num_evaluations = 0
