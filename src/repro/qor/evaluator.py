"""The QoR black box that all optimisers query.

By default implements Equation (1) of the paper:

    QoR_C(seq) = Area_C(seq) / Area_C(ref) + Delay_C(seq) / Delay_C(ref)

where Area is the LUT count and Delay the LUT level count after K-LUT
mapping, and the reference is the ``resyn2`` flow.  The figure of merit
is pluggable: pass any :class:`repro.qor.objectives.Objective` (or its
spec — ``"area"``, ``"delay"``, ``{"objective": "weighted", ...}``) as
``objective=`` and every QoR value, improvement percentage and optimiser
decision follows it instead.  Raw ``(area, delay)`` measurements are
objective-independent, and both cache layers key on them — so switching
objectives never invalidates cached synthesis work.

Evaluation-count semantics
--------------------------
The paper counts *distinct tested sequences* as the sample-complexity
unit, so the evaluator distinguishes two cache layers with different
accounting rules:

* **In-memory memoisation** (``cache=True``, per evaluator instance /
  per run): re-visiting an already-tested sequence is *free* — a memo
  hit neither increments :attr:`num_evaluations` nor appends a duplicate
  :attr:`history` row.  Several optimisers (GA with elitism, trust
  region restarts, greedy) re-visit sequences, and those revisits must
  not consume budget.
* **Persistent on-disk cache** (``persistent_cache=...``, shared across
  processes and across runs): a persistent hit skips the expensive
  synthesis + mapping *computation* but still counts as a black-box
  evaluation for the current run (it increments :attr:`num_evaluations`
  and is appended to :attr:`history`), because the sequence is being
  tested for the first time *in this run*.  :attr:`num_computed` and
  :attr:`num_persistent_hits` expose the split, so a warm cache shows up
  as ``num_computed == 0`` on a repeated run.

Batches of sequences can be scored through
:meth:`QoREvaluator.evaluate_many`; when an
:class:`repro.engine.EvaluationEngine` is attached via
:meth:`attach_engine` the uncached part of the batch is fanned out to a
worker pool, with results recorded in submission order so parallel and
serial runs are indistinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.graph import AIG
from repro.mapping.lut_mapper import LutMapper, MappingResult
from repro.qor.backends.base import (
    SynthesisBackend,
    aig_fingerprint,
    resolve_backend,
)
from repro.qor.objectives import Objective, canonical_spec_string, resolve_objective
from repro.synth.flows import RESYN2_SEQUENCE
from repro.synth.operations import sequence_to_names

# aig_fingerprint's canonical home moved to repro.qor.backends.base (the
# replay backend needs it without importing this module); the name stays
# re-exported here for existing callers.


def _validated_stats(
    pair: Sequence[object], label: str, floor: int
) -> Tuple[int, int]:
    """Validate a transported ``(area, delay)`` hand-off pair.

    Both transported stat pairs (``reference_stats``, ``initial_stats``)
    must be length-2, integer-valued and non-negative; the reference
    pair is additionally clamped to ≥ 1 (``floor=1``) because it forms
    the denominators of Equation 1.  Malformed hand-offs raise
    :class:`ValueError` loudly instead of computing garbage QoR.
    """
    try:
        raw_area, raw_delay = pair
    except (TypeError, ValueError):
        raise ValueError(
            f"{label} must be an (area, delay) pair, got {pair!r}"
        ) from None
    values: List[int] = []
    for field_name, raw in (("area", raw_area), ("delay", raw_delay)):
        try:
            value = int(raw)  # type: ignore[call-overload]
        except (TypeError, ValueError):
            raise ValueError(
                f"{label} {field_name} must be an integer, got {raw!r}"
            ) from None
        if value != raw:
            raise ValueError(
                f"{label} {field_name} must be integer-valued, got {raw!r}"
            )
        if value < 0:
            raise ValueError(
                f"{label} {field_name} must be non-negative, got {value}"
            )
        values.append(max(floor, value))
    return values[0], values[1]


@dataclass(frozen=True)
class QoRResult:
    """Area/delay/QoR of one mapped network."""

    area: int
    delay: int
    qor: float


@dataclass(frozen=True)
class SequenceEvaluation:
    """Full record of one black-box evaluation."""

    sequence: Tuple[str, ...]
    area: int
    delay: int
    qor: float
    qor_improvement: float
    """Relative improvement over the reference flow, in percent
    (``(QoR(ref_as_seq) - QoR(seq)) / QoR(ref_as_seq) * 100``); matches the
    numbers reported in the paper's Figure 3 table."""


class QoREvaluator:
    """Black-box QoR evaluator for a fixed circuit.

    Parameters
    ----------
    aig:
        The initial (unoptimised) circuit.
    lut_size:
        LUT input count used for mapping (the paper uses ``if -K 6``).
    reference_sequence:
        The reference flow defining the QoR denominators; defaults to
        ``resyn2`` as in the paper.
    cache:
        Whether to memoise evaluations by sequence (per-run memoisation;
        memo hits do not count towards :attr:`num_evaluations`).
    persistent_cache:
        Optional on-disk QoR cache shared across runs and processes
        (:class:`repro.engine.cache.PersistentQoRCache` or any object
        with the same ``get``/``put`` interface).  Persistent hits skip
        the computation but still count as evaluations — see the module
        docstring for the full semantics.
    cache_key:
        Key identifying this circuit + LUT size in the persistent cache;
        derived automatically from the AIG structure when omitted.  The
        key deliberately excludes the objective: cached ``(area, delay)``
        pairs are objective-independent.
    objective:
        Figure of merit mapping raw ``(area, delay)`` measurements to the
        scalar the optimisers minimise — an
        :class:`repro.qor.objectives.Objective` or its spec.  Defaults to
        the paper's Equation 1.
    reference_stats / initial_stats:
        Optional pre-measured ``(area, delay)`` pairs for the reference
        flow and the unoptimised circuit.  When provided, the
        corresponding mapping is skipped — warm pool workers receive the
        parent evaluator's measurements through the spec so each worker
        avoids re-running the reference synthesis flow.  Both mappings
        are deterministic functions of the circuit, so the hand-off
        cannot change any computed QoR value.  Both pairs are validated
        (non-negative integers; the reference clamped ≥ 1) and malformed
        hand-offs raise :class:`ValueError`.
    backend:
        The synthesis substrate measuring ``sequence -> (area, delay)``
        — a :class:`repro.qor.backends.SynthesisBackend` or its spec
        (``"native"``, ``"abc"``, ``{"backend": "replay", "tape": ...}``).
        Defaults to the native python substrate, bit-identical to the
        pre-backend evaluator.  Non-native backends get their own
        persistent-cache namespace (see :attr:`cache_key`).
    """

    def __init__(
        self,
        aig: AIG,
        lut_size: int = 6,
        reference_sequence: Optional[Sequence[str]] = None,
        cache: bool = True,
        persistent_cache: Optional[object] = None,
        cache_key: Optional[str] = None,
        objective: Optional[object] = None,
        reference_stats: Optional[Tuple[int, int]] = None,
        initial_stats: Optional[Tuple[int, int]] = None,
        backend: Optional[object] = None,
    ) -> None:
        self.aig = aig
        self.lut_size = lut_size
        self.objective: Objective = resolve_objective(objective)
        self.backend: SynthesisBackend = resolve_backend(backend)
        self.mapper = LutMapper(lut_size=lut_size)
        self.reference_sequence = tuple(
            reference_sequence if reference_sequence is not None else RESYN2_SEQUENCE
        )
        self._cache_enabled = cache
        self._cache: Dict[Tuple[str, ...], SequenceEvaluation] = {}
        self._persistent = persistent_cache
        self._cache_key = cache_key
        self._engine: Optional[object] = None
        self._compute_guard: Optional[object] = None
        self._num_evaluations = 0
        self._num_computed = 0
        self._num_persistent_hits = 0
        # Deferred persistent writes (see defer_persistent_writes()):
        # buffered (sequence, area, delay) rows flushed in one put_many.
        self._defer_persistent = False
        self._pending_writes: List[Tuple[Tuple[str, ...], int, int]] = []
        self._pending_index: Dict[Tuple[str, ...], Tuple[int, int]] = {}
        self.history: List[SequenceEvaluation] = []

        # Reference area/delay (denominators of Equation 1).
        if reference_stats is not None:
            self.reference_area, self.reference_delay = _validated_stats(
                reference_stats, "reference_stats", floor=1)
        else:
            reference_area, reference_delay = self.backend.measure(
                aig, self.reference_sequence, lut_size)
            self.reference_area = max(1, int(reference_area))
            self.reference_delay = max(1, int(reference_delay))
        # QoR of the reference itself (2.0 by construction for Equation 1);
        # the paper's "% improvement over resyn2" is measured against it.
        self.reference_qor = self.objective.reference_value()

        # Mapping of the unoptimised circuit, for Pareto plots ("init").
        if initial_stats is not None:
            initial_area, initial_delay = _validated_stats(
                initial_stats, "initial_stats", floor=0)
        else:
            initial_area, initial_delay = self.backend.measure(
                aig, (), lut_size)
        self.initial_result = QoRResult(
            area=int(initial_area),
            delay=int(initial_delay),
            qor=self._qor_value(int(initial_area), int(initial_delay)),
        )

    # ------------------------------------------------------------------
    @property
    def num_evaluations(self) -> int:
        """Distinct black-box evaluations performed in this run.

        This is the paper's sample-complexity unit: in-memory memo hits
        do not count, persistent-cache hits do (see module docstring).
        """
        return self._num_evaluations

    @property
    def num_computed(self) -> int:
        """Evaluations in this run that required actual synthesis+mapping."""
        return self._num_computed

    @property
    def num_persistent_hits(self) -> int:
        """Evaluations in this run served from the persistent cache."""
        return self._num_persistent_hits

    @property
    def cache_key(self) -> str:
        """Persistent-cache key for this circuit + LUT size (+ backend).

        Objective-independent on purpose: the cache stores raw
        ``(area, delay)`` pairs, so runs under different objectives share
        every cached synthesis + mapping computation.  It is *not*
        backend-independent: different substrates can measure different
        pairs for the same sequence, so every non-native backend appends
        its :attr:`~repro.qor.backends.SynthesisBackend.cache_namespace`
        tag.  The native namespace is the historical unsuffixed key, so
        existing caches stay valid.
        """
        if self._cache_key is None:
            self._cache_key = f"{aig_fingerprint(self.aig)}:lut{self.lut_size}"
        namespace = self.backend.cache_namespace
        if namespace:
            return f"{self._cache_key}:{namespace}"
        return self._cache_key

    @property
    def objective_spec(self) -> str:
        """Canonical string spec of this evaluator's objective."""
        return canonical_spec_string(self.objective)

    @property
    def backend_spec(self) -> str:
        """Canonical string spec of this evaluator's synthesis backend."""
        return self.backend.backend_spec

    # ------------------------------------------------------------------
    # Deferred persistent writes
    # ------------------------------------------------------------------
    def defer_persistent_writes(self, defer: bool = True) -> None:
        """Buffer persistent-cache writes instead of committing per entry.

        With deferral on, fresh computations are collected in memory and
        written in a single :meth:`PersistentQoRCache.put_many`
        transaction by :meth:`flush_persistent_writes`.  The grid runner
        uses this to commit once per cell rather than once per
        evaluation, which removes SQLite writer contention at high
        ``--jobs``.  Turning deferral off flushes any buffered rows.

        With no persistent cache attached this is a no-op: buffering
        rows that could never be committed would make
        :meth:`flush_persistent_writes` report silently-dropped rows as
        written.
        """
        if self._defer_persistent and not defer:
            self.flush_persistent_writes()
        self._defer_persistent = bool(defer) and self._persistent is not None

    def flush_persistent_writes(self) -> int:
        """Commit buffered rows in one transaction; returns the row count.

        The count is the number of rows actually handed to the
        persistent cache: with no cache attached nothing was (or could
        have been) buffered, and the return value is 0.
        """
        if self._persistent is None:
            # Defensive: deferral is refused without a cache, so the
            # buffer is empty — but never report unwritten rows.
            self._pending_writes = []
            self._pending_index = {}
            return 0
        count = len(self._pending_writes)
        if count:
            self._persistent.put_many(self.cache_key, self._pending_writes)
        self._pending_writes = []
        self._pending_index = {}
        return count

    @property
    def num_pending_persistent_writes(self) -> int:
        return len(self._pending_writes)

    # ------------------------------------------------------------------
    # Engine attachment
    # ------------------------------------------------------------------
    def attach_engine(self, engine: Optional[object]) -> None:
        """Attach an evaluation engine used to score batches in parallel.

        ``engine`` must expose ``compute_batch(sequences) -> records``
        (see :class:`repro.engine.EvaluationEngine`); pass ``None`` to
        detach and return to in-process computation.
        """
        self._engine = engine

    @property
    def engine(self) -> Optional[object]:
        return self._engine

    # ------------------------------------------------------------------
    # Core computation (pure, no recording)
    # ------------------------------------------------------------------
    def _qor_value(self, area: int, delay: int) -> float:
        """The configured objective over reference-normalised area/delay."""
        return self.objective.value(area, delay,
                                    self.reference_area, self.reference_delay)

    def _qor(self, mapping: MappingResult) -> float:
        return self._qor_value(mapping.area, mapping.delay)

    def _make_record(self, names: Tuple[str, ...], area: int, delay: int) -> SequenceEvaluation:
        qor = self._qor_value(area, delay)
        improvement = (self.reference_qor - qor) / self.reference_qor * 100.0
        return SequenceEvaluation(
            sequence=names, area=area, delay=delay, qor=qor,
            qor_improvement=improvement,
        )

    def set_compute_guard(self, guard: Optional[object] = None) -> None:
        """Install a wrapper around every fresh computation.

        ``guard(names, thunk)`` is called instead of the raw synthesis
        whenever :meth:`compute` runs; the fault-tolerance layer uses it
        to enforce per-evaluation deadlines and to inject scheduled
        faults (see :mod:`repro.engine.faults`).  ``None`` removes it.
        """
        self._compute_guard = guard

    def _compute_raw(self, names: Tuple[str, ...]) -> SequenceEvaluation:
        area, delay = self.backend.measure(self.aig, names, self.lut_size)
        return self._make_record(names, int(area), int(delay))

    def compute(self, sequence: Sequence[Union[str, int]]) -> SequenceEvaluation:
        """Synthesise + map a sequence and return its record.

        Pure function of the sequence: does **not** touch the caches,
        the history or the evaluation counters.  This is the unit of work
        the evaluation engine ships to worker processes.
        """
        names = tuple(sequence_to_names(sequence))
        if self._compute_guard is not None:
            return self._compute_guard(names, lambda: self._compute_raw(names))  # type: ignore[operator]
        return self._compute_raw(names)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _persistent_lookup(self, names: Tuple[str, ...]) -> Optional[SequenceEvaluation]:
        if self._persistent is None:
            return None
        pending = self._pending_index.get(names)
        if pending is not None:
            # Computed earlier in this run but not yet committed; serve it
            # as a persistent hit so accounting matches the eager path.
            return self._make_record(names, pending[0], pending[1])
        hit = self._persistent.get(self.cache_key, names)
        if hit is None:
            return None
        area, delay = hit
        return self._make_record(names, int(area), int(delay))

    def _record(
        self,
        names: Tuple[str, ...],
        record: SequenceEvaluation,
        from_persistent: bool,
    ) -> None:
        """Count one evaluation and store it in both cache layers."""
        self._num_evaluations += 1
        if from_persistent:
            self._num_persistent_hits += 1
        else:
            self._num_computed += 1
        self.history.append(record)
        if self._cache_enabled:
            self._cache[names] = record
        if self._persistent is not None and not from_persistent:
            if self._defer_persistent:
                self._pending_writes.append((names, record.area, record.delay))
                self._pending_index[names] = (record.area, record.delay)
            else:
                self._persistent.put(self.cache_key, names, record.area, record.delay)

    # ------------------------------------------------------------------
    # Public evaluation API
    # ------------------------------------------------------------------
    def evaluate(self, sequence: Sequence[Union[str, int]]) -> SequenceEvaluation:
        """Evaluate a synthesis sequence; returns the full QoR record.

        Memo hits return the cached record without counting; persistent
        hits and fresh computations count (module docstring has the full
        accounting rules).
        """
        names = tuple(sequence_to_names(sequence))
        if self._cache_enabled and names in self._cache:
            return self._cache[names]
        record = self._persistent_lookup(names)
        from_persistent = record is not None
        if record is None:
            record = self.compute(names)
        self._record(names, record, from_persistent)
        return record

    def evaluate_many(
        self, sequences: Sequence[Sequence[Union[str, int]]]
    ) -> List[SequenceEvaluation]:
        """Evaluate a batch of sequences, in parallel when possible.

        Results are returned positionally and recorded (counters, history,
        caches) in submission order, so a batched run is indistinguishable
        from the equivalent sequence of :meth:`evaluate` calls.  Uncached
        sequences are dispatched to the attached engine's worker pool when
        one is attached, and computed in-process otherwise.
        """
        names_list = [tuple(sequence_to_names(seq)) for seq in sequences]
        results: List[Optional[SequenceEvaluation]] = [None] * len(names_list)
        # plan: (position, names, source) for every occurrence that needs
        # recording; "alias" marks an in-batch duplicate of an earlier
        # occurrence (memo semantics: returned but not re-recorded).
        plan: List[Tuple[int, Tuple[str, ...], str]] = []
        scheduled: Dict[Tuple[str, ...], int] = {}
        persistent_records: Dict[Tuple[str, ...], SequenceEvaluation] = {}
        for position, names in enumerate(names_list):
            if self._cache_enabled:
                if names in self._cache:
                    results[position] = self._cache[names]
                    continue
                if names in scheduled:
                    plan.append((position, names, "alias"))
                    continue
                scheduled[names] = position
            hit = self._persistent_lookup(names)
            if hit is not None:
                persistent_records[names] = hit
                plan.append((position, names, "persistent"))
            else:
                plan.append((position, names, "compute"))

        to_compute = [names for _, names, source in plan if source == "compute"]
        if to_compute:
            if self._engine is not None:
                computed = list(self._engine.compute_batch(to_compute))
            else:
                computed = [self.compute(names) for names in to_compute]
            if len(computed) != len(to_compute):
                raise RuntimeError(
                    "engine returned %d records for %d sequences"
                    % (len(computed), len(to_compute))
                )
        else:
            computed = []

        computed_iter = iter(computed)
        resolved: Dict[Tuple[str, ...], SequenceEvaluation] = {}
        for position, names, source in plan:
            if source == "alias":
                results[position] = resolved[names]
                continue
            if source == "persistent":
                record = persistent_records[names]
            else:
                record = next(computed_iter)
            self._record(names, record, from_persistent=(source == "persistent"))
            resolved[names] = record
            results[position] = record
        return results  # type: ignore[return-value]

    def qor(self, sequence: Sequence[Union[str, int]]) -> float:
        """QoR value of a sequence (the quantity BOiLS minimises)."""
        return self.evaluate(sequence).qor

    def negative_qor(self, sequence: Sequence[Union[str, int]]) -> float:
        """``-QoR`` — the quantity the GP surrogate models (maximisation)."""
        return -self.evaluate(sequence).qor

    def improvement(self, sequence: Sequence[Union[str, int]]) -> float:
        """Relative QoR improvement over the reference flow, in percent."""
        return self.evaluate(sequence).qor_improvement

    # ------------------------------------------------------------------
    def best_so_far(self) -> Optional[SequenceEvaluation]:
        """Best (lowest-QoR) evaluation seen so far, if any."""
        if not self.history:
            return None
        return min(self.history, key=lambda record: record.qor)

    def best_trajectory(self) -> List[float]:
        """Best-so-far QoR improvement after each evaluation (for curves)."""
        best = float("-inf")
        trajectory = []
        for record in self.history:
            best = max(best, record.qor_improvement)
            trajectory.append(best)
        return trajectory

    def restore_history(
        self,
        records: Sequence[SequenceEvaluation],
        *,
        num_computed: Optional[int] = None,
        num_persistent_hits: int = 0,
    ) -> None:
        """Restore a previous run segment's history (checkpoint resume).

        Replaces the history and counters with ``records`` and — when
        in-memory memoisation is enabled — repopulates the memo cache
        from them, so that re-visits of pre-checkpoint sequences stay
        free exactly as they would have in the uninterrupted run.  The
        counter split defaults to "everything was computed"; pass the
        checkpointed ``num_computed``/``num_persistent_hits`` to keep
        the diagnostic split exact.  (Pending deferred persistent writes
        of the interrupted segment are *not* recreated: the persistent
        cache is an optimisation layer and never affects results.)
        """
        records = list(records)
        self.history = records
        self._num_evaluations = len(records)
        if num_computed is None:
            num_computed = len(records) - num_persistent_hits
        self._num_computed = int(num_computed)
        self._num_persistent_hits = int(num_persistent_hits)
        if self._cache_enabled:
            for record in records:
                self._cache[record.sequence] = record

    def reset_history(self, clear_cache: bool = False) -> None:
        """Clear the evaluation history and counters.

        The in-memory memoisation cache is kept by default (so repeated
        runs on the same evaluator stay cheap); pass ``clear_cache=True``
        to start the next run from a clean slate — required when run
        results must be independent of what previous runs evaluated (the
        parallel grid runner does this so that ``--jobs 1`` and
        ``--jobs N`` produce identical tables).  The persistent on-disk
        cache is never cleared by this method.
        """
        self.history = []
        self._num_evaluations = 0
        self._num_computed = 0
        self._num_persistent_hits = 0
        if clear_cache:
            self._cache = {}
