"""Pluggable QoR objectives — Equation (1) and its variants.

The paper's figure of merit (Equation 1) is::

    QoR(seq) = Area(seq) / Area(ref) + Delay(seq) / Delay(ref)

but the paper itself notes BOiLS "is not tied to a specific black-box and
can be utilised with other quantities of interest, e.g. area or delay
disjointly by simply modifying Equation (1)".  This module makes that a
configuration choice: an :class:`Objective` maps one raw measurement
``(area, delay)`` plus the reference ``(area_ref, delay_ref)`` to the
scalar the optimisers minimise.

Built-in objectives (all registered in :data:`repro.registry.OBJECTIVES`
and addressable by spec from JSON campaigns and the CLI):

========== =====================================================
``eq1``    the paper's Equation 1 (default)
``area``   ``area / area_ref`` — LUT count only
``delay``  ``delay / delay_ref`` — LUT levels only
``weighted`` ``w_area * area/area_ref + w_delay * delay/delay_ref``
========== =====================================================

Objectives are *pure views over raw measurements*: the persistent QoR
cache stores ``(area, delay)`` pairs, never objective values, so a cache
populated under one objective is fully warm under any other — switching
objectives never invalidates cached synthesis work.

A **spec** is the JSON-round-trippable form: the bare key string for
parameterless objectives (``"area"``), or a dict with the key under
``"objective"`` plus its parameters (``{"objective": "weighted",
"w_area": 2.0, "w_delay": 1.0}``).  :func:`resolve_objective` accepts a
spec, an :class:`Objective` instance, or ``None`` (→ ``eq1``).

Custom objectives register a factory without touching this module::

    from repro.registry import register_objective

    @register_objective("area-squared")
    def make_area_squared() -> Objective:
        class AreaSquared(Objective):
            key = "area-squared"
            def value(self, area, delay, area_ref, delay_ref):
                return (area / area_ref) ** 2
        return AreaSquared()
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Dict, Optional, Union

from repro.registry import OBJECTIVES, RegistryError, register_objective

ObjectiveSpec = Union[str, Dict[str, object]]


class Objective(ABC):
    """Scalar figure of merit over one mapped network (lower is better)."""

    #: Registry key; parameterised objectives combine it with params().
    key: str = "objective"

    @abstractmethod
    def value(self, area: float, delay: float,
              area_ref: float, delay_ref: float) -> float:
        """The objective value of a measurement, given the reference."""

    def reference_value(self) -> float:
        """Objective value of the reference itself (improvement baseline).

        ``value(area_ref, delay_ref, area_ref, delay_ref)`` by
        construction; Equation 1 gives exactly 2.0.
        """
        return self.value(1.0, 1.0, 1.0, 1.0)

    def params(self) -> Dict[str, object]:
        """JSON-serialisable parameters; empty for parameterless objectives."""
        return {}

    def spec(self) -> ObjectiveSpec:
        """The JSON-round-trippable spec reconstructing this objective."""
        params = self.params()
        if not params:
            return self.key
        spec: Dict[str, object] = {"objective": self.key}
        spec.update(params)
        return spec

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Objective) and other.spec() == self.spec()

    def __hash__(self) -> int:
        return hash(canonical_spec_string(self.spec()))


class Eq1Objective(Objective):
    """The paper's Equation 1: normalised area plus normalised delay.

    Kept as a dedicated class (rather than ``weighted(1, 1)``) so the
    default path stays literally the seed arithmetic — bit-identical to
    every pinned golden trajectory.
    """

    key = "eq1"

    def value(self, area: float, delay: float,
              area_ref: float, delay_ref: float) -> float:
        return area / area_ref + delay / delay_ref

    def reference_value(self) -> float:
        return 2.0


class WeightedObjective(Objective):
    """``w_area * area/area_ref + w_delay * delay/delay_ref``."""

    key = "weighted"

    def __init__(self, w_area: float = 1.0, w_delay: float = 1.0) -> None:
        self.w_area = float(w_area)
        self.w_delay = float(w_delay)
        if self.w_area < 0 or self.w_delay < 0:
            raise ValueError("objective weights must be non-negative")
        if self.w_area == 0 and self.w_delay == 0:
            raise ValueError("at least one objective weight must be positive")

    def value(self, area: float, delay: float,
              area_ref: float, delay_ref: float) -> float:
        return self.w_area * (area / area_ref) + self.w_delay * (delay / delay_ref)

    def reference_value(self) -> float:
        return self.w_area + self.w_delay

    def params(self) -> Dict[str, object]:
        return {"w_area": self.w_area, "w_delay": self.w_delay}


class AreaObjective(Objective):
    """LUT count only: ``area / area_ref``."""

    key = "area"

    def value(self, area: float, delay: float,
              area_ref: float, delay_ref: float) -> float:
        return area / area_ref

    def reference_value(self) -> float:
        return 1.0


class DelayObjective(Objective):
    """LUT levels only: ``delay / delay_ref``."""

    key = "delay"

    def value(self, area: float, delay: float,
              area_ref: float, delay_ref: float) -> float:
        return delay / delay_ref

    def reference_value(self) -> float:
        return 1.0


register_objective("eq1", Eq1Objective)
register_objective("area", AreaObjective)
register_objective("delay", DelayObjective)
register_objective("weighted", WeightedObjective)

DEFAULT_OBJECTIVE_KEY = "eq1"


# ----------------------------------------------------------------------
# Spec handling
# ----------------------------------------------------------------------
def resolve_objective(spec: Union[ObjectiveSpec, Objective, None]) -> Objective:
    """Build an :class:`Objective` from a spec (or pass one through).

    Accepts ``None`` (the default ``eq1``), a key string, a params dict
    with the key under ``"objective"``, a JSON-encoded dict string (the
    canonical wire form used inside picklable evaluator specs), or an
    :class:`Objective` instance.
    """
    if spec is None:
        spec = DEFAULT_OBJECTIVE_KEY
    if isinstance(spec, Objective):
        return _checked(spec)
    if isinstance(spec, str) and spec.lstrip().startswith("{"):
        spec = json.loads(spec)
    if isinstance(spec, str):
        key, params = spec, {}
    elif isinstance(spec, dict):
        params = dict(spec)
        key = params.pop("objective", None)
        if not isinstance(key, str):
            raise RegistryError(
                f"objective spec {spec!r} must name its key under 'objective'"
            )
    else:
        raise TypeError(f"cannot resolve an objective from {spec!r}")
    factory = OBJECTIVES.get(key)
    objective = factory(**params)
    if not isinstance(objective, Objective):
        raise TypeError(
            f"objective factory for {key!r} returned {objective!r}, "
            "not an Objective"
        )
    return _checked(objective)


def _checked(objective: Objective) -> Objective:
    """Reject objectives whose reference value cannot anchor improvements.

    ``qor_improvement`` normalises by the reference's own objective
    value; a zero there would turn the first evaluation of every run
    into a ``ZeroDivisionError``, so extension authors get the clear
    error at construction time instead.
    """
    reference = objective.reference_value()
    if reference == 0:
        raise ValueError(
            f"objective {objective.spec()!r} has reference_value() == 0; "
            "improvements are measured relative to the reference, which "
            "therefore must be non-zero"
        )
    return objective


def canonical_spec_string(spec: Union[ObjectiveSpec, Objective, None]) -> str:
    """Deterministic string form of a spec (hashable, picklable, tiny).

    Used wherever an objective identity must cross a process boundary or
    key a dictionary: bare key strings stay themselves, parameterised
    specs become sorted-key JSON.
    """
    if spec is None:
        return DEFAULT_OBJECTIVE_KEY
    if isinstance(spec, Objective):
        spec = spec.spec()
    if isinstance(spec, str) and spec.lstrip().startswith("{"):
        spec = json.loads(spec)
    if isinstance(spec, str):
        return spec
    return json.dumps(spec, sort_keys=True, allow_nan=False)


def parse_objective_argument(text: str) -> ObjectiveSpec:
    """Parse the CLI's ``--objective`` argument into a spec.

    Accepts a bare key (``area``), a ``weighted:W_AREA,W_DELAY``
    shorthand, or inline JSON (``{"objective": "weighted", ...}``).
    """
    text = text.strip()
    if text.startswith("{"):
        return json.loads(text)
    if ":" in text:
        key, _, arg_text = text.partition(":")
        key = key.strip()
        if key != "weighted":
            raise ValueError(
                f"only 'weighted' takes ':' arguments, got {text!r}; "
                "use JSON for parameterised custom objectives"
            )
        parts = [part.strip() for part in arg_text.split(",") if part.strip()]
        if len(parts) != 2:
            raise ValueError(
                f"expected weighted:W_AREA,W_DELAY, got {text!r}")
        return {"objective": "weighted",
                "w_area": float(parts[0]), "w_delay": float(parts[1])}
    return text
