"""Fault-tolerance primitives: deadlines, retry policy, fault injection.

The campaign service tier (ROADMAP item 2) needs the engine to *recover*
from infrastructure failures instead of merely isolating them.  This
module supplies the shared vocabulary used across the engine and the
campaign driver:

* a typed error hierarchy (:class:`DeadlineExceeded`,
  :class:`PoisonInputError`, :class:`PoolUnrecoverableError`, ...),
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (hash-derived, no RNG state), plus the
  retryable-vs-fatal error classification,
* :func:`deadline` — a nestable SIGALRM-based timeout context usable in
  both the serial driver and pool workers' main threads,
* :class:`FaultPlan` / :class:`FaultEvent` — a seeded, declarative
  schedule of crash/hang/cache-error injections keyed by
  ``(cell_id, attempt)`` so every recovery path is exercised
  deterministically in tests and CI.

Retries are only safe because cells are checkpoint-resumable: a retried
cell continues from its last persisted checkpoint, so a recovered run is
bit-identical to a fault-free one (the PR-4 guarantee, extended to
in-flight recovery).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "EngineFaultError",
    "DeadlineExceeded",
    "PoolUnrecoverableError",
    "PoisonInputError",
    "FaultInjected",
    "InjectedCrash",
    "RetryPolicy",
    "FaultEvent",
    "FaultPlan",
    "deadline",
]


# ---------------------------------------------------------------------------
# Error hierarchy
# ---------------------------------------------------------------------------
class EngineFaultError(RuntimeError):
    """Base class for engine infrastructure faults (never optimiser bugs)."""


class DeadlineExceeded(EngineFaultError):
    """An evaluation or cell blew its wall-clock deadline."""

    def __init__(self, scope: str, timeout: float,
                 sequence: Optional[Tuple[str, ...]] = None) -> None:
        detail = f"{scope} exceeded {timeout:g}s deadline"
        if sequence:
            detail += f" (sequence {'|'.join(sequence)})"
        super().__init__(detail)
        self.scope = scope
        self.timeout = timeout
        self.sequence = tuple(sequence) if sequence else None

    def __reduce__(self) -> Tuple[type, Tuple[object, ...]]:
        # Raised inside pool workers and unpickled in the parent, so the
        # constructor arguments (not the formatted message) must travel.
        return (type(self), (self.scope, self.timeout, self.sequence))


class PoolUnrecoverableError(EngineFaultError):
    """The worker pool kept dying past the rebuild budget — infra failure."""


class PoisonInputError(EngineFaultError):
    """One input failed/timed out on every attempt — quarantine material."""

    def __init__(self, sequence: Optional[Tuple[str, ...]], attempts: int,
                 cause: Optional[BaseException] = None) -> None:
        label = "|".join(sequence) if sequence else "<unknown>"
        super().__init__(
            f"input {label} failed {attempts} consecutive attempts: {cause}")
        self.sequence = tuple(sequence) if sequence else None
        self.attempts = attempts
        self.cause = cause

    def __reduce__(self) -> Tuple[type, Tuple[object, ...]]:
        return (type(self), (self.sequence, self.attempts, self.cause))


class FaultInjected(EngineFaultError):
    """Base class for errors raised by the fault-injection harness."""


class InjectedCrash(FaultInjected):
    """A scheduled crash event fired in a serial (in-process) context."""


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
#: Errors that indicate transient infrastructure trouble worth retrying.
_RETRYABLE_TYPES: Tuple[type, ...] = (
    DeadlineExceeded,
    FaultInjected,
    sqlite3.OperationalError,
    sqlite3.DatabaseError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* tries of one unit of work (cell or
    evaluation); once exhausted the input is poison/quarantine material.
    ``max_pool_rebuilds`` bounds how many times a crashed process pool is
    rebuilt before the whole run is declared unrecoverable.

    Jitter is derived by hashing ``(key, attempt)`` — the same campaign
    seed and schedule always produce the same delays, keeping recovery
    runs reproducible.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.5
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be non-negative")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 + self.jitter * unit)

    @staticmethod
    def retryable(error: BaseException) -> bool:
        """Whether an error is transient infrastructure trouble.

        Optimiser/evaluator bugs (``ValueError``, ``RuntimeError`` and
        friends) are *not* retryable: re-running deterministic code on
        the same input reproduces the same bug, and the existing
        failed-cell isolation already records them.
        """
        # BrokenProcessPool imports lazily to keep this module light.
        from concurrent.futures.process import BrokenProcessPool
        if isinstance(error, (PoolUnrecoverableError, PoisonInputError)):
            return False
        return isinstance(error, _RETRYABLE_TYPES + (BrokenProcessPool,))

    def to_payload(self) -> Dict[str, float]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "max_pool_rebuilds": self.max_pool_rebuilds,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RetryPolicy":
        return cls(
            max_attempts=int(payload.get("max_attempts", 3)),
            backoff_base=float(payload.get("backoff_base", 0.25)),
            backoff_factor=float(payload.get("backoff_factor", 2.0)),
            backoff_max=float(payload.get("backoff_max", 5.0)),
            jitter=float(payload.get("jitter", 0.5)),
            max_pool_rebuilds=int(payload.get("max_pool_rebuilds", 2)),
        )


# ---------------------------------------------------------------------------
# Deadlines (SIGALRM based, nestable)
# ---------------------------------------------------------------------------
class _DeadlineStack:
    """Per-process stack of active deadlines sharing one ITIMER_REAL.

    Only one interval timer exists per process, but deadlines nest (a
    per-evaluation deadline runs inside a per-cell deadline in the
    serial driver).  The stack keeps every active absolute deadline and
    always arms the timer for the *nearest* one; when it fires, the
    earliest-expiring entry raises.
    """

    def __init__(self) -> None:
        self._entries: List[Dict[str, object]] = []
        self._previous_handler = None

    def _arm(self) -> None:
        # Fired entries are dead weight awaiting their pop (their
        # exception is already propagating); re-arming for them would
        # raise a second, detail-less error mid-unwind.
        live = [e for e in self._entries if not e["fired"]]
        if not live:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if not self._entries and self._previous_handler is not None:
                signal.signal(signal.SIGALRM, self._previous_handler)
                self._previous_handler = None
            return
        nearest = min(e["deadline"] for e in live)  # type: ignore[type-var]
        remaining = max(1e-6, float(nearest) - time.monotonic())
        signal.setitimer(signal.ITIMER_REAL, remaining)

    def _on_alarm(self, _signum: int, _frame: object) -> None:
        now = time.monotonic()
        expired = [e for e in self._entries
                   if not e["fired"] and float(e["deadline"]) <= now]  # type: ignore[arg-type]
        if not expired:  # pragma: no cover - timer raced a pop
            self._arm()
            return
        entry = min(expired, key=lambda e: float(e["deadline"]))  # type: ignore[arg-type]
        entry["fired"] = True
        sequence = entry.get("sequence")
        if sequence is None and str(entry["scope"]) != "evaluation":
            # A cell deadline firing mid-evaluation points at the
            # innermost in-flight sequence for the quarantine record.
            for inner in reversed(self._entries):
                if inner.get("sequence") is not None:
                    sequence = inner["sequence"]
                    break
        raise DeadlineExceeded(str(entry["scope"]), float(entry["timeout"]),
                               sequence)  # type: ignore[arg-type]

    def push(self, timeout: float, scope: str,
             sequence: Optional[Tuple[str, ...]]) -> Dict[str, object]:
        if not self._entries:
            self._previous_handler = signal.signal(signal.SIGALRM,
                                                   self._on_alarm)
        entry: Dict[str, object] = {
            "deadline": time.monotonic() + timeout,
            "timeout": timeout,
            "scope": scope,
            "sequence": sequence,
            "fired": False,
        }
        self._entries.append(entry)
        self._arm()
        return entry

    def pop(self, entry: Dict[str, object]) -> None:
        if entry in self._entries:
            self._entries.remove(entry)
        self._arm()


_DEADLINES = _DeadlineStack()


def _deadlines_supported() -> bool:
    return (hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def deadline(seconds: Optional[float], *,
             sequence: Optional[Sequence[str]] = None,
             scope: str = "evaluation") -> Iterator[None]:
    """Raise :class:`DeadlineExceeded` if the body runs past ``seconds``.

    No-op when ``seconds`` is ``None`` or when running off the main
    thread (SIGALRM can only be delivered there); pool workers execute
    tasks on their main thread, so deadlines work both serially and in
    workers.  Deadlines nest — the nearest one fires first.
    """
    if seconds is None or not _deadlines_supported():
        yield
        return
    entry = _DEADLINES.push(float(seconds), scope,
                            tuple(sequence) if sequence else None)
    try:
        yield
    finally:
        _DEADLINES.pop(entry)


# ---------------------------------------------------------------------------
# Fault plans (deterministic injection schedules)
# ---------------------------------------------------------------------------
_FAULT_KINDS = ("crash", "hang", "cache_error")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``cell`` matches a campaign cell id (``"*"`` = any); ``attempt``
    is the retry attempt the event fires on (0 = first try).  ``at``
    is the ordinal of the triggering operation *within that attempt* —
    for crash/hang events the Nth fresh ``compute()`` call, for
    cache_error events the Nth persistent-cache operation — and
    ``count`` widens the window to ordinals ``[at, at + count)``.
    """

    kind: str
    cell: str = "*"
    attempt: int = 0
    at: int = 0
    count: int = 1
    duration: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {_FAULT_KINDS}")
        if self.at < 0 or self.count < 1 or self.attempt < 0:
            raise ValueError("fault event at/count/attempt out of range")

    def matches(self, cell_id: str, attempt: int) -> bool:
        return (self.cell in ("*", cell_id)) and self.attempt == int(attempt)

    def covers(self, ordinal: int) -> bool:
        return self.at <= ordinal < self.at + self.count

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "cell": self.cell, "attempt": self.attempt,
            "at": self.at, "count": self.count, "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultEvent":
        return cls(
            kind=str(payload["kind"]),
            cell=str(payload.get("cell", "*")),
            attempt=int(payload.get("attempt", 0)),
            at=int(payload.get("at", 0)),
            count=int(payload.get("count", 1)),
            duration=float(payload.get("duration", 30.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Serialises to canonical JSON so it can ride inside the picklable
    :class:`~repro.engine.spec.EvaluatorSpec`, an environment variable
    (``REPRO_FAULT_PLAN``) or a CLI flag (``--fault-plan``).
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def events_for(self, cell_id: str, attempt: int) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.matches(cell_id, attempt))

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "events": [e.to_dict() for e in self.events]},
            sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        payload = json.loads(raw)
        return cls(
            events=tuple(FaultEvent.from_dict(e)
                         for e in payload.get("events", [])),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def from_argument(cls, raw: str) -> "FaultPlan":
        """Parse a ``--fault-plan`` value: inline JSON or a file path."""
        text = raw.strip()
        if not text.startswith("{"):
            path = Path(text)
            if not path.is_file():
                raise ValueError(
                    f"fault plan {raw!r} is neither inline JSON nor a file")
            text = path.read_text()
        try:
            return cls.from_json(text)
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ValueError(f"invalid fault plan: {error}") from error

    @classmethod
    def random(cls, seed: int, cell_ids: Sequence[str], *,
               max_events: int = 4, hang_duration: float = 30.0) -> "FaultPlan":
        """A seeded, recoverable-by-construction schedule for CI fuzzing.

        Every generated event fires on attempt 0 only, so a default
        3-attempt :class:`RetryPolicy` always recovers — failures of the
        recovery suite under any seed are genuine bugs, not bad luck.
        """
        import random as random_module
        rng = random_module.Random(seed)
        events: List[FaultEvent] = []
        for _ in range(rng.randint(1, max_events)):
            events.append(FaultEvent(
                kind=rng.choice(_FAULT_KINDS),
                cell=rng.choice(list(cell_ids)) if cell_ids else "*",
                attempt=0,
                at=rng.randint(0, 3),
                duration=hang_duration,
            ))
        return cls(events=tuple(events), seed=seed)


# ---------------------------------------------------------------------------
# Injection runtime (module-level, per process)
# ---------------------------------------------------------------------------
#: Active injection context: (cell_id, attempt, hard_crash) or None.
_ACTIVE: Optional[Tuple[str, int, bool]] = None
#: Fresh-compute() ordinals per (cell_id, attempt) in this process.
_EVAL_COUNTS: Dict[Tuple[str, int], int] = {}
#: Persistent-cache-operation ordinals per (cell_id, attempt).
_CACHE_OP_COUNTS: Dict[Tuple[str, int], int] = {}


def activate(cell_id: str, attempt: int, *, hard_crash: bool) -> None:
    """Enter an injection context (one cell attempt, or a pool epoch).

    ``hard_crash`` selects how a crash event manifests: ``os._exit`` in
    pool workers (producing a real ``BrokenProcessPool`` upstream) vs a
    raised :class:`InjectedCrash` in serial/in-process runs.  Counters
    for the (cell, attempt) key reset so a retried attempt replays its
    own schedule from ordinal zero.

    Only the active key's counters are ever read, and warm pool workers
    now outlive many cells, so stale keys from earlier activations are
    dropped here to keep the maps bounded over a long sweep.
    """
    global _ACTIVE
    key = (str(cell_id), int(attempt))
    _ACTIVE = (key[0], key[1], bool(hard_crash))
    for counters in (_EVAL_COUNTS, _CACHE_OP_COUNTS):
        for stale in [k for k in counters if k != key]:
            del counters[stale]
        counters[key] = 0


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def _fire(plan: FaultPlan, counters: Dict[Tuple[str, int], int],
          kinds: Tuple[str, ...]) -> Optional[FaultEvent]:
    if _ACTIVE is None:
        return None
    cell_id, attempt, _ = _ACTIVE
    key = (cell_id, attempt)
    ordinal = counters.get(key, 0)
    counters[key] = ordinal + 1
    for event in plan.events_for(cell_id, attempt):
        if event.kind in kinds and event.covers(ordinal):
            return event
    return None


def build_compute_guard(
    plan_json: Optional[str],
    eval_timeout: Optional[float],
) -> Optional[Callable[[Tuple[str, ...], Callable[[], object]], object]]:
    """A guard wrapping every fresh ``QoREvaluator.compute`` call.

    Enforces the per-evaluation deadline and fires scheduled crash/hang
    events at their compute ordinal.  Returns ``None`` when there is
    nothing to do, so the unguarded fast path stays untouched.
    """
    if plan_json is None and eval_timeout is None:
        return None
    plan = FaultPlan.from_json(plan_json) if plan_json else FaultPlan()

    def guard(names: Tuple[str, ...], thunk: Callable[[], object]) -> object:
        with deadline(eval_timeout, sequence=names, scope="evaluation"):
            event = _fire(plan, _EVAL_COUNTS, ("crash", "hang"))
            if event is not None:
                if event.kind == "crash":
                    if _ACTIVE is not None and _ACTIVE[2]:
                        os._exit(13)
                    raise InjectedCrash(
                        f"injected crash at compute ordinal {event.at}")
                time.sleep(event.duration)  # hang; SIGALRM interrupts it
            return thunk()

    return guard


def build_cache_hook(plan_json: Optional[str]) -> Optional[Callable[[str], None]]:
    """A hook run before every persistent-cache operation.

    Raises a transient ``sqlite3.OperationalError`` at scheduled
    cache-operation ordinals so cache retry/degrade paths can be tested
    without a real disk fault.
    """
    if not plan_json:
        return None
    plan = FaultPlan.from_json(plan_json)
    if not any(e.kind == "cache_error" for e in plan.events):
        return None

    def hook(op_name: str) -> None:
        event = _fire(plan, _CACHE_OP_COUNTS, ("cache_error",))
        if event is not None:
            raise sqlite3.OperationalError(
                f"injected cache fault during {op_name}")

    return hook
