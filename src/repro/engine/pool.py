"""Warm process pools: the one sanctioned ProcessPoolExecutor owner.

Every parallel path in the engine/api layer (batch evaluation, grid
sweeps, campaign cells) used to construct a fresh ``ProcessPoolExecutor``
per call site and tear it down per batch — the root cause of the
parallelism inversion recorded in ``benchmarks/artifacts``.  ``WarmPool``
owns one executor across batches/rounds/cells and exposes the two
operations supervision needs: lazy (re)build and epoch-bumping recycle
after a crash or deadline kill.

Lint rule RPL008 flags direct ``ProcessPoolExecutor`` construction in
``repro/engine``/``repro/api``; this module is the allowlisted home.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Tuple


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung or dead.

    ``shutdown(wait=True)`` would block forever on a hung worker, so the
    worker processes are killed first and the executor is only then shut
    down with ``cancel_futures`` to release queued work.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=True, cancel_futures=True)


class WarmPool:
    """A persistent worker pool that survives batches and heals by epoch.

    The executor is built lazily on first :meth:`executor` call and then
    reused until :meth:`recycle` (crash recovery — kills the workers,
    bumps the epoch so the next build re-initialises them) or
    :meth:`close`.  ``initargs_for`` receives the current epoch so worker
    initialisers can key fault-injection schedules and diagnostics to the
    pool generation, matching the supervised engine's retry semantics.
    """

    def __init__(
        self,
        max_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs_for: Optional[Callable[[int], Tuple[object, ...]]] = None,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self._initializer = initializer
        self._initargs_for = initargs_for
        self._pool: Optional[ProcessPoolExecutor] = None
        self._epoch = 0
        self._builds = 0

    @property
    def epoch(self) -> int:
        """Pool generation; bumped by every :meth:`recycle`."""
        return self._epoch

    @property
    def builds(self) -> int:
        """How many executors have been constructed over the pool's life."""
        return self._builds

    @property
    def warm(self) -> bool:
        """True when an executor exists (its workers hold warm state)."""
        return self._pool is not None

    def executor(self) -> ProcessPoolExecutor:
        """Return the live executor, building it if necessary."""
        if self._pool is None:
            initargs: Tuple[object, ...] = ()
            if self._initargs_for is not None:
                initargs = tuple(self._initargs_for(self._epoch))
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=self._initializer,
                initargs=initargs,
            )
            self._builds += 1
        return self._pool

    def recycle(self) -> None:
        """Kill the current workers and advance the epoch.

        The next :meth:`executor` call rebuilds with fresh workers whose
        initialiser sees the new epoch — warm state (shared-memory
        segments, parent-side caches) is re-established, not lost.
        """
        if self._pool is not None:
            terminate_pool(self._pool)
            self._pool = None
        self._epoch += 1

    def close(self, cancel_futures: bool = False, terminate: bool = False) -> None:
        """Shut the pool down; idempotent."""
        if self._pool is None:
            return
        if terminate:
            terminate_pool(self._pool)
        else:
            self._pool.shutdown(wait=True, cancel_futures=cancel_futures)
        self._pool = None

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["WarmPool", "terminate_pool"]
