"""Persistent on-disk QoR cache shared across processes and runs.

Backed by a single SQLite database (WAL mode) so that several worker
processes — and several consecutive experiment runs — can share one cache
file safely.  Entries are keyed by ``(circuit key, sequence)`` where the
circuit key bakes in the structural fingerprint of the AIG and the LUT
size (see :attr:`repro.qor.QoREvaluator.cache_key`), and store only the
mapped ``(area, delay)`` pair: QoR and %-improvement are derived values
that depend on the evaluator's reference flow, so they are recomputed on
the way out.  This makes cache entries reusable across experiments with
different reference flows.

The cache sits *under* the evaluator's in-memory memoisation: a
persistent hit skips the synthesis + mapping computation but still counts
as a black-box evaluation for the current run (the paper's
sample-complexity unit is sequences tested *per run*) — see
:mod:`repro.qor.evaluator` for the accounting rules.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

_SEQUENCE_SEPARATOR = "|"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS qor_cache (
    circuit_key TEXT NOT NULL,
    sequence    TEXT NOT NULL,
    area        INTEGER NOT NULL,
    delay       INTEGER NOT NULL,
    PRIMARY KEY (circuit_key, sequence)
)
"""


def default_cache_dir() -> Optional[Path]:
    """Cache directory from ``REPRO_CACHE_DIR``, or ``None`` when unset."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


class PersistentQoRCache:
    """SQLite-backed QoR cache.

    Parameters
    ----------
    path:
        Cache *directory* (the database file ``qor-cache.sqlite`` is
        created inside it) or a path ending in ``.sqlite``/``.db`` used
        verbatim.  Parent directories are created on demand.

    Notes
    -----
    One instance holds one SQLite connection and must not be shared
    between processes — each worker opens its own instance on the same
    path (SQLite serialises writers; WAL keeps readers concurrent).
    Instances are usable as context managers.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        path = Path(path)
        if path.suffix in (".sqlite", ".db"):
            self.path = path
        else:
            self.path = path / "qor-cache.sqlite"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as error:
            raise ValueError(
                f"cache path {self.path.parent} is not a directory"
            ) from error
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._conn.commit()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _sequence_key(sequence: Sequence[str]) -> str:
        return _SEQUENCE_SEPARATOR.join(sequence)

    def get(self, circuit_key: str, sequence: Sequence[str]) -> Optional[Tuple[int, int]]:
        """Cached ``(area, delay)`` for a sequence, or ``None`` on a miss."""
        row = self._conn.execute(
            "SELECT area, delay FROM qor_cache WHERE circuit_key = ? AND sequence = ?",
            (circuit_key, self._sequence_key(sequence)),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return int(row[0]), int(row[1])

    def put(self, circuit_key: str, sequence: Sequence[str], area: int, delay: int) -> None:
        """Insert or refresh one cache entry (idempotent)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO qor_cache (circuit_key, sequence, area, delay) "
            "VALUES (?, ?, ?, ?)",
            (circuit_key, self._sequence_key(sequence), int(area), int(delay)),
        )
        self._conn.commit()

    def put_many(
        self,
        circuit_key: str,
        entries: Iterable[Tuple[Sequence[str], int, int]],
    ) -> None:
        """Bulk insert ``(sequence, area, delay)`` entries in one transaction."""
        rows = [
            (circuit_key, self._sequence_key(sequence), int(area), int(delay))
            for sequence, area, delay in entries
        ]
        if not rows:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO qor_cache (circuit_key, sequence, area, delay) "
            "VALUES (?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM qor_cache").fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "PersistentQoRCache":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
