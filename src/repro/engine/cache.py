"""Persistent on-disk QoR cache shared across processes and runs.

Backed by a single SQLite database (WAL mode) so that several worker
processes — and several consecutive experiment runs — can share one cache
file safely.  Entries are keyed by ``(circuit key, sequence)`` where the
circuit key bakes in the structural fingerprint of the AIG and the LUT
size (see :attr:`repro.qor.QoREvaluator.cache_key`), and store only the
mapped ``(area, delay)`` pair: QoR and %-improvement are derived values
that depend on the evaluator's reference flow, so they are recomputed on
the way out.  This makes cache entries reusable across experiments with
different reference flows.

The cache sits *under* the evaluator's in-memory memoisation: a
persistent hit skips the synthesis + mapping computation but still counts
as a black-box evaluation for the current run (the paper's
sample-complexity unit is sequences tested *per run*) — see
:mod:`repro.qor.evaluator` for the accounting rules.

The cache is an optimisation layer, never a correctness layer, so it is
allowed to *degrade* rather than crash: operational SQLite errors
(locked database, read-only filesystem, disk full) are retried per the
:class:`~repro.engine.faults.RetryPolicy` and, if they persist, the
instance falls back to a process-local in-memory dict with a single
``RuntimeWarning`` — campaign results are unaffected, only cross-process
sharing is lost.
"""

from __future__ import annotations

import sqlite3
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.engine.faults import RetryPolicy

_SEQUENCE_SEPARATOR = "|"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS qor_cache (
    circuit_key TEXT NOT NULL,
    sequence    TEXT NOT NULL,
    area        INTEGER NOT NULL,
    delay       INTEGER NOT NULL,
    PRIMARY KEY (circuit_key, sequence)
)
"""

#: SQLite errors treated as transient/operational (retry, then degrade).
_CACHE_ERRORS = (sqlite3.OperationalError, sqlite3.DatabaseError)


def default_cache_dir() -> Optional[Path]:
    """Cache directory from ``REPRO_CACHE_DIR``, or ``None`` when unset.

    Delegates to :mod:`repro.config` — the sanctioned environment
    layer — so the engine itself never reads ambient process state.
    """
    from repro.config import env_cache_dir

    return env_cache_dir()


class PersistentQoRCache:
    """SQLite-backed QoR cache.

    Parameters
    ----------
    path:
        Cache *directory* (the database file ``qor-cache.sqlite`` is
        created inside it) or a path ending in ``.sqlite``/``.db`` used
        verbatim.  Parent directories are created on demand.
    retry:
        Retry policy for operational SQLite errors.  After
        ``retry.max_attempts`` consecutive failures of one operation the
        cache degrades to memory-only (one warning, results unaffected).
    sleep:
        Injectable backoff sleeper (tests pass a recorder; default
        :func:`time.sleep`).
    fault_hook:
        Optional callable invoked with the operation name before every
        SQLite operation; the fault-injection harness uses it to raise
        scheduled ``sqlite3.OperationalError`` without a real disk fault.

    Notes
    -----
    One instance holds one SQLite connection and must not be shared
    between processes — each worker opens its own instance on the same
    path (SQLite serialises writers; WAL keeps readers concurrent).
    Instances are usable as context managers.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
        fault_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        path = Path(path)
        if path.suffix in (".sqlite", ".db"):
            self.path = path
        else:
            self.path = path / "qor-cache.sqlite"
        self.retry = retry or RetryPolicy()
        self._sleep = sleep or time.sleep
        self.fault_hook = fault_hook
        self._degraded = False
        self._memory: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._conn: Optional[sqlite3.Connection] = None
        self.hits = 0
        self.misses = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as error:
            # A mis-pointed path is a configuration bug, not a transient
            # fault: fail loudly instead of silently degrading.
            raise ValueError(
                f"cache path {self.path.parent} is not a directory"
            ) from error

        def _connect() -> None:
            self._conn = sqlite3.connect(str(self.path), timeout=30.0)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._conn.commit()

        self._run_op("connect", _connect, lambda: None)

    # ------------------------------------------------------------------
    # Degradation machinery
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the cache has fallen back to memory-only mode."""
        return self._degraded

    def _degrade(self, error: BaseException) -> None:
        self._degraded = True
        if self._conn is not None:
            try:
                self._conn.close()
            except _CACHE_ERRORS:  # pragma: no cover - best-effort close
                pass
            self._conn = None
        warnings.warn(
            f"persistent QoR cache at {self.path} degraded to memory-only "
            f"after {self.retry.max_attempts} attempts ({error}); campaign "
            f"results are unaffected, but this process no longer shares "
            f"cached evaluations",
            RuntimeWarning,
            stacklevel=3,
        )

    def _run_op(self, op_name: str, action: Callable[[], object],
                fallback: Callable[[], object]) -> object:
        """Run one SQLite operation with retry, degrading on exhaustion."""
        if self._degraded:
            return fallback()
        error: Optional[BaseException] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                if self.fault_hook is not None:
                    self.fault_hook(op_name)
                return action()
            except _CACHE_ERRORS as caught:
                error = caught
                if attempt < self.retry.max_attempts:
                    delay = self.retry.delay_for(attempt, f"cache:{op_name}")
                    if delay > 0:
                        self._sleep(delay)
        self._degrade(error)  # type: ignore[arg-type]
        return fallback()

    # ------------------------------------------------------------------
    @staticmethod
    def _sequence_key(sequence: Sequence[str]) -> str:
        return _SEQUENCE_SEPARATOR.join(sequence)

    def get(self, circuit_key: str, sequence: Sequence[str]) -> Optional[Tuple[int, int]]:
        """Cached ``(area, delay)`` for a sequence, or ``None`` on a miss."""
        seq_key = self._sequence_key(sequence)

        def _get() -> Optional[Tuple[int, int]]:
            row = self._conn.execute(
                "SELECT area, delay FROM qor_cache WHERE circuit_key = ? AND sequence = ?",
                (circuit_key, seq_key),
            ).fetchone()
            return (int(row[0]), int(row[1])) if row is not None else None

        result = self._run_op("get", _get,
                              lambda: self._memory.get((circuit_key, seq_key)))
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result  # type: ignore[return-value]

    def get_many(
        self,
        circuit_key: str,
        sequences: Sequence[Sequence[str]],
    ) -> List[Optional[Tuple[int, int]]]:
        """Batch :meth:`get`: one result slot per input sequence."""
        seq_keys = [self._sequence_key(sequence) for sequence in sequences]

        def _get_many() -> List[Optional[Tuple[int, int]]]:
            found: Dict[str, Tuple[int, int]] = {}
            # SQLite caps host parameters; chunk conservatively.
            for start in range(0, len(seq_keys), 500):
                chunk = seq_keys[start:start + 500]
                placeholders = ",".join("?" for _ in chunk)
                rows = self._conn.execute(
                    f"SELECT sequence, area, delay FROM qor_cache "
                    f"WHERE circuit_key = ? AND sequence IN ({placeholders})",
                    [circuit_key, *chunk],
                ).fetchall()
                for sequence, area, delay in rows:
                    found[str(sequence)] = (int(area), int(delay))
            return [found.get(key) for key in seq_keys]

        def _fallback() -> List[Optional[Tuple[int, int]]]:
            return [self._memory.get((circuit_key, key)) for key in seq_keys]

        results = self._run_op("get_many", _get_many, _fallback)
        for result in results:  # type: ignore[union-attr]
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
        return results  # type: ignore[return-value]

    def put(self, circuit_key: str, sequence: Sequence[str], area: int, delay: int) -> None:
        """Insert or refresh one cache entry (idempotent)."""
        seq_key = self._sequence_key(sequence)

        def _put() -> None:
            self._conn.execute(
                "INSERT OR REPLACE INTO qor_cache (circuit_key, sequence, area, delay) "
                "VALUES (?, ?, ?, ?)",
                (circuit_key, seq_key, int(area), int(delay)),
            )
            self._conn.commit()

        def _fallback() -> None:
            self._memory[(circuit_key, seq_key)] = (int(area), int(delay))

        self._run_op("put", _put, _fallback)

    def put_many(
        self,
        circuit_key: str,
        entries: Iterable[Tuple[Sequence[str], int, int]],
    ) -> None:
        """Bulk insert ``(sequence, area, delay)`` entries in one transaction."""
        rows = [
            (circuit_key, self._sequence_key(sequence), int(area), int(delay))
            for sequence, area, delay in entries
        ]
        if not rows:
            return

        def _put_many() -> None:
            self._conn.executemany(
                "INSERT OR REPLACE INTO qor_cache (circuit_key, sequence, area, delay) "
                "VALUES (?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()

        def _fallback() -> None:
            for row_circuit, seq_key, area, delay in rows:
                self._memory[(row_circuit, seq_key)] = (area, delay)

        self._run_op("put_many", _put_many, _fallback)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        def _count() -> int:
            row = self._conn.execute("SELECT COUNT(*) FROM qor_cache").fetchone()
            return int(row[0])

        return self._run_op("len", _count, lambda: len(self._memory))  # type: ignore[return-value]

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "PersistentQoRCache":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
