"""Parallel evaluation engine: worker pools, persistent QoR cache, grids.

This package is the execution layer under every optimiser and experiment
in the reproduction.  It has four cooperating pieces:

* :mod:`repro.engine.spec` — :class:`EvaluatorSpec`, the picklable
  description (circuit, width, LUT size, reference flow) from which any
  process can rebuild the QoR black box.  AIGs themselves never cross a
  process boundary.
* :mod:`repro.engine.engine` — :class:`EvaluationEngine`, which fans
  batches of synthesis sequences out to a *warm* process pool (serial
  in-process fallback for ``jobs=1``).  Attach one to a
  :class:`repro.qor.QoREvaluator` via ``attach_engine`` and every
  ``evaluate_many`` batch is scored in parallel, with results recorded in
  submission order so parallel runs stay bit-identical to serial ones.
  Three supporting modules carry the parallel fast path:
  :mod:`repro.engine.pool` (:class:`WarmPool`, the one sanctioned
  ``ProcessPoolExecutor`` owner, persistent across batches/cells and
  self-healing by epoch), :mod:`repro.engine.shm` (one-time
  shared-memory publication of the circuit's flat arrays for O(n)
  worker start-up), and :mod:`repro.engine.planner`
  (:class:`ExecutionPlanner`, a measured cost model routing each batch
  serial vs pool so short batches never pay pool tax).
* :mod:`repro.engine.cache` — :class:`PersistentQoRCache`, an SQLite
  (WAL) on-disk cache of ``(circuit, sequence) → (area, delay)`` shared
  across processes *and* across runs.  It layers under the evaluator's
  in-memory memoisation: hits skip the synthesis + mapping computation
  but still count as per-run evaluations (the paper's sample-complexity
  unit).
* :mod:`repro.engine.grid` — the parallel (method × circuit × seed)
  experiment runner, dispatching grid cells across the pool with
  deterministic per-cell seeding and fresh per-cell evaluator state, so
  ``--jobs N`` reproduces ``--jobs 1`` exactly.

The batch-optimiser protocol (``suggest``/``observe`` on
:class:`repro.bo.base.SequenceOptimiser`) is the producer side of this
package: optimisers emit candidate batches, the engine scores them, the
evaluator does the accounting.
"""

from repro.engine.cache import PersistentQoRCache, default_cache_dir
from repro.engine.engine import EvaluationEngine, resolve_jobs
from repro.engine.faults import (
    DeadlineExceeded,
    EngineFaultError,
    FaultEvent,
    FaultPlan,
    PoisonInputError,
    PoolUnrecoverableError,
    RetryPolicy,
    deadline,
)
from repro.engine.grid import build_cell_payload, run_grid
from repro.engine.planner import ExecutionPlanner, PlanDecision, effective_parallelism
from repro.engine.pool import WarmPool, terminate_pool
from repro.engine.shm import SharedAIGHandle
from repro.engine.spec import EvaluatorSpec, resolve_circuit_width

__all__ = [
    "DeadlineExceeded",
    "EngineFaultError",
    "EvaluationEngine",
    "EvaluatorSpec",
    "ExecutionPlanner",
    "FaultEvent",
    "FaultPlan",
    "PersistentQoRCache",
    "PlanDecision",
    "PoisonInputError",
    "PoolUnrecoverableError",
    "RetryPolicy",
    "SharedAIGHandle",
    "WarmPool",
    "build_cell_payload",
    "deadline",
    "default_cache_dir",
    "effective_parallelism",
    "resolve_circuit_width",
    "resolve_jobs",
    "run_grid",
    "terminate_pool",
]
