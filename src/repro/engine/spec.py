"""Picklable evaluator specifications.

Worker processes never receive an AIG over the pipe — circuits are cheap
to regenerate but expensive to serialise, and the structural-hashing
tables inside :class:`repro.aig.graph.AIG` make pickles large.  Instead a
tiny :class:`EvaluatorSpec` (circuit name + width + LUT size + reference
flow) crosses the process boundary and each worker rebuilds its own
circuit, mapper and :class:`repro.qor.QoREvaluator` exactly once, in its
pool initialiser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.circuits.registry import get_circuit, get_circuit_spec, resolve_width
from repro.engine import faults, shm
from repro.qor.backends import DEFAULT_BACKEND_KEY, canonical_backend_spec
from repro.qor.evaluator import QoREvaluator
from repro.qor.objectives import DEFAULT_OBJECTIVE_KEY, canonical_spec_string

#: Re-exported for engine callers: the width :func:`get_circuit` will use,
#: resolved eagerly so workers build the same circuit as the parent even
#: if their environment differs.
resolve_circuit_width = resolve_width


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything a worker needs to rebuild a :class:`QoREvaluator`.

    Attributes
    ----------
    circuit:
        Registered circuit name (see :mod:`repro.circuits`).
    width:
        Resolved bit-width (never ``None``; see :func:`for_circuit`).
    lut_size:
        LUT input count used for mapping.
    reference_sequence:
        Reference flow for the QoR denominators, or ``None`` for the
        default (``resyn2``).
    objective:
        Canonical string spec of the QoR objective (see
        :func:`repro.qor.objectives.canonical_spec_string`) — a bare key
        like ``"eq1"`` or sorted-key JSON for parameterised objectives.
        Kept as a string so the spec stays hashable and picklable.
    backend:
        Canonical string spec of the synthesis backend (see
        :func:`repro.qor.backends.canonical_backend_spec`) — a bare key
        like ``"native"`` or sorted-key JSON for parameterised backends.
        Part of the evaluator's identity: two specs differing only in
        backend build evaluators that may measure different numbers.
    circuit_file / circuit_hash:
        For file-backed circuits (``file:<path>`` names): the resolved
        absolute path and the SHA-256 content hash of the file at spec
        creation time.  Workers rebuilding the evaluator verify the hash
        before trusting the file — a mid-run or run/resume edit of the
        circuit file fails loudly instead of silently mixing results —
        and the hash (not the path) keys the persistent QoR cache, so
        cache entries survive file relocation across machines.
    eval_timeout:
        Per-evaluation wall-clock deadline in seconds (``None`` = no
        deadline).  Enforced inside ``compute()`` via a SIGALRM timer
        in both serial runs and pool workers.
    fault_plan:
        Canonical-JSON :class:`~repro.engine.faults.FaultPlan` for
        deterministic fault injection, or ``None``.  A string (not the
        object) so the spec stays hashable and cheap to pickle.
    shared_aig:
        Optional :class:`~repro.engine.shm.SharedAIGHandle` naming a
        shared-memory segment that already holds the circuit's flat
        arrays.  Workers attach it instead of rebuilding/re-parsing the
        circuit; a vanished segment degrades to the cold path above.
    reference_stats / initial_stats:
        Optional ``(area, delay)`` integer pairs measured by the parent's
        evaluator.  When present the worker-side evaluator skips the
        expensive reference-flow and initial mappings — both are
        deterministic functions of the circuit, so hand-off is
        bit-identity safe.
    """

    circuit: str
    width: int
    lut_size: int = 6
    reference_sequence: Optional[Tuple[str, ...]] = None
    objective: str = DEFAULT_OBJECTIVE_KEY
    backend: str = DEFAULT_BACKEND_KEY
    circuit_file: Optional[str] = None
    circuit_hash: Optional[str] = None
    eval_timeout: Optional[float] = None
    fault_plan: Optional[str] = None
    shared_aig: Optional["shm.SharedAIGHandle"] = None
    reference_stats: Optional[Tuple[int, int]] = None
    initial_stats: Optional[Tuple[int, int]] = None

    def identity_key(self) -> Tuple[object, ...]:
        """Key identifying the evaluator this spec builds.

        Excludes transport-only fields (``shared_aig``,
        ``reference_stats``/``initial_stats``) that change how the
        evaluator is *constructed* but never what it computes — worker
        caches keyed on this survive shm/warm-stat hand-off changes.
        """
        return (
            self.circuit,
            self.width,
            self.lut_size,
            self.reference_sequence,
            self.objective,
            self.backend,
            self.circuit_hash,
            self.eval_timeout,
            self.fault_plan,
        )

    @classmethod
    def for_circuit(
        cls,
        circuit: str,
        width: Optional[int] = None,
        lut_size: int = 6,
        reference_sequence: Optional[Tuple[str, ...]] = None,
        objective: Optional[object] = None,
        backend: Optional[object] = None,
    ) -> "EvaluatorSpec":
        """Build a spec, resolving the effective width immediately."""
        circuit_spec = get_circuit_spec(circuit)
        canonical = circuit_spec.name
        return cls(
            circuit=canonical,
            width=resolve_circuit_width(canonical, width),
            lut_size=lut_size,
            reference_sequence=(
                tuple(reference_sequence) if reference_sequence is not None else None
            ),
            objective=canonical_spec_string(objective),
            backend=canonical_backend_spec(backend),
            circuit_file=getattr(circuit_spec, "path", None),
            circuit_hash=getattr(circuit_spec, "content_hash", None),
        )

    def build_evaluator(
        self,
        cache: bool = True,
        persistent_cache: Optional[object] = None,
    ) -> QoREvaluator:
        """Instantiate the circuit and its evaluator from this spec."""
        cache_key = None
        aig = None
        reference_stats = self.reference_stats
        initial_stats = self.initial_stats
        if self.shared_aig is not None:
            # Warm hand-off: attach the parent's published flat arrays.
            # A vanished segment (engine closed, foreign host) falls
            # through to the cold rebuild below — including dropping the
            # piggybacked warm stats, which travel only with the shm
            # fast path to keep the degraded path identical to a spec
            # that never carried them.
            aig = shm.attach_aig(self.shared_aig)
            if aig is None:
                reference_stats = None
                initial_stats = None
        if aig is not None:
            if self.circuit_hash is not None:
                cache_key = f"sha256:{self.circuit_hash}:lut{self.lut_size}"
        elif self.circuit_file is not None:
            # Load directly from the recorded path, verifying content:
            # the registry route would re-resolve (and silently accept a
            # changed file), and the content hash gives a persistent
            # cache key that is stable across path relocations.
            from repro.circuits.files import load_circuit_file

            aig = load_circuit_file(self.circuit_file,
                                    expected_hash=self.circuit_hash)
            if self.circuit_hash is not None:
                cache_key = f"sha256:{self.circuit_hash}:lut{self.lut_size}"
        else:
            aig = get_circuit(self.circuit, width=self.width)
        evaluator = QoREvaluator(
            aig,
            lut_size=self.lut_size,
            reference_sequence=self.reference_sequence,
            cache=cache,
            persistent_cache=persistent_cache,
            objective=self.objective,
            cache_key=cache_key,
            reference_stats=reference_stats,
            initial_stats=initial_stats,
            backend=self.backend,
        )
        guard = faults.build_compute_guard(self.fault_plan, self.eval_timeout)
        if guard is not None:
            evaluator.set_compute_guard(guard)
        return evaluator

    # ------------------------------------------------------------------
    # Plain-dict round trip (kept explicit so the payload stays stable
    # even if fields are added later).
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "width": self.width,
            "lut_size": self.lut_size,
            "reference_sequence": self.reference_sequence,
            "objective": self.objective,
            "backend": self.backend,
            "circuit_file": self.circuit_file,
            "circuit_hash": self.circuit_hash,
            "eval_timeout": self.eval_timeout,
            "fault_plan": self.fault_plan,
            "shared_aig": (
                self.shared_aig.to_payload() if self.shared_aig is not None else None
            ),
            "reference_stats": self.reference_stats,
            "initial_stats": self.initial_stats,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "EvaluatorSpec":
        reference = payload.get("reference_sequence")
        circuit_file = payload.get("circuit_file")
        circuit_hash = payload.get("circuit_hash")
        eval_timeout = payload.get("eval_timeout")
        fault_plan = payload.get("fault_plan")
        shared_aig = payload.get("shared_aig")
        reference_stats = payload.get("reference_stats")
        initial_stats = payload.get("initial_stats")
        return cls(
            circuit=str(payload["circuit"]),
            width=int(payload["width"]),  # type: ignore[arg-type]
            lut_size=int(payload.get("lut_size", 6)),  # type: ignore[arg-type]
            reference_sequence=tuple(reference) if reference is not None else None,
            objective=str(payload.get("objective", DEFAULT_OBJECTIVE_KEY)),
            backend=str(payload.get("backend", DEFAULT_BACKEND_KEY)),
            circuit_file=str(circuit_file) if circuit_file is not None else None,
            circuit_hash=str(circuit_hash) if circuit_hash is not None else None,
            eval_timeout=float(eval_timeout) if eval_timeout is not None else None,  # type: ignore[arg-type]
            fault_plan=str(fault_plan) if fault_plan is not None else None,
            shared_aig=(
                shm.SharedAIGHandle.from_payload(shared_aig)  # type: ignore[arg-type]
                if shared_aig is not None
                else None
            ),
            reference_stats=(
                (int(reference_stats[0]), int(reference_stats[1]))  # type: ignore[index]
                if reference_stats is not None
                else None
            ),
            initial_stats=(
                (int(initial_stats[0]), int(initial_stats[1]))  # type: ignore[index]
                if initial_stats is not None
                else None
            ),
        )
