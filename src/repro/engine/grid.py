"""Parallel (method × circuit × seed) grid execution.

The paper's evaluation protocol is an embarrassingly parallel grid of
independent optimisation runs.  This module dispatches those cells across
a process pool with deterministic per-cell seeding; the serial path
(``jobs=1``) runs the *same* cell function in-process, so the two are
guaranteed to produce identical results — each cell starts from a fresh
per-run evaluator state regardless of which cells ran before it or in
which process.  A shared persistent QoR cache (``cache_dir``) lets
repeated grids skip already-computed sequences entirely.
"""

from __future__ import annotations

from concurrent.futures import as_completed
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.engine import worker
from repro.engine.engine import resolve_jobs
from repro.engine.pool import WarmPool
from repro.engine.spec import EvaluatorSpec

if TYPE_CHECKING:  # import cycle: the runner imports this module
    from repro.experiments.runner import ExperimentConfig


def build_cell_payload(
    *,
    index: int,
    spec: EvaluatorSpec,
    method_key: str,
    seed: int,
    budget: int,
    sequence_length: Optional[int],
    overrides: Optional[Dict[str, object]] = None,
    cell_id: Optional[str] = None,
    store_root: Optional[str] = None,
    checkpoint_every: int = 0,
    wall_clock_budget: Optional[float] = None,
    early_stop_improvement: Optional[float] = None,
    attempt: int = 0,
) -> Dict[str, object]:
    """The one picklable cell-payload schema every grid driver shares.

    Both the legacy :func:`grid_cell_payloads` expansion and the campaign
    driver (:func:`repro.api.run.run_campaign`) build their worker
    payloads here, so the worker-side contract lives in exactly one
    place.  The campaign-only keys (``cell_id``, ``store_root``,
    ``checkpoint_every``, ``wall_clock_budget``,
    ``early_stop_improvement``) are included only when set; the legacy
    cell runner ignores them.
    """
    payload: Dict[str, object] = {
        "index": int(index),
        "spec": spec.to_payload(),
        "method_key": str(method_key),
        "seed": int(seed),
        "budget": int(budget),
        "sequence_length": sequence_length,
        "overrides": dict(overrides or {}),
    }
    if cell_id is not None:
        payload["cell_id"] = str(cell_id)
    if store_root is not None:
        payload["store_root"] = str(store_root)
    if checkpoint_every:
        payload["checkpoint_every"] = int(checkpoint_every)
    if wall_clock_budget is not None:
        payload["wall_clock_budget"] = float(wall_clock_budget)
    if early_stop_improvement is not None:
        payload["early_stop_improvement"] = float(early_stop_improvement)
    if attempt:
        payload["attempt"] = int(attempt)
    return payload


def grid_cell_payloads(config: "ExperimentConfig") -> List[Dict[str, object]]:
    """Flatten an :class:`~repro.experiments.runner.ExperimentConfig` grid.

    Cells are ordered circuit-major, then method, then seed — the same
    order the historical serial runner used — and each carries an
    ``index`` so parallel completions can be re-sorted deterministically.
    """
    payloads: List[Dict[str, object]] = []
    index = 0
    for circuit_name in config.circuits:
        spec = EvaluatorSpec.for_circuit(
            circuit_name, width=config.circuit_width, lut_size=config.lut_size,
            objective=config.objective,
        )
        for method_key in config.methods:
            for seed in range(config.num_seeds):
                payloads.append(build_cell_payload(
                    index=index,
                    spec=spec,
                    method_key=method_key,
                    seed=seed,
                    budget=config.budget,
                    sequence_length=config.sequence_length,
                    overrides=config.method_overrides.get(method_key, {}),
                ))
                index += 1
    return payloads


def _progress_message(payload: Dict[str, object], display_names: Dict[str, str]) -> str:
    method = str(payload["method_key"])
    display = display_names.get(method, method)
    return f"{display} / {payload['spec']['circuit']} / seed {payload['seed']}"  # type: ignore[index]


def run_grid(
    config: "ExperimentConfig",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[object]:
    """Run the full grid described by ``config`` across ``jobs`` processes.

    Returns the per-cell :class:`~repro.bo.base.OptimisationResult` list
    in deterministic (circuit, method, seed) order, independent of
    ``jobs``.
    """
    # Imported lazily: the runner's public API imports this module.
    from repro.experiments.runner import method_display_names

    jobs = resolve_jobs(jobs)
    payloads = grid_cell_payloads(config)
    display_names = method_display_names()
    results: List[Optional[object]] = [None] * len(payloads)

    if jobs <= 1 or len(payloads) <= 1:
        worker.init_grid_worker(cache_dir)
        for payload in payloads:
            if progress is not None:
                progress(_progress_message(payload, display_names))
            index, result = worker.run_grid_cell(payload)
            results[index] = result
    else:
        with WarmPool(
            max_workers=min(jobs, len(payloads)),
            initializer=worker.init_grid_worker,
            initargs_for=lambda epoch: (cache_dir,),
        ) as warm:
            pool = warm.executor()
            futures = {pool.submit(worker.run_grid_cell, payload): payload
                       for payload in payloads}
            for future in as_completed(futures):
                index, result = future.result()
                results[index] = result
                if progress is not None:
                    progress(_progress_message(futures[future], display_names))

    missing = [i for i, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"grid cells {missing} produced no result")
    return results  # type: ignore[return-value]
