"""Parallel (method × circuit × seed) grid execution.

The paper's evaluation protocol is an embarrassingly parallel grid of
independent optimisation runs.  This module dispatches those cells across
a process pool with deterministic per-cell seeding; the serial path
(``jobs=1``) runs the *same* cell function in-process, so the two are
guaranteed to produce identical results — each cell starts from a fresh
per-run evaluator state regardless of which cells ran before it or in
which process.  A shared persistent QoR cache (``cache_dir``) lets
repeated grids skip already-computed sequences entirely.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional

from repro.engine import worker
from repro.engine.engine import resolve_jobs
from repro.engine.spec import EvaluatorSpec


def grid_cell_payloads(config) -> List[Dict[str, object]]:
    """Flatten an :class:`~repro.experiments.runner.ExperimentConfig` grid.

    Cells are ordered circuit-major, then method, then seed — the same
    order the historical serial runner used — and each carries an
    ``index`` so parallel completions can be re-sorted deterministically.
    """
    payloads: List[Dict[str, object]] = []
    index = 0
    for circuit_name in config.circuits:
        spec = EvaluatorSpec.for_circuit(
            circuit_name, width=config.circuit_width, lut_size=config.lut_size,
            objective=getattr(config, "objective", None),
        )
        for method_key in config.methods:
            for seed in range(config.num_seeds):
                payloads.append(
                    {
                        "index": index,
                        "spec": spec.to_payload(),
                        "method_key": method_key,
                        "seed": seed,
                        "budget": config.budget,
                        "sequence_length": config.sequence_length,
                        "overrides": dict(config.method_overrides.get(method_key, {})),
                    }
                )
                index += 1
    return payloads


def _progress_message(payload: Dict[str, object], display_names: Dict[str, str]) -> str:
    method = str(payload["method_key"])
    display = display_names.get(method, method)
    return f"{display} / {payload['spec']['circuit']} / seed {payload['seed']}"  # type: ignore[index]


def run_grid(
    config,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[object]:
    """Run the full grid described by ``config`` across ``jobs`` processes.

    Returns the per-cell :class:`~repro.bo.base.OptimisationResult` list
    in deterministic (circuit, method, seed) order, independent of
    ``jobs``.
    """
    # Imported lazily: the runner's public API imports this module.
    from repro.experiments.runner import method_display_names

    jobs = resolve_jobs(jobs)
    payloads = grid_cell_payloads(config)
    display_names = method_display_names()
    results: List[Optional[object]] = [None] * len(payloads)

    if jobs <= 1 or len(payloads) <= 1:
        worker.init_grid_worker(cache_dir)
        for payload in payloads:
            if progress is not None:
                progress(_progress_message(payload, display_names))
            index, result = worker.run_grid_cell(payload)
            results[index] = result
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(payloads)),
            initializer=worker.init_grid_worker,
            initargs=(cache_dir,),
        ) as pool:
            futures = {pool.submit(worker.run_grid_cell, payload): payload
                       for payload in payloads}
            for future in as_completed(futures):
                index, result = future.result()
                results[index] = result
                if progress is not None:
                    progress(_progress_message(futures[future], display_names))

    missing = [i for i, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"grid cells {missing} produced no result")
    return results  # type: ignore[return-value]
