"""Worker-process entry points for the evaluation engine.

Pool workers hold per-process state in module globals: an evaluator
rebuilt from the picklable :class:`repro.engine.spec.EvaluatorSpec`
(AIGs never cross the pipe) and, for grid cells, a small registry of
evaluators keyed by circuit so the expensive ``resyn2`` reference mapping
is computed once per worker rather than once per cell.  Everything in
this module is importable at top level — a requirement for
``multiprocessing`` pickling of the initialiser and task functions.

Campaign cells (:func:`run_campaign_cell`) are *round-granular*: instead
of returning one opaque result blob at the end, the worker streams typed
:class:`repro.bo.base.RunEvent` summaries back to the parent over a
manager queue as each ask/tell round completes, appends per-round
trajectory lines to the campaign store, persists periodic optimiser
checkpoints, and — when a checkpoint for the cell already exists —
resumes the interrupted cell from it bit-identically.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.engine import faults, shm
from repro.engine.cache import PersistentQoRCache
from repro.engine.spec import EvaluatorSpec
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation

if TYPE_CHECKING:  # import cycles: bo/api import this package
    from repro.api.store import CampaignStore
    from repro.bo.base import DriveProgress, RunEvent, SequenceOptimiser
    from repro.bo.space import SequenceSpace

#: Worker-side event sink signature: ``(cell_id, event_dict)``.
EventSink = Callable[[str, Dict[str, object]], None]

#: True in processes initialised as pool workers: injected crash events
#: manifest as a hard ``os._exit`` (→ ``BrokenProcessPool`` upstream)
#: instead of a raised exception.
_IN_POOL = False

# ----------------------------------------------------------------------
# Batch-evaluation workers (EvaluationEngine pool)
# ----------------------------------------------------------------------
_BATCH_EVALUATOR: Optional[QoREvaluator] = None
_EPOCH = 0


def init_evaluation_worker(spec_payload: Dict[str, object],
                           epoch: int = 0) -> None:
    """Pool initialiser: rebuild the evaluator once per worker process.

    ``epoch`` is the pool generation — it increments every time the
    engine rebuilds a crashed pool, and doubles as the fault-injection
    "attempt" key so a scheduled crash fires once per generation rather
    than forever.
    """
    global _BATCH_EVALUATOR, _IN_POOL, _EPOCH
    # The parent may have run serial grid cells first, leaving an open
    # cache connection in this module's grid globals; abandon anything
    # inherited across fork before doing work in this process.
    _discard_state_from_other_process()
    _IN_POOL = True
    _EPOCH = int(epoch)
    spec = EvaluatorSpec.from_payload(spec_payload)
    # cache=False: workers only run the pure compute path; memoisation and
    # accounting live in the parent evaluator.  When the spec carries a
    # shared-memory handle this attaches the parent's published arrays
    # (warm path); otherwise it rebuilds cold.
    _BATCH_EVALUATOR = spec.build_evaluator(cache=False)
    if spec.fault_plan is not None or spec.eval_timeout is not None:
        faults.activate("*", int(epoch), hard_crash=True)


def evaluate_sequence(names: Tuple[str, ...]) -> SequenceEvaluation:
    """Score one sequence in the worker's rebuilt evaluator (pure)."""
    if _BATCH_EVALUATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("evaluation worker used before initialisation")
    return _BATCH_EVALUATOR.compute(names)


def worker_diagnostics() -> Dict[str, object]:
    """Introspection task for tests and the CLI: one worker's warm state."""
    return {
        "pid": os.getpid(),
        "epoch": _EPOCH,
        "in_pool": _IN_POOL,
        "batch_evaluator_ready": _BATCH_EVALUATOR is not None,
        "grid_evaluators": len(_GRID_EVALUATORS),
        "grid_evictions": _GRID_EVALUATORS.evictions,
        "shm_attaches": shm.attach_count(),
        "shm_fallbacks": shm.fallback_count(),
    }


# ----------------------------------------------------------------------
# Grid-cell workers (parallel experiment runner)
# ----------------------------------------------------------------------
_UNSET = object()  # distinct from None, which is a valid cache_dir
_GRID_CACHE_DIR: object = _UNSET
_GRID_CACHE: Optional[PersistentQoRCache] = None

#: Default bound for the per-worker evaluator cache.  Warm pool workers
#: now live for a whole sweep, so an unbounded circuit-keyed cache would
#: grow with corpus size; eight evaluators comfortably covers a round's
#: working set while capping memory.
DEFAULT_EVALUATOR_CACHE_LIMIT = 8


class _EvaluatorLRU:
    """Bounded evaluator cache keyed by ``EvaluatorSpec.identity_key()``.

    Eviction only drops the worker's warm copy — a re-built evaluator is
    bit-identical (deterministic construction) and keeps sharing the
    process-wide persistent cache handle, so the bound can never change
    results, only re-pay construction cost.
    """

    def __init__(self, limit: int = DEFAULT_EVALUATOR_CACHE_LIMIT) -> None:
        self.limit = int(limit)
        self._items: "OrderedDict[Tuple[object, ...], QoREvaluator]" = OrderedDict()
        self.evictions = 0

    def get(self, key: Tuple[object, ...]) -> Optional[QoREvaluator]:
        evaluator = self._items.get(key)
        if evaluator is not None:
            self._items.move_to_end(key)
        return evaluator

    def put(self, key: Tuple[object, ...], evaluator: QoREvaluator) -> None:
        self._items[key] = evaluator
        self._items.move_to_end(key)
        while len(self._items) > self.limit > 0:
            # Evicted evaluators are just dropped, never closed: the
            # persistent cache handle they reference is process-wide
            # (_GRID_CACHE) and stays open for their survivors.
            self._items.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)


_GRID_EVALUATORS = _EvaluatorLRU()
_GRID_PID: Optional[int] = None
_ABANDONED_CACHES: list = []  # fork-inherited handles we must never close


def _discard_state_from_other_process() -> None:
    """Drop grid state inherited across ``fork``.

    The serial grid path mutates these globals in the parent process, so
    forked pool workers start with the parent's open SQLite handle and
    evaluators.  SQLite connections must not be used (not even closed)
    from another process — abandon them and start clean.
    """
    global _GRID_CACHE_DIR, _GRID_CACHE, _GRID_PID
    if _GRID_PID != os.getpid():
        if _GRID_CACHE is not None:
            # Keep the inherited handle referenced forever so the child
            # never finalises (= closes) a connection it does not own.
            _ABANDONED_CACHES.append(_GRID_CACHE)
        _GRID_CACHE = None
        _GRID_CACHE_DIR = _UNSET
        _GRID_EVALUATORS.clear()
        shm.reset_counters()
        _GRID_PID = os.getpid()


def init_grid_worker(cache_dir: Optional[str],
                     cache_limit: Optional[int] = None) -> None:
    """Pool initialiser for grid cells; also used by the serial fallback.

    ``cache_limit`` overrides the per-worker evaluator LRU bound
    (``None`` keeps the current bound) — tests use ``1`` to exercise
    eviction, long corpus sweeps may raise it.
    """
    global _GRID_CACHE_DIR, _GRID_CACHE
    _discard_state_from_other_process()
    if cache_limit is not None:
        _GRID_EVALUATORS.limit = int(cache_limit)
    if cache_dir != _GRID_CACHE_DIR:
        if _GRID_CACHE is not None:
            _GRID_CACHE.close()
            _GRID_CACHE = None
        # Cached evaluators hold a reference to the previous cache handle
        # (possibly none), so they cannot be reused across cache dirs.
        _GRID_EVALUATORS.clear()
    _GRID_CACHE_DIR = cache_dir
    if cache_dir is not None and _GRID_CACHE is None:
        _GRID_CACHE = PersistentQoRCache(cache_dir)


def _grid_evaluator(spec: EvaluatorSpec) -> QoREvaluator:
    """Per-process evaluator for a circuit, built on first use.

    Cached in a bounded LRU keyed by the spec's identity — an eviction
    re-pays construction on next use but cannot change results.
    """
    key = spec.identity_key()
    evaluator = _GRID_EVALUATORS.get(key)
    if evaluator is None:
        evaluator = spec.build_evaluator(cache=True, persistent_cache=_GRID_CACHE)
        _GRID_EVALUATORS.put(key, evaluator)
    return evaluator


def _prepare_cell(
    payload: Dict[str, object],
) -> Tuple[EvaluatorSpec, QoREvaluator, "SequenceOptimiser", int, int]:
    """Shared per-cell setup: ``(spec, evaluator, optimiser, budget, index)``.

    Each cell starts from a clean per-run state (history, counters and
    in-memory memoisation cleared) so its result does not depend on which
    cells ran before it in the same process — the property that makes
    ``jobs=1`` and ``jobs=N`` grids identical.  Both cell runners
    (:func:`run_grid_cell`, :func:`run_campaign_cell`) build on this.
    """
    # Imported here: the runner imports this package for its public API,
    # and a module-level import back into the runner would be circular.
    from repro.experiments.runner import make_optimiser

    spec = EvaluatorSpec.from_payload(payload["spec"])  # type: ignore[arg-type]
    evaluator = _grid_evaluator(spec)
    evaluator.reset_history(clear_cache=True)
    optimiser = make_optimiser(
        str(payload["method_key"]),
        space=None if payload["sequence_length"] is None else _make_space(payload),
        seed=int(payload["seed"]),  # type: ignore[arg-type]
        **dict(payload.get("overrides") or {}),  # type: ignore[arg-type]
    )
    return (spec, evaluator, optimiser,
            int(payload["budget"]), int(payload["index"]))  # type: ignore[arg-type]


def run_grid_cell(payload: Dict[str, object]) -> Tuple[int, object]:
    """Run one (method, circuit, seed) cell; returns ``(index, result)``."""
    spec, evaluator, optimiser, budget, index = _prepare_cell(payload)
    # Persistent-cache writes are buffered and committed once per cell:
    # one SQLite transaction instead of one per evaluation, so workers do
    # not contend for the writer lock at high --jobs.
    evaluator.defer_persistent_writes(True)
    try:
        result = optimiser.optimise(evaluator, budget=budget)
    finally:
        # Turning deferral off flushes anything still buffered.
        evaluator.defer_persistent_writes(False)
    result.circuit = spec.circuit
    return index, result


def _make_space(payload: Dict[str, object]) -> "SequenceSpace":
    from repro.bo.space import SequenceSpace

    return SequenceSpace(sequence_length=int(payload["sequence_length"]))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Campaign-cell workers: round-granular streaming + checkpoint resume
# ----------------------------------------------------------------------
_EVENT_QUEUE: Optional[object] = None


def init_campaign_worker(cache_dir: Optional[str],
                         event_queue: Optional[object] = None,
                         in_pool: bool = False,
                         cache_limit: Optional[int] = None) -> None:
    """Pool initialiser for campaign cells.

    ``event_queue`` is a ``multiprocessing.Manager`` queue proxy (or
    ``None`` when the parent did not ask for live events); every cell
    running in this worker streams its round events into it as
    ``(cell_id, event_dict)`` tuples.  ``in_pool`` marks this process as
    a pool worker (injected crashes become hard process exits).
    ``cache_limit`` threads through to :func:`init_grid_worker`.
    """
    global _EVENT_QUEUE, _IN_POOL
    init_grid_worker(cache_dir, cache_limit=cache_limit)
    _EVENT_QUEUE = event_queue
    _IN_POOL = bool(in_pool)


def _queue_event_sink() -> Optional[EventSink]:
    if _EVENT_QUEUE is None:
        return None
    queue = _EVENT_QUEUE

    def sink(cell_id: str, event: Dict[str, object]) -> None:
        queue.put((cell_id, event))  # type: ignore[attr-defined]

    return sink


def run_campaign_cell(
    payload: Dict[str, object],
    event_sink: Optional[EventSink] = None,
) -> Tuple[int, object]:
    """Run (or resume) one campaign cell with round-granular streaming.

    Extends :func:`run_grid_cell` with the round-granular machinery:

    * every :class:`~repro.bo.base.RunEvent` of the cell's drive loop is
      forwarded to ``event_sink`` (serial path) or the pool's manager
      queue (parallel path) as a compact dict — live per-round progress
      for the parent;
    * with a ``store_root`` in the payload, each completed round appends
      one line to ``trajectories/<cell_id>.jsonl`` and every
      ``checkpoint_every``-th round atomically replaces
      ``checkpoints/<cell_id>.json`` with the optimiser's
      :meth:`~repro.bo.base.SequenceOptimiser.state_dict` plus the
      evaluator history;
    * if a checkpoint for the cell already exists, the cell *resumes*
      from it — evaluator history, memo cache, RNG and per-method state
      restored — and the continued trajectory is bit-identical to an
      uninterrupted run;
    * the campaign's ``wall_clock_budget`` / ``early_stop_improvement``
      knobs thread into the drive loop as ``max_seconds`` / ``stop_when``.
    """
    # Imported lazily: repro.api imports this package, so a module-level
    # import back into repro.api would be circular.
    from repro.api.store import CampaignStore

    spec, evaluator, optimiser, budget, index = _prepare_cell(payload)
    cell_id = payload.get("cell_id")
    store_root = payload.get("store_root")
    checkpoint_every = int(payload.get("checkpoint_every") or 0)  # type: ignore[arg-type]
    attempt = int(payload.get("attempt") or 0)  # type: ignore[arg-type]
    store = (CampaignStore(str(store_root))
             if store_root is not None and cell_id is not None else None)
    cell_id = str(cell_id) if cell_id is not None else f"cell-{index}"
    if event_sink is None:
        event_sink = _queue_event_sink()

    # Fault-injection context: scheduled events are keyed by this cell's
    # (cell_id, attempt); the cache hook makes the shared grid cache see
    # scheduled transient errors for the duration of this cell only.
    inject = spec.fault_plan is not None or spec.eval_timeout is not None
    if inject:
        faults.activate(cell_id, attempt, hard_crash=_IN_POOL)
        if _GRID_CACHE is not None:
            _GRID_CACHE.fault_hook = faults.build_cache_hook(spec.fault_plan)
    try:
        return _run_campaign_cell_body(
            payload, spec, evaluator, optimiser, budget, index,
            cell_id, store, checkpoint_every, event_sink)
    finally:
        if inject:
            faults.deactivate()
            if _GRID_CACHE is not None:
                _GRID_CACHE.fault_hook = None


def _run_campaign_cell_body(
    payload: Dict[str, object],
    spec: EvaluatorSpec,
    evaluator: QoREvaluator,
    optimiser: "SequenceOptimiser",
    budget: int,
    index: int,
    cell_id: str,
    store: "Optional[CampaignStore]",
    checkpoint_every: int,
    event_sink: Optional[EventSink],
) -> Tuple[int, object]:
    from repro.api.store import evaluation_from_dict, evaluation_to_dict
    from repro.bo.base import RoundCompleted, drive

    # ------------------------------------------------------------------
    # Resume from the latest checkpoint, if one exists.
    # ------------------------------------------------------------------
    optimiser.prepare(evaluator, budget)
    start_round = 0
    start_elapsed = 0.0
    checkpoint = store.read_checkpoint(cell_id) if store is not None else None
    if checkpoint is not None and optimiser.supports_checkpoint:
        saved = checkpoint["evaluator"]
        evaluator.restore_history(
            [evaluation_from_dict(item) for item in saved["history"]],  # type: ignore[index]
            num_computed=int(saved.get("num_computed",  # type: ignore[union-attr]
                                       len(saved["history"]))),  # type: ignore[index]
            num_persistent_hits=int(saved.get("num_persistent_hits", 0)),  # type: ignore[union-attr]
        )
        optimiser.load_state_dict(checkpoint["optimiser_state"])  # type: ignore[arg-type]
        start_round = int(checkpoint["round"])  # type: ignore[arg-type]
        start_elapsed = float(checkpoint.get("elapsed_seconds", 0.0))  # type: ignore[arg-type]
        # A kill can land between a trajectory append and the checkpoint
        # write; drop any rounds past the checkpoint — the continued run
        # re-emits them bit-identically.
        store.truncate_trajectory(cell_id, start_round)
    elif store is not None:
        # Fresh attempt (no usable checkpoint): discard any stale
        # trajectory left by a previous failed/killed attempt.
        store.reset_trajectory(cell_id)

    # ------------------------------------------------------------------
    # Round-granular persistence + streaming
    # ------------------------------------------------------------------
    def on_event(event: "RunEvent") -> None:
        if store is not None and isinstance(event, RoundCompleted):
            store.append_trajectory(cell_id, {
                "round": event.round_index,
                "num_evaluations": event.num_evaluations,
                "best_qor": event.best.qor if event.best is not None else None,
                "best_improvement": (event.best.qor_improvement
                                     if event.best is not None else None),
                "records": [evaluation_to_dict(record)
                            for record in event.records],
            })
            if (checkpoint_every > 0 and optimiser.supports_checkpoint
                    and event.round_index % checkpoint_every == 0):
                store.write_checkpoint(cell_id, {
                    "round": event.round_index,
                    "num_evaluations": evaluator.num_evaluations,
                    "elapsed_seconds": event.elapsed_seconds,
                    "method_key": str(payload["method_key"]),
                    "optimiser_state": optimiser.state_dict(),
                    "evaluator": {
                        "history": [evaluation_to_dict(record)
                                    for record in evaluator.history],
                        "num_computed": evaluator.num_computed,
                        "num_persistent_hits": evaluator.num_persistent_hits,
                    },
                })
        if event_sink is not None:
            event_sink(cell_id, event.to_dict())

    wall_clock = payload.get("wall_clock_budget")
    threshold = payload.get("early_stop_improvement")
    stop_when = None
    if threshold is not None:
        floor = float(threshold)  # type: ignore[arg-type]

        def stop_when(progress: "DriveProgress") -> bool:
            return (progress.best is not None
                    and progress.best.qor_improvement >= floor)

    evaluator.defer_persistent_writes(True)
    try:
        drive(
            optimiser, evaluator, budget,
            on_event=on_event,
            stop_when=stop_when,
            max_seconds=float(wall_clock) if wall_clock is not None else None,  # type: ignore[arg-type]
            start_round=start_round,
            start_elapsed=start_elapsed,
        )
    finally:
        evaluator.defer_persistent_writes(False)
    result = optimiser._build_result(evaluator, spec.circuit,
                                     metadata=optimiser.run_metadata())
    # The checkpoint is cleared by the *parent* after it has written the
    # final record, so a kill in between still leaves a resumable cell.
    return index, result
