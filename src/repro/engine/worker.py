"""Worker-process entry points for the evaluation engine.

Pool workers hold per-process state in module globals: an evaluator
rebuilt from the picklable :class:`repro.engine.spec.EvaluatorSpec`
(AIGs never cross the pipe) and, for grid cells, a small registry of
evaluators keyed by circuit so the expensive ``resyn2`` reference mapping
is computed once per worker rather than once per cell.  Everything in
this module is importable at top level — a requirement for
``multiprocessing`` pickling of the initialiser and task functions.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.engine.cache import PersistentQoRCache
from repro.engine.spec import EvaluatorSpec
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation

# ----------------------------------------------------------------------
# Batch-evaluation workers (EvaluationEngine pool)
# ----------------------------------------------------------------------
_BATCH_EVALUATOR: Optional[QoREvaluator] = None


def init_evaluation_worker(spec_payload: Dict[str, object]) -> None:
    """Pool initialiser: rebuild the evaluator once per worker process."""
    global _BATCH_EVALUATOR
    # The parent may have run serial grid cells first, leaving an open
    # cache connection in this module's grid globals; abandon anything
    # inherited across fork before doing work in this process.
    _discard_state_from_other_process()
    spec = EvaluatorSpec.from_payload(spec_payload)
    # cache=False: workers only run the pure compute path; memoisation and
    # accounting live in the parent evaluator.
    _BATCH_EVALUATOR = spec.build_evaluator(cache=False)


def evaluate_sequence(names: Tuple[str, ...]) -> SequenceEvaluation:
    """Score one sequence in the worker's rebuilt evaluator (pure)."""
    if _BATCH_EVALUATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("evaluation worker used before initialisation")
    return _BATCH_EVALUATOR.compute(names)


# ----------------------------------------------------------------------
# Grid-cell workers (parallel experiment runner)
# ----------------------------------------------------------------------
_UNSET = object()  # distinct from None, which is a valid cache_dir
_GRID_CACHE_DIR: object = _UNSET
_GRID_CACHE: Optional[PersistentQoRCache] = None
_GRID_EVALUATORS: Dict[Tuple[str, int, int, Optional[Tuple[str, ...]]], QoREvaluator] = {}
_GRID_PID: Optional[int] = None
_ABANDONED_CACHES: list = []  # fork-inherited handles we must never close


def _discard_state_from_other_process() -> None:
    """Drop grid state inherited across ``fork``.

    The serial grid path mutates these globals in the parent process, so
    forked pool workers start with the parent's open SQLite handle and
    evaluators.  SQLite connections must not be used (not even closed)
    from another process — abandon them and start clean.
    """
    global _GRID_CACHE_DIR, _GRID_CACHE, _GRID_PID
    if _GRID_PID != os.getpid():
        if _GRID_CACHE is not None:
            # Keep the inherited handle referenced forever so the child
            # never finalises (= closes) a connection it does not own.
            _ABANDONED_CACHES.append(_GRID_CACHE)
        _GRID_CACHE = None
        _GRID_CACHE_DIR = _UNSET
        _GRID_EVALUATORS.clear()
        _GRID_PID = os.getpid()


def init_grid_worker(cache_dir: Optional[str]) -> None:
    """Pool initialiser for grid cells; also used by the serial fallback."""
    global _GRID_CACHE_DIR, _GRID_CACHE
    _discard_state_from_other_process()
    if cache_dir != _GRID_CACHE_DIR:
        if _GRID_CACHE is not None:
            _GRID_CACHE.close()
            _GRID_CACHE = None
        # Cached evaluators hold a reference to the previous cache handle
        # (possibly none), so they cannot be reused across cache dirs.
        _GRID_EVALUATORS.clear()
    _GRID_CACHE_DIR = cache_dir
    if cache_dir is not None and _GRID_CACHE is None:
        _GRID_CACHE = PersistentQoRCache(cache_dir)


def _grid_evaluator(spec: EvaluatorSpec) -> QoREvaluator:
    """Per-process evaluator for a circuit, built on first use."""
    key = (spec.circuit, spec.width, spec.lut_size, spec.reference_sequence,
           spec.objective)
    evaluator = _GRID_EVALUATORS.get(key)
    if evaluator is None:
        evaluator = spec.build_evaluator(cache=True, persistent_cache=_GRID_CACHE)
        _GRID_EVALUATORS[key] = evaluator
    return evaluator


def run_grid_cell(payload: Dict[str, object]) -> Tuple[int, object]:
    """Run one (method, circuit, seed) cell; returns ``(index, result)``.

    Each cell starts from a clean per-run state (history, counters and
    in-memory memoisation cleared) so its result does not depend on which
    cells ran before it in the same process — the property that makes
    ``jobs=1`` and ``jobs=N`` grids identical.
    """
    # Imported here: the runner imports this package for its public API,
    # and a module-level import back into the runner would be circular.
    from repro.experiments.runner import make_optimiser

    spec = EvaluatorSpec.from_payload(payload["spec"])  # type: ignore[arg-type]
    evaluator = _grid_evaluator(spec)
    evaluator.reset_history(clear_cache=True)
    optimiser = make_optimiser(
        str(payload["method_key"]),
        space=None if payload["sequence_length"] is None else _make_space(payload),
        seed=int(payload["seed"]),  # type: ignore[arg-type]
        **dict(payload.get("overrides") or {}),  # type: ignore[arg-type]
    )
    # Persistent-cache writes are buffered and committed once per cell:
    # one SQLite transaction instead of one per evaluation, so workers do
    # not contend for the writer lock at high --jobs.
    evaluator.defer_persistent_writes(True)
    try:
        result = optimiser.optimise(evaluator, budget=int(payload["budget"]))  # type: ignore[arg-type]
    finally:
        # Turning deferral off flushes anything still buffered.
        evaluator.defer_persistent_writes(False)
    result.circuit = spec.circuit
    return int(payload["index"]), result  # type: ignore[arg-type]


def _make_space(payload: Dict[str, object]):
    from repro.bo.space import SequenceSpace

    return SequenceSpace(sequence_length=int(payload["sequence_length"]))  # type: ignore[arg-type]
