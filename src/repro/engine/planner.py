"""Adaptive execution planner: pick serial vs warm-pool per batch.

The engine measures each batch's wall clock (the planner itself never
reads a clock — determinism lint keeps time out of this module) and
feeds the observations back here.  The planner keeps exponentially
weighted per-evaluation costs for both modes plus a pool spin-up
estimate, and predicts which mode finishes a batch sooner:

    serial:  n * serial_eval
    pool:    spinup (if cold) + n * dispatch + ceil(n / parallelism) * pool_eval

Short batches and single-core hosts therefore never pay pool tax, while
large batches on multi-core hosts route to the warm pool once it has
proven itself.  The mode choice can never affect results — both paths
are bit-identical by the engine's core invariant — so the planner is
free to be heuristic.

``jobs=1`` (the existing ``--jobs`` contract) bypasses planning
entirely, and the engine's ``adaptive=False`` switch forces the legacy
always-pool behaviour for benchmarks.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, Optional

#: EWMA smoothing factor for cost observations.
_ALPHA = 0.3

#: Pessimistic defaults (seconds) before any measurement exists.
_DEFAULT_SPINUP = 0.35
_DEFAULT_DISPATCH = 0.0008


def effective_parallelism(jobs: int) -> int:
    """CPUs this process can actually use, capped at ``jobs``."""
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return max(1, min(int(jobs), available))


@dataclass(frozen=True)
class PlanDecision:
    """One per-batch routing decision, logged in engine metadata."""

    batch_size: int
    mode: str  # "serial" | "pool"
    predicted_serial: Optional[float]
    predicted_pool: Optional[float]
    pool_warm: bool
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch_size": int(self.batch_size),
            "mode": self.mode,
            "predicted_serial": self.predicted_serial,
            "predicted_pool": self.predicted_pool,
            "pool_warm": bool(self.pool_warm),
            "reason": self.reason,
        }


class ExecutionPlanner:
    """Cost model choosing serial vs warm-pool execution per batch."""

    def __init__(
        self,
        jobs: int,
        spinup_estimate: float = _DEFAULT_SPINUP,
        dispatch_overhead: float = _DEFAULT_DISPATCH,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.parallelism = effective_parallelism(self.jobs)
        self._serial_eval: Optional[float] = None
        self._pool_eval: Optional[float] = None
        self._spinup = float(spinup_estimate)
        self._dispatch = float(dispatch_overhead)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _predict_serial(self, batch_size: int) -> Optional[float]:
        if self._serial_eval is None:
            return None
        return batch_size * self._serial_eval

    def _predict_pool(self, batch_size: int, pool_warm: bool) -> Optional[float]:
        per_eval = self._pool_eval if self._pool_eval is not None else self._serial_eval
        if per_eval is None:
            return None
        cost = batch_size * self._dispatch
        cost += math.ceil(batch_size / self.parallelism) * per_eval
        if not pool_warm:
            cost += self._spinup
        return cost

    def plan(self, batch_size: int, pool_warm: bool) -> PlanDecision:
        """Route one batch.  Ties favour serial (no IPC risk for no gain)."""
        predicted_serial = self._predict_serial(batch_size)
        predicted_pool = self._predict_pool(batch_size, pool_warm)
        if self.jobs <= 1 or batch_size <= 1:
            mode, reason = "serial", "jobs/batch below parallel threshold"
        elif predicted_serial is None:
            # Bootstrap: measure serial cost once before trusting the model.
            mode, reason = "serial", "bootstrap serial measurement"
        elif predicted_pool is None or predicted_pool >= predicted_serial:
            mode, reason = "serial", "predicted serial cost <= pool cost"
        else:
            mode, reason = "pool", "predicted pool cost < serial cost"
        return PlanDecision(
            batch_size=batch_size,
            mode=mode,
            predicted_serial=predicted_serial,
            predicted_pool=predicted_pool,
            pool_warm=pool_warm,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Observation (engine-measured wall clock)
    # ------------------------------------------------------------------
    @staticmethod
    def _ewma(previous: Optional[float], sample: float) -> float:
        if previous is None:
            return sample
        return (1.0 - _ALPHA) * previous + _ALPHA * sample

    def observe_serial(self, batch_size: int, seconds: float) -> None:
        if batch_size <= 0 or seconds < 0:
            return
        self._serial_eval = self._ewma(self._serial_eval, seconds / batch_size)

    def observe_pool(self, batch_size: int, seconds: float, cold: bool) -> None:
        """Fold one pool batch back into the model.

        Warm batches refine the per-evaluation pool cost (implied by wall
        clock divided by the number of parallel waves); cold batches
        additionally refine the spin-up estimate as whatever wall clock
        the work itself cannot explain.
        """
        if batch_size <= 0 or seconds < 0:
            return
        waves = math.ceil(batch_size / self.parallelism)
        if cold:
            per_eval = self._pool_eval if self._pool_eval is not None else self._serial_eval
            work = waves * per_eval if per_eval is not None else 0.0
            self._spinup = self._ewma(self._spinup, max(0.0, seconds - work))
            return
        self._pool_eval = self._ewma(
            self._pool_eval, max(0.0, seconds - batch_size * self._dispatch) / waves
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """JSON-safe snapshot for engine metadata / CLI reporting."""
        return {
            "jobs": self.jobs,
            "parallelism": self.parallelism,
            "serial_eval_ewma": self._serial_eval,
            "pool_eval_ewma": self._pool_eval,
            "spinup_ewma": self._spinup,
            "dispatch_overhead": self._dispatch,
        }


__all__ = ["ExecutionPlanner", "PlanDecision", "effective_parallelism"]
