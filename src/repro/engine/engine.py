"""Parallel batch evaluation of synthesis sequences.

:class:`EvaluationEngine` fans a batch of sequences out to a process pool
whose workers rebuild the circuit + mapper from a picklable
:class:`repro.engine.spec.EvaluatorSpec` (AIGs never cross the pipe), and
falls back to serial in-process computation for ``jobs=1`` — so a single
code path serves laptops and many-core machines.  The engine is *pure
compute*: it returns :class:`repro.qor.SequenceEvaluation` records
without touching any evaluator's history, counters or caches.  All
accounting stays in the parent :class:`repro.qor.QoREvaluator`, which is
what keeps parallel runs bit-identical to serial ones.

Typical use::

    spec = EvaluatorSpec.for_circuit("adder", width=16)
    evaluator = spec.build_evaluator()
    with EvaluationEngine(spec, jobs=4, evaluator=evaluator) as engine:
        evaluator.attach_engine(engine)
        optimiser.optimise(evaluator, budget=200)
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine import worker
from repro.engine.spec import EvaluatorSpec
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.synth.operations import sequence_to_names


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all CPUs)")
    return int(jobs)


class EvaluationEngine:
    """Scores batches of sequences, in parallel when ``jobs > 1``.

    Parameters
    ----------
    spec:
        Picklable evaluator description used to rebuild the black box in
        each worker.  Required when ``jobs > 1``; optional for the serial
        path if ``evaluator`` is given.
    jobs:
        Worker-process count; ``1`` computes in-process (no pool is ever
        created), ``0``/``None`` uses every CPU.
    evaluator:
        Optional existing evaluator whose pure :meth:`~QoREvaluator.compute`
        serves the serial path and single-element batches, avoiding a
        redundant circuit rebuild in the parent process.
    """

    def __init__(
        self,
        spec: Optional[EvaluatorSpec] = None,
        jobs: int = 1,
        evaluator: Optional[QoREvaluator] = None,
    ) -> None:
        self.spec = spec
        self.jobs = resolve_jobs(jobs)
        if self.jobs > 1 and spec is None:
            raise ValueError("a spec is required for parallel evaluation (jobs > 1)")
        if spec is None and evaluator is None:
            raise ValueError("need a spec or an evaluator to compute with")
        self._local = evaluator
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _local_evaluator(self) -> QoREvaluator:
        if self._local is None:
            assert self.spec is not None
            self._local = self.spec.build_evaluator(cache=False)
        return self._local

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            assert self.spec is not None
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=worker.init_evaluation_worker,
                initargs=(self.spec.to_payload(),),
            )
        return self._pool

    # ------------------------------------------------------------------
    def compute_batch(
        self, sequences: Sequence[Sequence[Union[str, int]]]
    ) -> List[SequenceEvaluation]:
        """Score a batch of sequences; results are positional.

        Pure compute — no evaluator state is touched.  Batches of one (or
        an engine with ``jobs=1``) stay in-process; larger batches go to
        the worker pool, which is created lazily on first use.
        """
        names_list: List[Tuple[str, ...]] = [
            tuple(sequence_to_names(seq)) for seq in sequences
        ]
        if not names_list:
            return []
        if self.jobs <= 1 or len(names_list) == 1:
            local = self._local_evaluator()
            return [local.compute(names) for names in names_list]
        pool = self._ensure_pool()
        chunksize = max(1, len(names_list) // (self.jobs * 4))
        return list(pool.map(worker.evaluate_sequence, names_list, chunksize=chunksize))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
