"""Parallel batch evaluation of synthesis sequences.

:class:`EvaluationEngine` fans a batch of sequences out to a *warm*
process pool — one :class:`~repro.engine.pool.WarmPool` owned for the
engine's whole life, whose workers rebuild the circuit + mapper exactly
once (from a picklable :class:`repro.engine.spec.EvaluatorSpec`) and
then serve every subsequent batch, round and cell.  Three layers keep
the parallel path cheap:

* **Warm workers** — the pool outlives batches; worker initialisation
  attaches the circuit and evaluator once per worker per pool epoch.
* **Shared-memory AIG hand-off** — the parent publishes the circuit's
  flat arrays via :mod:`repro.engine.shm` and piggybacks the measured
  reference/initial stats on the spec, so worker start-up is an
  O(num_vars) copy instead of a circuit rebuild plus reference flow.
* **Adaptive execution planner** — per batch, a measured cost model
  (:mod:`repro.engine.planner`) routes to serial or warm-pool
  execution, so short batches never pay pool tax; every decision is
  logged in :meth:`metadata`.

The engine is *pure compute*: it returns
:class:`repro.qor.SequenceEvaluation` records without touching any
evaluator's history, counters or caches.  All accounting stays in the
parent :class:`repro.qor.QoREvaluator`, which is what keeps parallel
runs bit-identical to serial ones — and why the planner's routing
choice can never change results.

With an ``eval_timeout`` or :class:`~repro.engine.faults.RetryPolicy`
configured the engine runs *supervised*: each sequence is submitted as
its own task, a worker that blows its deadline or dies is recycled (the
warm pool advances an epoch and rebuilds, in-flight sequences
re-submitted), and a sequence that keeps failing across
``max_attempts`` is surfaced as
:class:`~repro.engine.faults.PoisonInputError` instead of hanging or
aborting the run.  Supervised batches always use the pool (per-task
deadlines need worker isolation), so the planner only routes the
unsupervised fast path.

Typical use::

    spec = EvaluatorSpec.for_circuit("adder", width=16)
    evaluator = spec.build_evaluator()
    with EvaluationEngine(spec, jobs=4, evaluator=evaluator) as engine:
        evaluator.attach_engine(engine)
        optimiser.optimise(evaluator, budget=200)
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine import shm, worker
from repro.engine.faults import (
    DeadlineExceeded,
    PoisonInputError,
    PoolUnrecoverableError,
    RetryPolicy,
)
from repro.engine.planner import ExecutionPlanner, PlanDecision
from repro.engine.pool import WarmPool, terminate_pool
from repro.engine.spec import EvaluatorSpec
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.synth.operations import sequence_to_names

#: Backwards-compatible alias; the implementation moved to
#: :mod:`repro.engine.pool` alongside :class:`WarmPool`.
_terminate_pool = terminate_pool

#: How many routing decisions :meth:`EvaluationEngine.metadata` retains.
_DECISION_LOG_LIMIT = 64


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all CPUs)")
    return int(jobs)


class EvaluationEngine:
    """Scores batches of sequences, in parallel when ``jobs > 1``.

    Parameters
    ----------
    spec:
        Picklable evaluator description used to rebuild the black box in
        each worker.  Required when ``jobs > 1``; optional for the serial
        path if ``evaluator`` is given.
    jobs:
        Worker-process count; ``1`` computes in-process (no pool is ever
        created), ``0``/``None`` uses every CPU.
    evaluator:
        Optional existing evaluator whose pure :meth:`~QoREvaluator.compute`
        serves the serial path and single-element batches, avoiding a
        redundant circuit rebuild in the parent process.
    eval_timeout:
        Per-evaluation deadline in seconds.  Workers enforce it in-task
        via SIGALRM; the parent additionally enforces a hard deadline of
        ``2 × eval_timeout + 1`` per task, recycling the pool if a
        worker is wedged beyond even that.
    retry:
        Retry policy for deadline blowouts and worker crashes; defaults
        to :class:`RetryPolicy()` when ``eval_timeout`` is set.
    adaptive:
        When true (default) the execution planner routes each
        unsupervised batch to serial or warm-pool execution by predicted
        cost.  ``False`` restores the legacy behaviour — every
        multi-element batch at ``jobs > 1`` goes to the pool — which the
        throughput benchmark uses to measure raw pool speed.
    """

    def __init__(
        self,
        spec: Optional[EvaluatorSpec] = None,
        jobs: int = 1,
        evaluator: Optional[QoREvaluator] = None,
        *,
        eval_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
        adaptive: bool = True,
    ) -> None:
        self.spec = spec
        self.jobs = resolve_jobs(jobs)
        if self.jobs > 1 and spec is None:
            raise ValueError("a spec is required for parallel evaluation (jobs > 1)")
        if spec is None and evaluator is None:
            raise ValueError("need a spec or an evaluator to compute with")
        if eval_timeout is not None and eval_timeout <= 0:
            raise ValueError("eval_timeout must be positive")
        if (spec is not None and eval_timeout is not None
                and spec.eval_timeout is None):
            # Thread the deadline into the spec so workers enforce it
            # in-task via SIGALRM; the parent's hard deadline is only
            # the backstop for wedged workers.
            spec = dataclasses.replace(spec, eval_timeout=eval_timeout)
            self.spec = spec
        self.eval_timeout = eval_timeout
        self.retry = retry if retry is not None else (
            RetryPolicy() if eval_timeout is not None else None)
        self._sleep = sleep or time.sleep
        self._local = evaluator
        self._adaptive = bool(adaptive)
        self._planner = ExecutionPlanner(self.jobs)
        self._decisions: Deque[PlanDecision] = deque(maxlen=_DECISION_LOG_LIMIT)
        self._warm_pool: Optional[WarmPool] = None
        self._pool_payload: Optional[Dict[str, object]] = None
        self._shm_segment: Optional[shared_memory.SharedMemory] = None
        self._shm_handle: Optional[shm.SharedAIGHandle] = None
        self._rebuilds = 0

    @property
    def _supervised(self) -> bool:
        return self.retry is not None or self.eval_timeout is not None or (
            self.spec is not None and self.spec.fault_plan is not None)

    # ------------------------------------------------------------------
    def _local_evaluator(self) -> QoREvaluator:
        if self._local is None:
            assert self.spec is not None
            self._local = self.spec.build_evaluator(cache=False)
        return self._local

    def _worker_payload(self) -> Dict[str, object]:
        """Spec payload for pool workers: shm handle + warm stats attached.

        Built once and reused across pool epochs — a recycled pool's
        fresh workers re-attach the same shared-memory segment, so crash
        recovery rebuilds warm state instead of discarding it.
        """
        if self._pool_payload is None:
            assert self.spec is not None
            local = self._local_evaluator()
            if self._shm_segment is None:
                self._shm_segment, self._shm_handle = shm.publish_aig(local.aig)
            warm_spec = dataclasses.replace(
                self.spec,
                shared_aig=self._shm_handle,
                reference_stats=(local.reference_area, local.reference_delay),
                initial_stats=(local.initial_result.area,
                               local.initial_result.delay),
            )
            self._pool_payload = warm_spec.to_payload()
        return self._pool_payload

    def _warm(self) -> WarmPool:
        if self._warm_pool is None:
            self._warm_pool = WarmPool(
                max_workers=self.jobs,
                initializer=worker.init_evaluation_worker,
                initargs_for=lambda epoch: (self._worker_payload(), epoch),
            )
        return self._warm_pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        return self._warm().executor()

    def _recycle_pool(self) -> None:
        """Tear the pool down and advance the epoch for its successor."""
        self._warm().recycle()

    # ------------------------------------------------------------------
    def compute_batch(
        self, sequences: Sequence[Sequence[Union[str, int]]]
    ) -> List[SequenceEvaluation]:
        """Score a batch of sequences; results are positional.

        Pure compute — no evaluator state is touched.  Batches of one (or
        an engine with ``jobs=1``) stay in-process; larger batches are
        routed serial/pool by the planner (or forced to the warm pool
        with ``adaptive=False``).  With fault-tolerance knobs set, the
        parallel path runs supervised (per-task deadlines, retry, pool
        self-healing) and skips planning.
        """
        names_list: List[Tuple[str, ...]] = [
            tuple(sequence_to_names(seq)) for seq in sequences
        ]
        if not names_list:
            return []
        if self.jobs <= 1 or len(names_list) == 1:
            if self.jobs > 1 and self._adaptive and not self._supervised:
                # Single-element batches double as free serial-cost
                # samples that bootstrap the planner's model.
                return self._run_serial_batch(names_list)
            local = self._local_evaluator()
            return [local.compute(names) for names in names_list]
        if self._supervised:
            return self._compute_batch_supervised(names_list)
        if not self._adaptive:
            decision = PlanDecision(
                batch_size=len(names_list),
                mode="pool",
                predicted_serial=None,
                predicted_pool=None,
                pool_warm=self._warm_pool is not None and self._warm_pool.warm,
                reason="adaptive planning disabled",
            )
        else:
            decision = self._planner.plan(
                len(names_list),
                pool_warm=self._warm_pool is not None and self._warm_pool.warm,
            )
        self._decisions.append(decision)
        if decision.mode == "serial":
            return self._run_serial_batch(names_list)
        return self._run_pool_batch(names_list)

    def _run_serial_batch(
        self, names_list: List[Tuple[str, ...]]
    ) -> List[SequenceEvaluation]:
        local = self._local_evaluator()
        start = time.perf_counter()
        records = [local.compute(names) for names in names_list]
        self._planner.observe_serial(len(names_list),
                                     time.perf_counter() - start)
        return records

    def _run_pool_batch(
        self, names_list: List[Tuple[str, ...]]
    ) -> List[SequenceEvaluation]:
        # The original chunked fast path: one map, minimal overhead.
        cold = not (self._warm_pool is not None and self._warm_pool.warm)
        pool = self._ensure_pool()
        chunksize = max(1, len(names_list) // (self.jobs * 4))
        start = time.perf_counter()
        records = list(pool.map(worker.evaluate_sequence, names_list,
                                chunksize=chunksize))
        self._planner.observe_pool(len(names_list),
                                   time.perf_counter() - start, cold=cold)
        return records

    def _compute_batch_supervised(
        self, names_list: List[Tuple[str, ...]]
    ) -> List[SequenceEvaluation]:
        """Per-task submission with deadlines, retry and pool recycling.

        Submission is throttled to ``jobs`` futures in flight, so every
        in-flight task is actually *running* in a worker — which is what
        lets a pool crash or an overdue deadline be attributed to the
        small in-flight set rather than the whole batch.
        """
        policy = self.retry or RetryPolicy()
        results: List[Optional[SequenceEvaluation]] = [None] * len(names_list)
        attempts = [0] * len(names_list)
        queue = deque(range(len(names_list)))
        in_flight: Dict[Future, Tuple[int, float]] = {}
        # The parent-side hard deadline backs up the worker-side SIGALRM:
        # generous enough to never fire first on a healthy worker.
        hard_deadline = (2.0 * self.eval_timeout + 1.0
                         if self.eval_timeout is not None else None)

        def requeue(index: int, error: BaseException, *,
                    blame: bool = True) -> None:
            if blame:
                attempts[index] += 1
                if attempts[index] >= policy.max_attempts:
                    raise PoisonInputError(names_list[index], attempts[index],
                                           error)
                delay = policy.delay_for(attempts[index],
                                         "|".join(names_list[index]))
                if delay > 0:
                    self._sleep(delay)
            queue.append(index)

        def crash_recovery(error: BaseException) -> None:
            self._rebuilds += 1
            if self._rebuilds > policy.max_pool_rebuilds:
                raise PoolUnrecoverableError(
                    f"evaluation pool died {self._rebuilds} times "
                    f"(> {policy.max_pool_rebuilds} rebuilds): {error}"
                ) from error
            # Every in-flight task is a crash suspect; each gets an
            # attempt bump (poison detection still converges because the
            # actual poison input keeps crashing every rebuilt pool).
            suspects = [index for _, (index, _) in
                        sorted(in_flight.items(), key=lambda kv: kv[1][0])]
            in_flight.clear()
            self._recycle_pool()
            for index in suspects:
                requeue(index, error)

        while queue or in_flight:
            while queue and len(in_flight) < self.jobs:
                index = queue.popleft()
                try:
                    future = self._ensure_pool().submit(
                        worker.evaluate_sequence, names_list[index])
                except BrokenProcessPool as error:
                    queue.appendleft(index)
                    crash_recovery(error)
                    continue
                in_flight[future] = (index, time.monotonic())
            if not in_flight:
                continue
            done, _ = wait(set(in_flight),
                           timeout=0.05 if hard_deadline is not None else None,
                           return_when=FIRST_COMPLETED)
            broken: Optional[BrokenProcessPool] = None
            for future in done:
                index, _ = in_flight.pop(future)
                try:
                    results[index] = future.result()
                except BrokenProcessPool as error:
                    # The task whose future broke is a crash suspect:
                    # blame it (attempt bump) or a systematic crasher
                    # would re-fire identically on every resubmission.
                    broken = error
                    requeue(index, error)
                except DeadlineExceeded as error:
                    requeue(index, error)
            if broken is not None:
                crash_recovery(broken)
                continue
            if hard_deadline is not None and in_flight:
                now = time.monotonic()
                overdue = [(future, index) for future, (index, started)
                           in in_flight.items() if now - started > hard_deadline]
                if overdue:
                    # A wedged worker that even SIGALRM cannot reach:
                    # kill the pool; only the overdue tasks are blamed,
                    # the co-flying ones re-run blamelessly.
                    overdue_set = {future for future, _ in overdue}
                    innocent = [index for future, (index, _) in
                                in_flight.items() if future not in overdue_set]
                    in_flight.clear()
                    self._recycle_pool()
                    for index in innocent:
                        queue.append(index)
                    for _, index in overdue:
                        requeue(index, DeadlineExceeded(
                            "evaluation",
                            self.eval_timeout or hard_deadline,
                            names_list[index]))
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def metadata(self) -> Dict[str, object]:
        """JSON-safe execution metadata: pool state + planner decisions."""
        warm_pool = self._warm_pool
        return {
            "jobs": self.jobs,
            "adaptive": self._adaptive,
            "supervised": self._supervised,
            "pool": {
                "warm": warm_pool is not None and warm_pool.warm,
                "epoch": warm_pool.epoch if warm_pool is not None else 0,
                "builds": warm_pool.builds if warm_pool is not None else 0,
                "rebuilds": self._rebuilds,
            },
            "shared_aig": (self._shm_handle.to_payload()
                           if self._shm_handle is not None else None),
            "planner": self._planner.state(),
            "decisions": [decision.to_dict() for decision in self._decisions],
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and unlink shared memory (idempotent)."""
        if self._warm_pool is not None:
            self._warm_pool.close()
            self._warm_pool = None
        if self._shm_segment is not None:
            # Workers unregistered themselves from the resource tracker
            # on attach, so this is the one and only unlink.
            shm.unlink_segment(self._shm_segment)
            self._shm_segment = None
            self._shm_handle = None
            self._pool_payload = None

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
