"""Shared-memory hand-off for the array-backed AIG.

The engine publishes a circuit's flat ``is_and``/fanin arrays into one
POSIX shared-memory segment per engine; pool workers attach the segment
read-only and rebuild the graph with :meth:`repro.aig.graph.AIG.from_flat_arrays`
— an O(num_vars) copy with no structural hashing, file IO, or generator
replay.  The parent owns the segment lifecycle (create + unlink);
workers never unlink, and a vanished segment degrades to the cold spec
path instead of failing the batch.

Payload layout (little-endian)::

    [0:4]   magic b"RAIG"
    [4:8]   uint32 header length H
    [8:8+H] JSON header {name, num_vars, pi_names, pos, po_names}
    ...     is_and  — num_vars bytes
    ...     fanin0  — num_vars int64
    ...     fanin1  — num_vars int64

CPython < 3.13 registers *attached* segments with the attaching
process's resource tracker (bpo-39959), which would unlink the parent's
segment when a worker exits; :func:`attach_aig` therefore unregisters
immediately after attaching.
"""

from __future__ import annotations

import json
import struct
from array import array
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple, cast

from repro.aig.graph import AIG

_MAGIC = b"RAIG"
_HEADER_STRUCT = struct.Struct("<4sI")

# Worker-side counters surfaced by ``worker_diagnostics`` and the shm tests.
_ATTACHES = 0
_FALLBACKS = 0


@dataclass(frozen=True)
class SharedAIGHandle:
    """Name + size of a published AIG segment; travels inside EvaluatorSpec."""

    name: str
    size: int

    def to_payload(self) -> Dict[str, object]:
        return {"name": str(self.name), "size": int(self.size)}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SharedAIGHandle":
        return cls(name=str(payload["name"]), size=int(cast(int, payload["size"])))


def encode_aig(aig: AIG) -> bytes:
    """Serialise ``aig`` to the flat shared-memory payload."""
    is_and, fanin0, fanin1 = aig.node_arrays()
    pi_names = [aig.node(var).name for var in aig.pis]
    header = {
        "name": aig.name,
        "num_vars": len(is_and),
        "pi_names": pi_names,
        "pos": aig.pos,
        "po_names": aig.po_names,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, allow_nan=False, separators=(",", ":")
    ).encode("utf-8")
    parts = [
        _HEADER_STRUCT.pack(_MAGIC, len(header_bytes)),
        header_bytes,
        bytes(is_and),
        array("q", fanin0).tobytes(),
        array("q", fanin1).tobytes(),
    ]
    return b"".join(parts)


def decode_aig(payload: bytes) -> AIG:
    """Rebuild an AIG from :func:`encode_aig` output (bit-identical)."""
    magic, header_len = _HEADER_STRUCT.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise ValueError("shared AIG payload has bad magic")
    offset = _HEADER_STRUCT.size
    header = json.loads(payload[offset:offset + header_len].decode("utf-8"))
    offset += header_len
    num_vars = int(header["num_vars"])
    is_and = payload[offset:offset + num_vars]
    offset += num_vars
    fanin0 = array("q")
    fanin0.frombytes(payload[offset:offset + 8 * num_vars])
    offset += 8 * num_vars
    fanin1 = array("q")
    fanin1.frombytes(payload[offset:offset + 8 * num_vars])
    offset += 8 * num_vars
    if offset != len(payload):
        raise ValueError("shared AIG payload has trailing bytes")
    return AIG.from_flat_arrays(
        name=str(header["name"]),
        is_and=is_and,
        fanin0=list(fanin0),
        fanin1=list(fanin1),
        pi_names=[None if n is None else str(n) for n in header["pi_names"]],
        pos=[int(p) for p in header["pos"]],
        po_names=[None if n is None else str(n) for n in header["po_names"]],
    )


def publish_aig(
    aig: AIG,
) -> Tuple[shared_memory.SharedMemory, SharedAIGHandle]:
    """Create a shared-memory segment holding ``aig``; caller owns unlink."""
    payload = encode_aig(aig)
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment, SharedAIGHandle(name=segment.name, size=len(payload))


def _disown(segment: shared_memory.SharedMemory) -> None:
    """Drop the attach-side resource-tracker registration (bpo-39959)."""
    try:
        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker may be absent/foreign
        pass


def attach_aig(handle: SharedAIGHandle) -> Optional[AIG]:
    """Attach ``handle`` read-only and rebuild the AIG.

    Returns ``None`` when the segment has vanished (engine already closed
    or cross-host payload) so callers can fall back to the cold spec
    path.  The payload is copied out during decode, so the segment is
    closed before returning — workers never hold segments open.
    """
    global _ATTACHES, _FALLBACKS
    try:
        segment = shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError:
        _FALLBACKS += 1
        return None
    try:
        _disown(segment)
        aig = decode_aig(bytes(segment.buf[: handle.size]))
    finally:
        segment.close()
    _ATTACHES += 1
    return aig


def unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Unlink + close a published segment, tolerating double-close."""
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
    segment.close()


def attach_count() -> int:
    return _ATTACHES


def fallback_count() -> int:
    return _FALLBACKS


def reset_counters() -> None:
    """Zero the attach/fallback counters (test + worker-init hygiene)."""
    global _ATTACHES, _FALLBACKS
    _ATTACHES = 0
    _FALLBACKS = 0


__all__ = [
    "SharedAIGHandle",
    "encode_aig",
    "decode_aig",
    "publish_aig",
    "attach_aig",
    "unlink_segment",
    "attach_count",
    "fallback_count",
    "reset_counters",
]
