"""FPGA technology mapping (ABC ``if -K 6`` analogue).

The mapper covers the AIG with K-input LUTs using priority-cut,
depth-oriented mapping followed by area recovery, and reports the two
quantities the BOiLS QoR metric is built from: LUT count (area) and LUT
levels (delay).
"""

from repro.mapping.lut_mapper import LutMapper, MappingResult, map_aig

__all__ = ["LutMapper", "MappingResult", "map_aig"]
