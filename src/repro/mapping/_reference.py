"""Reference (pre-optimisation) K-LUT mapper, kept for equivalence tests.

Preserves the dict-based two-phase mapper exactly as it shipped before the
array-backed rework of :mod:`repro.mapping.lut_mapper`.  The golden
equivalence suite asserts the optimised mapper is bit-identical to this
one; the substrate benchmark measures the speedup ratio the CI perf gate
tracks.  Do not optimise this file.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.aig._reference import enumerate_cuts_reference
from repro.aig.cuts import Cut
from repro.aig.graph import AIG, lit_var
from repro.mapping.lut_mapper import Lut, MappingResult


class ReferenceLutMapper:
    """The original dict-chasing two-phase mapper (see module docstring)."""

    def __init__(self, lut_size: int = 6, max_cuts: int = 8, area_iterations: int = 2) -> None:
        if lut_size < 2:
            raise ValueError("lut_size must be at least 2")
        self.lut_size = lut_size
        self.max_cuts = max_cuts
        self.area_iterations = area_iterations

    # ------------------------------------------------------------------
    def map(self, aig: AIG) -> MappingResult:
        if aig.num_ands == 0:
            return MappingResult(area=0, delay=0, luts=[], lut_size=self.lut_size)

        cuts = enumerate_cuts_reference(aig, k=self.lut_size, max_cuts=self.max_cuts,
                                        include_trivial=False, depths=aig.levels())
        and_vars = [n.var for n in aig.and_nodes()]
        fanouts = aig.fanout_counts()

        best_cut: Dict[int, Cut] = {}
        arrival: Dict[int, int] = {0: 0}
        for pi in aig.pis:
            arrival[pi] = 0
        area_flow: Dict[int, float] = {0: 0.0}
        for pi in aig.pis:
            area_flow[pi] = 0.0

        for var in and_vars:
            node_cuts = cuts.get(var) or [Cut(tuple(sorted(
                {lit_var(f) for f in aig.fanins(var)})))]
            best = None
            for cut in node_cuts:
                arr = 1 + max(arrival.get(leaf, 0) for leaf in cut.leaves)
                flow = 1.0 + sum(
                    area_flow.get(leaf, 0.0) / max(1, fanouts[leaf]) for leaf in cut.leaves
                )
                key = (arr, flow, cut.size, cut.leaves)
                if best is None or key < best[0]:
                    best = (key, cut)
            assert best is not None
            (arr, flow, _, _), cut = best
            best_cut[var] = cut
            arrival[var] = arr
            area_flow[var] = flow

        delay = max((arrival.get(lit_var(po), 0) for po in aig.pos), default=0)

        required = self._required_times(aig, and_vars, best_cut, arrival, delay)
        for _ in range(self.area_iterations):
            refs = self._mapping_references(aig, and_vars, best_cut)
            for var in and_vars:
                node_cuts = cuts.get(var, [])
                if not node_cuts:
                    continue
                best = None
                for cut in node_cuts:
                    arr = 1 + max(arrival.get(leaf, 0) for leaf in cut.leaves)
                    if arr > required[var]:
                        continue
                    area_cost = 1.0 + sum(
                        0.0 if (not aig.is_and(leaf)) or refs.get(leaf, 0) > 0
                        else area_flow.get(leaf, 1.0)
                        for leaf in cut.leaves
                    )
                    key = (area_cost, arr, cut.size, cut.leaves)
                    if best is None or key < best[0]:
                        best = (key, cut)
                if best is not None:
                    best_cut[var] = best[1]
                    arrival[var] = 1 + max(arrival.get(leaf, 0) for leaf in best[1].leaves)
            required = self._required_times(aig, and_vars, best_cut, arrival, delay)

        luts = self._materialise(aig, best_cut)
        lut_delay = self._cover_depth(aig, luts)
        return MappingResult(area=len(luts), delay=lut_delay, luts=luts,
                             lut_size=self.lut_size)

    # ------------------------------------------------------------------
    def _required_times(
        self,
        aig: AIG,
        and_vars: Sequence[int],
        best_cut: Dict[int, Cut],
        arrival: Dict[int, int],
        delay: int,
    ) -> Dict[int, int]:
        required = {var: delay for var in and_vars}
        for pi in aig.pis:
            required[pi] = delay
        required[0] = delay
        for po in aig.pos:
            var = lit_var(po)
            if var in required:
                required[var] = min(required[var], delay)
        for var in reversed(list(and_vars)):
            cut = best_cut.get(var)
            if cut is None:
                continue
            for leaf in cut.leaves:
                if leaf in required:
                    required[leaf] = min(required[leaf], required[var] - 1)
        return required

    def _mapping_references(
        self, aig: AIG, and_vars: Sequence[int], best_cut: Dict[int, Cut]
    ) -> Dict[int, int]:
        refs: Dict[int, int] = {}
        stack = [lit_var(po) for po in aig.pos if aig.is_and(lit_var(po))]
        visited = set()
        while stack:
            var = stack.pop()
            if var in visited:
                continue
            visited.add(var)
            cut = best_cut.get(var)
            if cut is None:
                continue
            for leaf in cut.leaves:
                refs[leaf] = refs.get(leaf, 0) + 1
                if aig.is_and(leaf) and leaf not in visited:
                    stack.append(leaf)
        for po in aig.pos:
            var = lit_var(po)
            refs[var] = refs.get(var, 0) + 1
        return refs

    def _materialise(self, aig: AIG, best_cut: Dict[int, Cut]) -> List[Lut]:
        selected: Dict[int, Lut] = {}
        stack = [lit_var(po) for po in aig.pos if aig.is_and(lit_var(po))]
        while stack:
            var = stack.pop()
            if var in selected:
                continue
            cut = best_cut.get(var)
            if cut is None:
                f0, f1 = aig.fanins(var)
                cut = Cut(tuple(sorted({lit_var(f0), lit_var(f1)})))
            selected[var] = Lut(root=var, leaves=cut.leaves)
            for leaf in cut.leaves:
                if aig.is_and(leaf) and leaf not in selected:
                    stack.append(leaf)
        return [selected[var] for var in sorted(selected)]

    def _cover_depth(self, aig: AIG, luts: List[Lut]) -> int:
        depth: Dict[int, int] = {0: 0}
        for pi in aig.pis:
            depth[pi] = 0
        for lut in luts:
            depth[lut.root] = 1 + max(depth.get(leaf, 0) for leaf in lut.leaves)
        return max((depth.get(lit_var(po), 0) for po in aig.pos), default=0)
