"""Priority-cut K-LUT technology mapping.

This is the reproduction's stand-in for ABC's ``if -K 6`` command followed
by ``print_stats``: it covers the AIG with K-input lookup tables and
reports LUT count (the paper's *area*) and LUT depth (the paper's
*delay* / *levels*).

The algorithm is the standard two-phase FPGA mapper:

1. **Delay-oriented covering** — for every node, among its K-feasible cuts
   select the one minimising arrival time (ties broken by area flow), which
   yields the minimum-depth cover achievable with the enumerated cuts.
2. **Area recovery** — with node depths fixed to their required times,
   re-select cuts for off-critical nodes minimising *area flow* and then
   *exact local area*, which removes LUT duplication that the delay phase
   introduced.

The mapping is produced by a final top-down traversal from the POs that
materialises the selected cuts into LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.cuts import enumerate_cuts
from repro.aig.graph import AIG


@dataclass(frozen=True)
class Lut:
    """One mapped LUT: a root variable and its leaf variables."""

    root: int
    leaves: Tuple[int, ...]


@dataclass
class MappingResult:
    """Outcome of technology mapping.

    Attributes
    ----------
    area:
        Number of LUTs in the cover (the paper's LUT-count / ``Area``).
    delay:
        Depth of the LUT network in levels (the paper's ``Levels`` /
        ``Delay``).
    luts:
        The selected LUTs, topologically ordered.
    lut_size:
        The K used for mapping.
    """

    area: int
    delay: int
    luts: List[Lut] = field(default_factory=list)
    lut_size: int = 6

    def as_dict(self) -> Dict[str, int]:
        return {"area": self.area, "delay": self.delay, "lut_size": self.lut_size}


class LutMapper:
    """Reusable K-LUT mapper with configurable cut enumeration effort."""

    def __init__(self, lut_size: int = 6, max_cuts: int = 8, area_iterations: int = 2) -> None:
        if lut_size < 2:
            raise ValueError("lut_size must be at least 2")
        self.lut_size = lut_size
        self.max_cuts = max_cuts
        self.area_iterations = area_iterations

    # ------------------------------------------------------------------
    def map(self, aig: AIG) -> MappingResult:
        """Map an AIG and return area/delay statistics plus the LUT cover.

        Per-node state (arrival times, area flow, required times, cover
        reference counts) lives in flat lists indexed by variable, and the
        inner loops work on pre-extracted leaf tuples — no dataclass or
        dict chasing.  Selection keys are unchanged, so the cover is
        bit-identical to :class:`repro.mapping._reference.ReferenceLutMapper`.
        """
        if aig.num_ands == 0:
            # Outputs are PIs or constants: zero LUTs, zero levels.
            return MappingResult(area=0, delay=0, luts=[], lut_size=self.lut_size)

        cuts = enumerate_cuts(aig, k=self.lut_size, max_cuts=self.max_cuts,
                              include_trivial=False, depths=aig.levels())
        num_vars = aig.num_vars
        is_and = aig.node_arrays()[0]
        and_vars = [var for var in range(1, num_vars) if is_and[var]]
        fanouts = aig.fanout_array()
        po_and_vars = [po >> 1 for po in aig.pos if is_and[po >> 1]]

        # Per-node cut lists with pre-extracted leaf tuples.
        node_cut_leaves: List[List[Tuple[int, ...]]] = [[] for _ in range(num_vars)]
        for var in and_vars:
            node_cuts = cuts.get(var)
            if node_cuts:
                node_cut_leaves[var] = [cut.leaves for cut in node_cuts]
            else:  # pragma: no cover - defensive, mirrors reference
                f0, f1 = aig.fanins(var)
                node_cut_leaves[var] = [tuple(sorted({f0 >> 1, f1 >> 1}))]

        # Phase 1: depth-oriented cut selection.
        best_leaves: List[Optional[Tuple[int, ...]]] = [None] * num_vars
        arrival = [0] * num_vars
        area_flow = [0.0] * num_vars
        # area_flow[leaf] / max(1, fanouts[leaf]) is re-read once per cut
        # per fanout; precompute it as values become final (phase 1 runs in
        # topological order, so a leaf's flow is fixed before it is read).
        flow_term = [0.0] * num_vars

        for var in and_vars:
            best_key = None
            best = None
            for leaves in node_cut_leaves[var]:
                arr = 0
                flow = 0.0
                for leaf in leaves:
                    a = arrival[leaf]
                    if a > arr:
                        arr = a
                    flow += flow_term[leaf]
                key = (arr + 1, 1.0 + flow, len(leaves), leaves)
                if best_key is None or key < best_key:
                    best_key = key
                    best = leaves
            assert best is not None
            best_leaves[var] = best
            arrival[var] = best_key[0]
            area_flow[var] = best_key[1]
            flow_term[var] = best_key[1] / max(1, fanouts[var])

        delay = max((arrival[po >> 1] for po in aig.pos), default=0)

        # Phase 2: area recovery under the fixed required times.
        required = self._required_times(aig, and_vars, best_leaves, delay)
        for _ in range(self.area_iterations):
            refs = self._mapping_references(aig, is_and, po_and_vars, best_leaves)
            for var in and_vars:
                node_cuts = cuts.get(var)
                if not node_cuts:
                    continue
                best_key = None
                best = None
                allowed = required[var]
                for leaves in node_cut_leaves[var]:
                    arr = 0
                    for leaf in leaves:
                        a = arrival[leaf]
                        if a > arr:
                            arr = a
                    arr += 1
                    if arr > allowed:
                        continue
                    # Exact-ish local area: LUTs that would become
                    # unreferenced count as savings.  (Skipping the zero
                    # terms keeps the float sum bit-identical: adding 0.0
                    # to a non-negative partial sum is the identity.)
                    area_cost = 0.0
                    for leaf in leaves:
                        if is_and[leaf] and refs[leaf] == 0:
                            area_cost += area_flow[leaf]
                    key = (1.0 + area_cost, arr, len(leaves), leaves)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = leaves
                if best is not None:
                    best_leaves[var] = best
                    arrival[var] = best_key[1]
            required = self._required_times(aig, and_vars, best_leaves, delay)

        luts = self._materialise(aig, is_and, po_and_vars, best_leaves)
        lut_delay = self._cover_depth(aig, luts)
        return MappingResult(area=len(luts), delay=lut_delay, luts=luts,
                             lut_size=self.lut_size)

    # ------------------------------------------------------------------
    def _required_times(
        self,
        aig: AIG,
        and_vars: Sequence[int],
        best_leaves: Sequence[Optional[Tuple[int, ...]]],
        delay: int,
    ) -> List[int]:
        required = [delay] * aig.num_vars
        for var in reversed(and_vars):
            leaves = best_leaves[var]
            if leaves is None:
                continue
            limit = required[var] - 1
            for leaf in leaves:
                if limit < required[leaf]:
                    required[leaf] = limit
        return required

    def _mapping_references(
        self,
        aig: AIG,
        is_and,
        po_and_vars: Sequence[int],
        best_leaves: Sequence[Optional[Tuple[int, ...]]],
    ) -> List[int]:
        """How many selected LUTs / POs reference each variable as a leaf."""
        refs = [0] * aig.num_vars
        stack = list(po_and_vars)
        visited = bytearray(aig.num_vars)
        while stack:
            var = stack.pop()
            if visited[var]:
                continue
            visited[var] = 1
            leaves = best_leaves[var]
            if leaves is None:
                continue
            for leaf in leaves:
                refs[leaf] += 1
                if is_and[leaf] and not visited[leaf]:
                    stack.append(leaf)
        for po in aig.pos:
            refs[po >> 1] += 1
        return refs

    def _materialise(
        self,
        aig: AIG,
        is_and,
        po_and_vars: Sequence[int],
        best_leaves: Sequence[Optional[Tuple[int, ...]]],
    ) -> List[Lut]:
        """Top-down cover extraction from the POs."""
        selected: Dict[int, Lut] = {}
        stack = list(po_and_vars)
        while stack:
            var = stack.pop()
            if var in selected:
                continue
            leaves = best_leaves[var]
            if leaves is None:  # pragma: no cover - defensive, mirrors reference
                f0, f1 = aig.fanins(var)
                leaves = tuple(sorted({f0 >> 1, f1 >> 1}))
            selected[var] = Lut(root=var, leaves=leaves)
            for leaf in leaves:
                if is_and[leaf] and leaf not in selected:
                    stack.append(leaf)
        # Topological order by AIG variable index (valid because cuts only
        # reference lower (earlier) variables).
        return [selected[var] for var in sorted(selected)]

    def _cover_depth(self, aig: AIG, luts: List[Lut]) -> int:
        depth = [0] * aig.num_vars
        for lut in luts:
            depth[lut.root] = 1 + max(depth[leaf] for leaf in lut.leaves)
        return max((depth[po >> 1] for po in aig.pos), default=0)


def map_aig(aig: AIG, lut_size: int = 6, max_cuts: int = 8) -> MappingResult:
    """Convenience wrapper: map ``aig`` with a K-input LUT mapper."""
    return LutMapper(lut_size=lut_size, max_cuts=max_cuts).map(aig)
