"""Priority-cut K-LUT technology mapping.

This is the reproduction's stand-in for ABC's ``if -K 6`` command followed
by ``print_stats``: it covers the AIG with K-input lookup tables and
reports LUT count (the paper's *area*) and LUT depth (the paper's
*delay* / *levels*).

The algorithm is the standard two-phase FPGA mapper:

1. **Delay-oriented covering** — for every node, among its K-feasible cuts
   select the one minimising arrival time (ties broken by area flow), which
   yields the minimum-depth cover achievable with the enumerated cuts.
2. **Area recovery** — with node depths fixed to their required times,
   re-select cuts for off-critical nodes minimising *area flow* and then
   *exact local area*, which removes LUT duplication that the delay phase
   introduced.

The mapping is produced by a final top-down traversal from the POs that
materialises the selected cuts into LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.cuts import Cut, enumerate_cuts
from repro.aig.graph import AIG, lit_var


@dataclass(frozen=True)
class Lut:
    """One mapped LUT: a root variable and its leaf variables."""

    root: int
    leaves: Tuple[int, ...]


@dataclass
class MappingResult:
    """Outcome of technology mapping.

    Attributes
    ----------
    area:
        Number of LUTs in the cover (the paper's LUT-count / ``Area``).
    delay:
        Depth of the LUT network in levels (the paper's ``Levels`` /
        ``Delay``).
    luts:
        The selected LUTs, topologically ordered.
    lut_size:
        The K used for mapping.
    """

    area: int
    delay: int
    luts: List[Lut] = field(default_factory=list)
    lut_size: int = 6

    def as_dict(self) -> Dict[str, int]:
        return {"area": self.area, "delay": self.delay, "lut_size": self.lut_size}


class LutMapper:
    """Reusable K-LUT mapper with configurable cut enumeration effort."""

    def __init__(self, lut_size: int = 6, max_cuts: int = 8, area_iterations: int = 2) -> None:
        if lut_size < 2:
            raise ValueError("lut_size must be at least 2")
        self.lut_size = lut_size
        self.max_cuts = max_cuts
        self.area_iterations = area_iterations

    # ------------------------------------------------------------------
    def map(self, aig: AIG) -> MappingResult:
        """Map an AIG and return area/delay statistics plus the LUT cover."""
        if aig.num_ands == 0:
            # Outputs are PIs or constants: zero LUTs, zero levels.
            return MappingResult(area=0, delay=0, luts=[], lut_size=self.lut_size)

        cuts = enumerate_cuts(aig, k=self.lut_size, max_cuts=self.max_cuts,
                              include_trivial=False, depths=aig.levels())
        po_vars = {lit_var(po) for po in aig.pos if aig.is_and(lit_var(po))}
        and_vars = [n.var for n in aig.and_nodes()]
        fanouts = aig.fanout_counts()

        # Phase 1: depth-oriented cut selection.
        best_cut: Dict[int, Cut] = {}
        arrival: Dict[int, int] = {0: 0}
        for pi in aig.pis:
            arrival[pi] = 0
        area_flow: Dict[int, float] = {0: 0.0}
        for pi in aig.pis:
            area_flow[pi] = 0.0

        for var in and_vars:
            node_cuts = cuts.get(var) or [Cut(tuple(sorted(
                {lit_var(f) for f in aig.fanins(var)})))]
            best = None
            for cut in node_cuts:
                arr = 1 + max(arrival.get(leaf, 0) for leaf in cut.leaves)
                flow = 1.0 + sum(
                    area_flow.get(leaf, 0.0) / max(1, fanouts[leaf]) for leaf in cut.leaves
                )
                key = (arr, flow, cut.size, cut.leaves)
                if best is None or key < best[0]:
                    best = (key, cut)
            assert best is not None
            (arr, flow, _, _), cut = best
            best_cut[var] = cut
            arrival[var] = arr
            area_flow[var] = flow

        delay = max((arrival.get(lit_var(po), 0) for po in aig.pos), default=0)

        # Phase 2: area recovery under the fixed required times.
        required = self._required_times(aig, and_vars, best_cut, arrival, delay)
        for _ in range(self.area_iterations):
            refs = self._mapping_references(aig, and_vars, best_cut)
            for var in and_vars:
                node_cuts = cuts.get(var, [])
                if not node_cuts:
                    continue
                best = None
                for cut in node_cuts:
                    arr = 1 + max(arrival.get(leaf, 0) for leaf in cut.leaves)
                    if arr > required[var]:
                        continue
                    # Exact-ish local area: LUTs that would become
                    # unreferenced count as savings.
                    area_cost = 1.0 + sum(
                        0.0 if (not aig.is_and(leaf)) or refs.get(leaf, 0) > 0
                        else area_flow.get(leaf, 1.0)
                        for leaf in cut.leaves
                    )
                    key = (area_cost, arr, cut.size, cut.leaves)
                    if best is None or key < best[0]:
                        best = (key, cut)
                if best is not None:
                    best_cut[var] = best[1]
                    arrival[var] = 1 + max(arrival.get(leaf, 0) for leaf in best[1].leaves)
            required = self._required_times(aig, and_vars, best_cut, arrival, delay)

        luts = self._materialise(aig, best_cut)
        lut_delay = self._cover_depth(aig, luts)
        return MappingResult(area=len(luts), delay=lut_delay, luts=luts,
                             lut_size=self.lut_size)

    # ------------------------------------------------------------------
    def _required_times(
        self,
        aig: AIG,
        and_vars: Sequence[int],
        best_cut: Dict[int, Cut],
        arrival: Dict[int, int],
        delay: int,
    ) -> Dict[int, int]:
        required = {var: delay for var in and_vars}
        for pi in aig.pis:
            required[pi] = delay
        required[0] = delay
        for po in aig.pos:
            var = lit_var(po)
            if var in required:
                required[var] = min(required[var], delay)
        for var in reversed(list(and_vars)):
            cut = best_cut.get(var)
            if cut is None:
                continue
            for leaf in cut.leaves:
                if leaf in required:
                    required[leaf] = min(required[leaf], required[var] - 1)
        return required

    def _mapping_references(
        self, aig: AIG, and_vars: Sequence[int], best_cut: Dict[int, Cut]
    ) -> Dict[int, int]:
        """How many selected LUTs / POs reference each variable as a leaf."""
        refs: Dict[int, int] = {}
        stack = [lit_var(po) for po in aig.pos if aig.is_and(lit_var(po))]
        visited = set()
        while stack:
            var = stack.pop()
            if var in visited:
                continue
            visited.add(var)
            cut = best_cut.get(var)
            if cut is None:
                continue
            for leaf in cut.leaves:
                refs[leaf] = refs.get(leaf, 0) + 1
                if aig.is_and(leaf) and leaf not in visited:
                    stack.append(leaf)
        for po in aig.pos:
            var = lit_var(po)
            refs[var] = refs.get(var, 0) + 1
        return refs

    def _materialise(self, aig: AIG, best_cut: Dict[int, Cut]) -> List[Lut]:
        """Top-down cover extraction from the POs."""
        selected: Dict[int, Lut] = {}
        stack = [lit_var(po) for po in aig.pos if aig.is_and(lit_var(po))]
        while stack:
            var = stack.pop()
            if var in selected:
                continue
            cut = best_cut.get(var)
            if cut is None:
                # Shouldn't happen; map the node with its structural cut.
                f0, f1 = aig.fanins(var)
                cut = Cut(tuple(sorted({lit_var(f0), lit_var(f1)})))
            selected[var] = Lut(root=var, leaves=cut.leaves)
            for leaf in cut.leaves:
                if aig.is_and(leaf) and leaf not in selected:
                    stack.append(leaf)
        # Topological order by AIG variable index (valid because cuts only
        # reference lower (earlier) variables).
        return [selected[var] for var in sorted(selected)]

    def _cover_depth(self, aig: AIG, luts: List[Lut]) -> int:
        depth: Dict[int, int] = {0: 0}
        for pi in aig.pis:
            depth[pi] = 0
        for lut in luts:
            depth[lut.root] = 1 + max(depth.get(leaf, 0) for leaf in lut.leaves)
        return max((depth.get(lit_var(po), 0) for po in aig.pos), default=0)


def map_aig(aig: AIG, lut_size: int = 6, max_cuts: int = 8) -> MappingResult:
    """Convenience wrapper: map ``aig`` with a K-input LUT mapper."""
    return LutMapper(lut_size=lut_size, max_cuts=max_cuts).map(aig)
