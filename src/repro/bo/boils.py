"""BOiLS — Bayesian Optimisation for Logic Synthesis (Algorithm 2).

The solver follows the paper exactly:

1. sample ``N_init`` random sequences and evaluate their QoR;
2. at every round, fit a GP with the sub-sequence string kernel to the
   ``(sequence, −QoR)`` data, refitting the match/gap decays by projected
   Adam on the marginal likelihood;
3. maximise expected improvement with stochastic local search restricted
   to a Hamming-ball trust region around the incumbent;
4. evaluate the proposed sequence, update the data set and the
   trust-region radius (grow on 3 successes, shrink on 20 failures,
   restart when the radius reaches zero).

The solver implements the batch protocol
(:meth:`~repro.bo.base.SequenceOptimiser.suggest` /
:meth:`~repro.bo.base.SequenceOptimiser.observe`): the random initial
design is proposed as one batch, and each acquisition round proposes up
to ``batch_size`` distinct local-search candidates.  All proposals are
scored through :meth:`~repro.qor.QoREvaluator.evaluate_many`, so an
attached :class:`repro.engine.EvaluationEngine` evaluates the initial
design (and any acquisition batch) across worker processes.  With the
default ``batch_size=1`` the optimisation trace is identical to the
paper's sequential algorithm.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bo.acquisition import get_acquisition
from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.bo.trust_region import TrustRegion, TrustRegionConfig, TrustRegionLocalSearch
from repro.gp.gp import GaussianProcess
from repro.gp.kernels.ssk import SubsequenceStringKernel
from repro.gp.optim import RefitGate
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser
from repro.serialise import decode_array, encode_array


@register_optimiser(
    "boils", display_name="BOiLS",
    defaults={"num_initial": 5, "local_search_queries": 200, "adam_steps": 5,
              "fit_every": 2},
)
class BOiLS(SequenceOptimiser):
    """The paper's solver: SSK-GP surrogate + trust-region EI maximisation.

    Parameters
    ----------
    space:
        Sequence space (defaults to the paper's ``K=20`` over 11 operations).
    seed:
        Random seed (controls the initial design, the local search and the
        trust-region restarts).
    num_initial:
        Size of the random initial design ``N_init``.
    max_subsequence_length:
        Order of the SSK kernel.
    acquisition:
        ``"ei"`` (paper default), ``"pi"`` or ``"ucb"``.
    fit_every:
        Refit the kernel hyperparameters every this many BO rounds (1
        reproduces the paper; larger values trade fidelity for speed).
    adam_steps:
        Projected-Adam steps per hyperparameter refit.
    local_search_queries:
        Acquisition evaluations per trust-region maximisation.
    batch_size:
        Black-box evaluations proposed per acquisition round.  ``1``
        reproduces the paper's sequential Algorithm 2; larger values run
        extra local-search restarts per round and score the resulting
        distinct candidates as one parallel batch.
    refit_gate:
        Opt-in :class:`repro.gp.optim.RefitGate`: once the decay
        hyperparameters have converged (successive refits each move every
        parameter by at most ``refit_gate_tol``, ``refit_gate_patience``
        times in a row), scheduled refits are skipped and those rounds
        take the incremental-Cholesky conditioning path instead.  Off by
        default — trajectories with the gate off are bit-identical to
        the always-refit schedule the golden suite pins.
    """

    name = "BOiLS"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        num_initial: int = 20,
        max_subsequence_length: int = 3,
        acquisition: str = "ei",
        fit_every: int = 1,
        adam_steps: int = 10,
        local_search_queries: int = 300,
        local_search_restarts: int = 3,
        trust_region_config: Optional[TrustRegionConfig] = None,
        noise_variance: float = 1e-4,
        batch_size: int = 1,
        refit_gate: bool = False,
        refit_gate_tol: float = 1e-3,
        refit_gate_patience: int = 2,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.num_initial = num_initial
        self.max_subsequence_length = max_subsequence_length
        self.acquisition_name = acquisition
        self.fit_every = max(1, fit_every)
        self.adam_steps = adam_steps
        self.local_search_queries = local_search_queries
        self.local_search_restarts = local_search_restarts
        self.trust_region_config = trust_region_config
        self.noise_variance = noise_variance
        self.batch_size = max(1, batch_size)
        self.use_refit_gate = bool(refit_gate)
        self.refit_gate_tol = refit_gate_tol
        self.refit_gate_patience = refit_gate_patience
        self._reset_state()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._evaluated: Set[Tuple[int, ...]] = set()
        self._kernel: Optional[SubsequenceStringKernel] = None
        self._gp: Optional[GaussianProcess] = None
        self._trust_region: Optional[TrustRegion] = None
        self._local_search: Optional[TrustRegionLocalSearch] = None
        self._rounds = 0
        self._num_restarts = 0
        self._pending_fresh = False
        self._awaiting: Optional[str] = None
        self._last_best_value = -np.inf
        self._refit_gate: Optional[RefitGate] = (
            RefitGate(tol=self.refit_gate_tol,
                      patience=self.refit_gate_patience)
            if self.use_refit_gate else None
        )

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Propose the next batch: initial design, restart samples, or
        trust-region acquisition candidates."""
        n = max(1, int(n))
        if self._X is None:
            self._awaiting = "initial"
            return self.space.sample(min(self.num_initial, n), self.rng)
        if self._pending_fresh:
            # A trust-region restart re-seeds the data set with one fresh
            # uniform sample before the next acquisition round.
            self._pending_fresh = False
            self._awaiting = "fresh"
            return self.space.sample(1, self.rng)
        return self._suggest_candidates(min(n, self.batch_size))

    def _suggest_candidates(self, count: int) -> np.ndarray:
        assert self._X is not None and self._y is not None
        self._rounds += 1
        incumbent_idx = int(np.argmax(self._y))
        incumbent = self._X[incumbent_idx]
        best_value = float(self._y[incumbent_idx])
        self._last_best_value = best_value

        # Step 1: fit the surrogate (refit decays periodically).  Rounds
        # that keep the hyperparameters extend the previous Cholesky
        # factor incrementally instead of refactorising from scratch;
        # with the opt-in gate, converged decays stop being refit at all.
        refit_due = self._rounds % self.fit_every == 0 and len(self._y) >= 2
        if refit_due and (self._refit_gate is None
                          or self._refit_gate.should_refit()):
            fitted = self._gp.fit_hyperparameters(
                self._X, self._y, num_steps=self.adam_steps,
                param_names=["theta_match", "theta_gap"],
            )
            if self._refit_gate is not None:
                self._refit_gate.record(fitted)
        else:
            self._gp.update_or_fit(self._X, self._y)

        # Step 2: maximise the acquisition inside the trust region.
        acquisition_fn = get_acquisition(self.acquisition_name)

        def acquisition(candidates: np.ndarray) -> np.ndarray:
            mean, std = self._gp.predict(candidates)
            if self.acquisition_name == "ucb":
                return acquisition_fn(mean, std)
            return acquisition_fn(mean, std, best_value)

        exclude = set(self._evaluated)
        rows: List[np.ndarray] = []
        for _ in range(count):
            candidate, _ = self._local_search.maximise(
                acquisition, incumbent, self._trust_region.radius, self.rng,
                exclude=exclude,
            )
            exclude.add(tuple(candidate.tolist()))
            rows.append(candidate)
        self._awaiting = "candidate"
        return np.array(rows, dtype=int)

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Absorb scored rows and advance the trust-region schedule."""
        rows = np.atleast_2d(np.asarray(rows, dtype=int))
        values = np.array([-record.qor for record in records], dtype=float)
        kind = self._awaiting
        self._awaiting = None

        if kind == "initial" or self._X is None:
            self._X = rows.copy()
            self._y = values
            self._evaluated = {tuple(row.tolist()) for row in rows}
            self._kernel = SubsequenceStringKernel(
                max_subsequence_length=self.max_subsequence_length,
                theta_match=float(self.rng.uniform(0.4, 0.9)),
                theta_gap=float(self.rng.uniform(0.4, 0.9)),
            )
            self._gp = GaussianProcess(self._kernel, noise_variance=self.noise_variance)
            self._trust_region = TrustRegion(self.space, self.trust_region_config)
            self._local_search = TrustRegionLocalSearch(
                self.space, num_queries=self.local_search_queries,
                num_restarts=self.local_search_restarts,
            )
            return

        if kind == "fresh":
            # Restart re-seed: augment the data set, no schedule update.
            self._append(rows, values)
            return

        # Acquisition candidates: per-candidate trust-region schedule.
        for row, value in zip(rows, values):
            improved = value > self._last_best_value
            self._append(row[None, :], np.array([value]))
            if improved:
                self._last_best_value = value
            self._trust_region.update(improved)
            if self._trust_region.needs_restart:
                self._trust_region.restart()
                self._num_restarts += 1
                self._pending_fresh = True

    def _append(self, rows: np.ndarray, values: np.ndarray) -> None:
        self._X = np.vstack([self._X, rows])
        self._y = np.append(self._y, values)
        for row in rows:
            self._evaluated.add(tuple(row.tolist()))

    # ------------------------------------------------------------------
    # Drive hooks (Algorithm 2 = prepare + generic ask/tell drive)
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self._reset_state()

    def run_metadata(self) -> dict:
        if self._kernel is None:
            metadata = {"num_rounds": self._rounds,
                        "num_restarts": self._num_restarts}
        else:
            metadata = {
                "kernel_params": self._kernel.get_params(),
                "trust_region_radius": self._trust_region.radius,
                "num_restarts": self._num_restarts,
                "num_rounds": self._rounds,
            }
        if self._refit_gate is not None:
            metadata["refit_gate_converged"] = self._refit_gate.converged
        return metadata

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        state: dict = {
            "rounds": self._rounds,
            "num_restarts": self._num_restarts,
            "pending_fresh": self._pending_fresh,
            # -inf is the pre-observation sentinel; encoded as null so
            # checkpoint files stay strict (RFC 8259) JSON.
            "last_best_value": (float(self._last_best_value)
                                if np.isfinite(self._last_best_value)
                                else None),
            "X": encode_array(self._X),
            "y": encode_array(self._y),
            "evaluated": sorted(list(key) for key in self._evaluated),
            "gp": self._gp.state_dict() if self._gp is not None else None,
            "trust_region": (self._trust_region.state_dict()
                             if self._trust_region is not None else None),
            "refit_gate": (self._refit_gate.state_dict()
                           if self._refit_gate is not None else None),
        }
        return state

    def _load_state_dict(self, state: dict) -> None:
        self._reset_state()
        self._rounds = int(state["rounds"])
        self._num_restarts = int(state["num_restarts"])
        self._pending_fresh = bool(state["pending_fresh"])
        last_best = state["last_best_value"]
        self._last_best_value = (float(last_best) if last_best is not None
                                 else -np.inf)
        self._X = decode_array(state["X"])
        self._y = decode_array(state["y"])
        self._evaluated = {tuple(int(op) for op in key)
                           for key in state["evaluated"]}
        if state["refit_gate"] is not None:
            self._refit_gate = RefitGate()
            self._refit_gate.load_state_dict(state["refit_gate"])
        if state["gp"] is not None:
            # The kernel is rebuilt at neutral values and then overwritten
            # by the GP snapshot, which restores the exact decays *and*
            # the Cholesky factor the interrupted run held — required for
            # the incremental-conditioning path to continue identically.
            self._kernel = SubsequenceStringKernel(
                max_subsequence_length=self.max_subsequence_length)
            self._gp = GaussianProcess(self._kernel,
                                       noise_variance=self.noise_variance)
            self._gp.load_state_dict(state["gp"])
        if state["trust_region"] is not None:
            self._trust_region = TrustRegion(self.space, self.trust_region_config)
            self._trust_region.load_state_dict(state["trust_region"])
            self._local_search = TrustRegionLocalSearch(
                self.space, num_queries=self.local_search_queries,
                num_restarts=self.local_search_restarts,
            )
