"""BOiLS — Bayesian Optimisation for Logic Synthesis (Algorithm 2).

The solver follows the paper exactly:

1. sample ``N_init`` random sequences and evaluate their QoR;
2. at every round, fit a GP with the sub-sequence string kernel to the
   ``(sequence, −QoR)`` data, refitting the match/gap decays by projected
   Adam on the marginal likelihood;
3. maximise expected improvement with stochastic local search restricted
   to a Hamming-ball trust region around the incumbent;
4. evaluate the proposed sequence, update the data set and the
   trust-region radius (grow on 3 successes, shrink on 20 failures,
   restart when the radius reaches zero).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.bo.acquisition import get_acquisition
from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.bo.trust_region import TrustRegion, TrustRegionConfig, TrustRegionLocalSearch
from repro.gp.gp import GaussianProcess
from repro.gp.kernels.ssk import SubsequenceStringKernel
from repro.qor.evaluator import QoREvaluator


class BOiLS(SequenceOptimiser):
    """The paper's solver: SSK-GP surrogate + trust-region EI maximisation.

    Parameters
    ----------
    space:
        Sequence space (defaults to the paper's ``K=20`` over 11 operations).
    seed:
        Random seed (controls the initial design, the local search and the
        trust-region restarts).
    num_initial:
        Size of the random initial design ``N_init``.
    max_subsequence_length:
        Order of the SSK kernel.
    acquisition:
        ``"ei"`` (paper default), ``"pi"`` or ``"ucb"``.
    fit_every:
        Refit the kernel hyperparameters every this many BO rounds (1
        reproduces the paper; larger values trade fidelity for speed).
    adam_steps:
        Projected-Adam steps per hyperparameter refit.
    local_search_queries:
        Acquisition evaluations per trust-region maximisation.
    """

    name = "BOiLS"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        num_initial: int = 20,
        max_subsequence_length: int = 3,
        acquisition: str = "ei",
        fit_every: int = 1,
        adam_steps: int = 10,
        local_search_queries: int = 300,
        local_search_restarts: int = 3,
        trust_region_config: Optional[TrustRegionConfig] = None,
        noise_variance: float = 1e-4,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.num_initial = num_initial
        self.max_subsequence_length = max_subsequence_length
        self.acquisition_name = acquisition
        self.fit_every = max(1, fit_every)
        self.adam_steps = adam_steps
        self.local_search_queries = local_search_queries
        self.local_search_restarts = local_search_restarts
        self.trust_region_config = trust_region_config
        self.noise_variance = noise_variance

    # ------------------------------------------------------------------
    def optimise(self, evaluator: QoREvaluator, budget: int) -> OptimisationResult:
        """Run Algorithm 2 for ``budget`` black-box evaluations."""
        space = self.space
        rng = self.rng
        acquisition_fn = get_acquisition(self.acquisition_name)

        num_initial = min(self.num_initial, max(1, budget))
        X = space.sample(num_initial, rng)
        y = np.array([-self._evaluate(evaluator, row) for row in X], dtype=float)
        evaluated: Set[Tuple[int, ...]] = {tuple(row.tolist()) for row in X}

        kernel = SubsequenceStringKernel(
            max_subsequence_length=self.max_subsequence_length,
            theta_match=float(rng.uniform(0.4, 0.9)),
            theta_gap=float(rng.uniform(0.4, 0.9)),
        )
        gp = GaussianProcess(kernel, noise_variance=self.noise_variance)
        trust_region = TrustRegion(space, self.trust_region_config)
        local_search = TrustRegionLocalSearch(
            space, num_queries=self.local_search_queries,
            num_restarts=self.local_search_restarts,
        )

        num_restarts = 0
        rounds = 0
        while evaluator.num_evaluations < budget:
            rounds += 1
            incumbent_idx = int(np.argmax(y))
            incumbent = X[incumbent_idx]
            best_value = float(y[incumbent_idx])

            # Step 1: fit the surrogate (refit decays periodically).
            if rounds % self.fit_every == 0 and len(y) >= 2:
                gp.fit_hyperparameters(
                    X, y, num_steps=self.adam_steps,
                    param_names=["theta_match", "theta_gap"],
                )
            else:
                gp.fit(X, y)

            # Step 2: maximise the acquisition inside the trust region.
            def acquisition(candidates: np.ndarray) -> np.ndarray:
                mean, std = gp.predict(candidates)
                if self.acquisition_name == "ucb":
                    return acquisition_fn(mean, std)
                return acquisition_fn(mean, std, best_value)

            candidate, _ = local_search.maximise(
                acquisition, incumbent, trust_region.radius, rng, exclude=evaluated,
            )

            # Step 3: evaluate and augment the data set.
            value = -self._evaluate(evaluator, candidate)
            evaluated.add(tuple(candidate.tolist()))
            improved = value > best_value
            X = np.vstack([X, candidate[None, :]])
            y = np.append(y, value)

            # Step 4: trust-region schedule, restarting when it collapses.
            trust_region.update(improved)
            if trust_region.needs_restart:
                trust_region.restart()
                num_restarts += 1
                if evaluator.num_evaluations < budget:
                    fresh = space.sample(1, rng)[0]
                    fresh_value = -self._evaluate(evaluator, fresh)
                    evaluated.add(tuple(fresh.tolist()))
                    X = np.vstack([X, fresh[None, :]])
                    y = np.append(y, fresh_value)

        result = self._build_result(evaluator, evaluator.aig.name)
        result.metadata.update(
            {
                "kernel_params": kernel.get_params(),
                "trust_region_radius": trust_region.radius,
                "num_restarts": num_restarts,
                "num_rounds": rounds,
            }
        )
        return result
