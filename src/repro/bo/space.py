"""The combinatorial search space ``Alg^K`` of synthesis sequences.

Sequences are represented internally as integer vectors of length ``K``
with entries in ``{0, …, n-1}`` indexing the operation alphabet; the space
object converts between integer, name and mnemonic representations,
samples uniformly or by Latin hypercube, and enumerates Hamming
neighbourhoods (needed by the trust-region local search and the genetic
algorithm's mutation operator).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.synth.operations import (
    OPERATION_ALPHABET,
    sequence_to_indices,
    sequence_to_names,
    sequence_to_string,
)


class SequenceSpace:
    """Search space of operation sequences of fixed length ``K``.

    Parameters
    ----------
    sequence_length:
        Number of operations per sequence (the paper uses ``K = 20``).
    alphabet:
        Operation names; defaults to the paper's eleven-operation alphabet.
    """

    def __init__(self, sequence_length: int = 20,
                 alphabet: Optional[Sequence[str]] = None) -> None:
        if sequence_length < 1:
            raise ValueError("sequence_length must be positive")
        self.sequence_length = sequence_length
        self.alphabet: List[str] = list(alphabet if alphabet is not None else OPERATION_ALPHABET)
        if not self.alphabet:
            raise ValueError("alphabet must not be empty")
        self.num_operations = len(self.alphabet)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_names(self, indices: Sequence[int]) -> List[str]:
        """Convert an integer vector into operation names.

        Negative indices are rejected: ``-1`` is the batch protocol's
        variable-length padding sentinel (see
        :meth:`repro.bo.base.SequenceOptimiser.suggest`) and must be
        stripped before conversion, not silently wrapped to the last
        alphabet entry.
        """
        result = []
        for i in indices:
            index = int(i)
            if index < 0:
                raise ValueError(
                    f"negative operation index {index}: strip -1 padding "
                    "sentinels before converting a protocol row to names"
                )
            result.append(self.alphabet[index])
        return result

    def to_indices(self, sequence: Sequence[Union[str, int]]) -> np.ndarray:
        """Convert a sequence of names/indices into an integer vector."""
        result = []
        for item in sequence:
            if isinstance(item, (int, np.integer)):
                index = int(item)
                if not 0 <= index < self.num_operations:
                    raise ValueError(f"operation index {index} out of range")
                result.append(index)
            else:
                result.append(self.alphabet.index(str(item)))
        return np.array(result, dtype=int)

    def to_string(self, indices: Sequence[int]) -> str:
        """Mnemonic rendering (``RwRfDs…``) of an integer vector."""
        return sequence_to_string(self.to_names(indices))

    @property
    def cardinality(self) -> int:
        """|Alg^K| = n^K — the size of the search space."""
        return self.num_operations ** self.sequence_length

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random sequences, shape ``(num_samples, K)``."""
        return rng.integers(0, self.num_operations, size=(num_samples, self.sequence_length))

    def latin_hypercube_sample(self, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Latin-hypercube-style stratified categorical sampling.

        Each position's categories are spread as evenly as possible across
        the samples (the categorical analogue of pymoo's LHS initialiser
        used for the paper's random-search baseline).
        """
        samples = np.zeros((num_samples, self.sequence_length), dtype=int)
        for position in range(self.sequence_length):
            # Evenly cover the categories, then shuffle the assignment.
            strata = np.array(
                [i % self.num_operations for i in range(num_samples)], dtype=int
            )
            rng.shuffle(strata)
            samples[:, position] = strata
        return samples

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def random_neighbour(self, sequence: np.ndarray, rng: np.random.Generator,
                         num_changes: int = 1) -> np.ndarray:
        """A sequence at Hamming distance exactly ``num_changes``."""
        sequence = np.asarray(sequence, dtype=int)
        num_changes = min(num_changes, self.sequence_length)
        positions = rng.choice(self.sequence_length, size=num_changes, replace=False)
        neighbour = sequence.copy()
        for position in positions:
            current = neighbour[position]
            choices = [i for i in range(self.num_operations) if i != current]
            neighbour[position] = rng.choice(choices)
        return neighbour

    def random_point_in_hamming_ball(
        self, centre: np.ndarray, radius: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform-ish sample within Hamming distance ``radius`` of ``centre``."""
        radius = int(np.clip(radius, 0, self.sequence_length))
        if radius == 0:
            return np.asarray(centre, dtype=int).copy()
        num_changes = int(rng.integers(1, radius + 1))
        return self.random_neighbour(centre, rng, num_changes=num_changes)

    @staticmethod
    def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
        """Number of positions at which two sequences differ."""
        a = np.asarray(a, dtype=int)
        b = np.asarray(b, dtype=int)
        if a.shape != b.shape:
            raise ValueError("sequences must have equal length")
        return int(np.sum(a != b))

    def all_neighbours(self, sequence: np.ndarray) -> np.ndarray:
        """All sequences at Hamming distance exactly one (K·(n−1) of them)."""
        sequence = np.asarray(sequence, dtype=int)
        neighbours = []
        for position in range(self.sequence_length):
            for op in range(self.num_operations):
                if op == sequence[position]:
                    continue
                neighbour = sequence.copy()
                neighbour[position] = op
                neighbours.append(neighbour)
        return np.array(neighbours, dtype=int)
