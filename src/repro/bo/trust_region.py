"""Trust-region constrained local-search acquisition maximisation.

Section III-B2 of the paper: the acquisition is maximised only inside a
Hamming ball ``TR(ŝeq_t, ρ_t)`` centred at the best sequence found so far.
The radius follows the paper's schedule — grow by one after three
improving evaluations in a row, shrink by one after twenty non-improving
evaluations in a row, restart from a fresh random centre when it reaches
zero — and the maximisation itself is the simple stochastic hill-climbing
local search of Wan et al. (reference [16]): start from a random point in
the trust region and repeatedly move to random Hamming-distance-1
neighbours when they improve the acquisition, until the query budget is
exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.bo.space import SequenceSpace


@dataclass
class TrustRegionConfig:
    """Tunables of the paper's trust-region schedule."""

    success_streak_to_grow: int = 3
    failure_streak_to_shrink: int = 20
    initial_radius: Optional[int] = None  # defaults to K (the whole space)
    min_radius: int = 0


class TrustRegion:
    """Adaptive Hamming-ball trust region around the incumbent sequence."""

    def __init__(self, space: SequenceSpace, config: Optional[TrustRegionConfig] = None) -> None:
        self.space = space
        self.config = config if config is not None else TrustRegionConfig()
        initial = self.config.initial_radius
        self.radius = space.sequence_length if initial is None else int(initial)
        self._success_streak = 0
        self._failure_streak = 0
        self.num_restarts = 0

    # ------------------------------------------------------------------
    def contains(self, centre: np.ndarray, candidate: np.ndarray) -> bool:
        """Whether ``candidate`` lies inside the current trust region."""
        return self.space.hamming_distance(centre, candidate) <= self.radius

    def update(self, improved: bool) -> None:
        """Apply the paper's radius schedule after one evaluation.

        * three improving evaluations in a row → radius + 1,
        * twenty non-improving evaluations in a row → radius − 1,
        * otherwise unchanged.
        """
        if improved:
            self._success_streak += 1
            self._failure_streak = 0
            if self._success_streak >= self.config.success_streak_to_grow:
                self.radius = min(self.space.sequence_length, self.radius + 1)
                self._success_streak = 0
        else:
            self._failure_streak += 1
            self._success_streak = 0
            if self._failure_streak >= self.config.failure_streak_to_shrink:
                self.radius = max(self.config.min_radius, self.radius - 1)
                self._failure_streak = 0

    @property
    def needs_restart(self) -> bool:
        """True when the region has collapsed to radius zero."""
        return self.radius <= 0

    def restart(self) -> None:
        """Reset the radius after the algorithm re-centres elsewhere."""
        initial = self.config.initial_radius
        self.radius = self.space.sequence_length if initial is None else int(initial)
        self._success_streak = 0
        self._failure_streak = 0
        self.num_restarts += 1

    # ------------------------------------------------------------------
    # Checkpoint / restore (the schedule is the only mutable state)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "radius": self.radius,
            "success_streak": self._success_streak,
            "failure_streak": self._failure_streak,
            "num_restarts": self.num_restarts,
        }

    def load_state_dict(self, state: dict) -> None:
        self.radius = int(state["radius"])
        self._success_streak = int(state["success_streak"])
        self._failure_streak = int(state["failure_streak"])
        self.num_restarts = int(state["num_restarts"])


class TrustRegionLocalSearch:
    """Stochastic hill climbing of an acquisition inside a trust region.

    Parameters
    ----------
    space:
        The sequence space.
    num_queries:
        Acquisition-evaluation budget per maximisation call.
    num_restarts:
        Number of independent hill-climbing starts (the best result over
        all starts is returned); each start consumes part of the query
        budget.
    """

    def __init__(self, space: SequenceSpace, num_queries: int = 500,
                 num_restarts: int = 5) -> None:
        self.space = space
        self.num_queries = num_queries
        self.num_restarts = max(1, num_restarts)

    def maximise(
        self,
        acquisition: Callable[[np.ndarray], np.ndarray],
        centre: np.ndarray,
        radius: int,
        rng: np.random.Generator,
        exclude: Optional[set] = None,
    ) -> Tuple[np.ndarray, float]:
        """Return the best sequence found inside ``TR(centre, radius)``.

        Parameters
        ----------
        acquisition:
            Vectorised acquisition: maps an ``(m, K)`` integer array to an
            ``(m,)`` score array.
        exclude:
            Optional set of sequence tuples that must not be returned
            (already-evaluated sequences); they may still be visited during
            the walk.
        """
        centre = np.asarray(centre, dtype=int)
        exclude = exclude if exclude is not None else set()
        queries_per_restart = max(2, self.num_queries // self.num_restarts)
        best_candidate: Optional[np.ndarray] = None
        best_score = -np.inf

        for _ in range(self.num_restarts):
            current = self.space.random_point_in_hamming_ball(centre, radius, rng)
            current_score = float(acquisition(current[None, :])[0])
            budget = queries_per_restart - 1
            while budget > 0:
                # Batch a handful of random Hamming-1 neighbours that stay
                # inside the trust region; scoring them together amortises
                # the GP posterior call.
                batch_size = min(budget, 10)
                neighbours = []
                for _ in range(batch_size):
                    neighbour = self.space.random_neighbour(current, rng)
                    if self.space.hamming_distance(centre, neighbour) <= radius:
                        neighbours.append(neighbour)
                budget -= batch_size
                if not neighbours:
                    continue
                neighbours = np.array(neighbours, dtype=int)
                scores = np.asarray(acquisition(neighbours), dtype=float)
                best_idx = int(np.argmax(scores))
                if scores[best_idx] > current_score:
                    current = neighbours[best_idx]
                    current_score = float(scores[best_idx])
                if current_score > best_score and tuple(current.tolist()) not in exclude:
                    best_candidate = current.copy()
                    best_score = current_score
            if best_candidate is None and tuple(current.tolist()) not in exclude:
                best_candidate = current.copy()
                best_score = current_score

        if best_candidate is None:
            # Everything inside the region was already evaluated; fall back
            # to a random in-region point so the optimiser can keep going.
            best_candidate = self.space.random_point_in_hamming_ball(centre, radius, rng)
            best_score = float(acquisition(best_candidate[None, :])[0])
        return best_candidate, best_score
