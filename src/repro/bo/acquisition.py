"""Acquisition functions.

The paper's BOiLS uses expected improvement (EI); probability of
improvement and UCB are provided as alternatives (Section III-A2 notes
"other options are possible") and exercised by the ablation benchmarks.
All acquisitions are written for *maximisation* of the modelled objective,
matching the paper's convention of modelling ``-QoR``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import norm


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best_value: float, xi: float = 0.0
) -> np.ndarray:
    """EI(x) = E[max(g(x) − g⁺ − ξ, 0)] under the GP posterior.

    Parameters
    ----------
    mean, std:
        Posterior mean and standard deviation of the modelled objective
        (which BOiLS maximises).
    best_value:
        Best observed objective value ``g⁺`` so far.
    xi:
        Optional exploration bonus.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = mean - best_value - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best_value: float, xi: float = 0.0
) -> np.ndarray:
    """PI(x) = P[g(x) > g⁺ + ξ]."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    z = (mean - best_value - xi) / std
    return norm.cdf(z)


def ucb(mean: np.ndarray, std: np.ndarray, beta: float = 2.0) -> np.ndarray:
    """Upper confidence bound ``μ + √β·σ``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return mean + np.sqrt(beta) * std


ACQUISITIONS = {
    "ei": expected_improvement,
    "pi": probability_of_improvement,
    "ucb": ucb,
}


def get_acquisition(name: str):
    """Look up an acquisition function by short name (``ei``, ``pi``, ``ucb``)."""
    key = name.lower()
    if key not in ACQUISITIONS:
        raise KeyError(f"unknown acquisition {name!r}; available: {sorted(ACQUISITIONS)}")
    return ACQUISITIONS[key]
