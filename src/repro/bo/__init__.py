"""Bayesian-optimisation solvers: BOiLS (the paper's contribution) and SBO."""

from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.bo.acquisition import expected_improvement, probability_of_improvement, ucb
from repro.bo.trust_region import TrustRegion, TrustRegionLocalSearch
from repro.bo.boils import BOiLS
from repro.bo.sbo import StandardBO

__all__ = [
    "OptimisationResult",
    "SequenceOptimiser",
    "SequenceSpace",
    "expected_improvement",
    "probability_of_improvement",
    "ucb",
    "TrustRegion",
    "TrustRegionLocalSearch",
    "BOiLS",
    "StandardBO",
]
