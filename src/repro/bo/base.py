"""The ask/tell contract shared by every sequence optimiser in the repo.

BOiLS, SBO and all the baselines (random search, greedy, GA, RL) are thin
implementations of one first-class protocol:

* :meth:`SequenceOptimiser.suggest` — *ask*: propose up to ``n``
  integer-encoded candidate sequences;
* :meth:`SequenceOptimiser.observe` — *tell*: absorb the scored records
  for a previously suggested batch.

The budget loop itself lives in exactly one place, the generic
:func:`drive` driver: it asks, scores every batch through
:meth:`QoREvaluator.evaluate_many` (which dispatches uncached work to an
attached :class:`repro.engine.EvaluationEngine` worker pool — the same
optimiser code runs serially or in parallel, with identical results),
tells, and repeats until the evaluation budget is exhausted, the
optimiser has nothing left to propose, a callback stops the run early or
a wall-clock budget expires.

:meth:`SequenceOptimiser.optimise` is a convenience wrapper over
:func:`drive`: it calls the :meth:`SequenceOptimiser.prepare` hook,
drives the loop, and packages the evaluator history plus the optimiser's
:meth:`SequenceOptimiser.run_metadata` extras into an
:class:`OptimisationResult`.  Individual optimisers no longer own bespoke
budget loops.
"""

from __future__ import annotations

import time
from abc import ABC
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation


@dataclass
class OptimisationResult:
    """Outcome of one optimisation run on one circuit.

    Attributes
    ----------
    best_sequence:
        Best sequence found, as operation names.
    best_qor:
        Its QoR value (lower is better, Equation 1).
    best_improvement:
        Relative improvement over ``resyn2`` in percent — the number
        reported in the paper's Figure 3 table.
    best_area, best_delay:
        LUT count and LUT levels of the best sequence's mapping.
    num_evaluations:
        Distinct black-box evaluations consumed.
    history:
        Per-evaluation QoR improvement values, in evaluation order.
    best_trajectory:
        Best-so-far improvement after each evaluation (convergence curves).
    evaluated_points:
        ``(area, delay)`` pairs of every evaluated sequence (Pareto plots).
    metadata:
        Free-form extras recorded by individual optimisers.
    """

    method: str
    circuit: str
    seed: int
    best_sequence: Tuple[str, ...]
    best_qor: float
    best_improvement: float
    best_area: int
    best_delay: int
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    best_trajectory: List[float] = field(default_factory=list)
    evaluated_points: List[Tuple[int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class DriveProgress:
    """Snapshot handed to :func:`drive` callbacks after each round.

    Attributes
    ----------
    round_index:
        1-based ask/tell round just completed.
    num_evaluations:
        Budget consumed so far (the evaluator's distinct-evaluation count).
    budget:
        Total evaluation budget of the run.
    elapsed_seconds:
        Wall-clock time since :func:`drive` started.
    best:
        Best evaluation seen so far (never ``None`` after a round that
        scored at least one sequence).
    """

    round_index: int
    num_evaluations: int
    budget: int
    elapsed_seconds: float
    best: Optional[SequenceEvaluation]


#: Per-round progress callback; return value ignored.
DriveCallback = Callable[[DriveProgress], None]
#: Early-stop predicate; return ``True`` to end the run after this round.
StopCondition = Callable[[DriveProgress], bool]


def drive(
    optimiser: "SequenceOptimiser",
    evaluator: QoREvaluator,
    budget: int,
    *,
    on_round: Optional[DriveCallback] = None,
    stop_when: Optional[StopCondition] = None,
    max_seconds: Optional[float] = None,
) -> int:
    """Run one optimiser's ask/tell loop for ``budget`` evaluations.

    The single generic budget loop behind every optimiser in the repo:

    1. *ask* — ``optimiser.suggest(remaining_budget)``;
    2. *score* — the batch goes through
       :meth:`QoREvaluator.evaluate_many` (parallel when an engine is
       attached), with ``-1`` padding sentinels stripped;
    3. *tell* — ``optimiser.observe(rows, records)``;
    4. repeat while budget remains, stopping early when the optimiser
       proposes nothing (search space or construction exhausted), the
       ``stop_when`` predicate fires, or ``max_seconds`` of wall-clock
       time have elapsed.

    Memoised re-visits are free (they do not consume budget), exactly as
    in the historical per-optimiser loops.  Returns the number of
    ask/tell rounds executed.

    Callbacks observe; they cannot alter proposals or records.  A
    ``stop_when``/``max_seconds`` stop is checked *after* observe, so the
    optimiser state stays consistent with the evaluator history.
    """
    if budget < 1:
        raise ValueError("budget must be at least 1")
    start = time.monotonic()
    rounds = 0
    while evaluator.num_evaluations < budget:
        rows = np.asarray(optimiser.suggest(budget - evaluator.num_evaluations))
        if rows.size == 0:
            break
        rows = np.atleast_2d(rows.astype(int))
        records = optimiser._evaluate_batch(evaluator, rows)
        optimiser.observe(rows, records)
        rounds += 1
        if on_round is not None or stop_when is not None:
            progress = DriveProgress(
                round_index=rounds,
                num_evaluations=evaluator.num_evaluations,
                budget=budget,
                elapsed_seconds=time.monotonic() - start,
                best=evaluator.best_so_far(),
            )
            if on_round is not None:
                on_round(progress)
            if stop_when is not None and stop_when(progress):
                break
        if max_seconds is not None and time.monotonic() - start >= max_seconds:
            break
    return rounds


class SequenceOptimiser(ABC):
    """Base class: one optimiser instance encapsulates its own settings.

    Subclasses implement the ask/tell pair (:meth:`suggest` /
    :meth:`observe`) plus the optional :meth:`prepare` and
    :meth:`run_metadata` hooks; the budget loop is the shared
    :func:`drive` driver and :meth:`optimise` is a thin wrapper over it.
    """

    #: Human-readable method name used in result tables.
    name: str = "optimiser"

    def __init__(self, space: Optional[SequenceSpace] = None, seed: int = 0) -> None:
        self.space = space if space is not None else SequenceSpace()
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Run lifecycle hooks
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        """Reset per-run state before :func:`drive` starts (optional hook)."""

    def run_metadata(self) -> Dict[str, object]:
        """Optimiser-specific extras recorded on the run's result.

        Called once, after the drive loop finishes; whatever it returns is
        merged into :attr:`OptimisationResult.metadata` (and therefore
        into persisted :class:`repro.api.RunRecord`s).
        """
        return {}

    def optimise(
        self,
        evaluator: QoREvaluator,
        budget: int,
        *,
        on_round: Optional[DriveCallback] = None,
        stop_when: Optional[StopCondition] = None,
        max_seconds: Optional[float] = None,
    ) -> OptimisationResult:
        """Run the optimiser for ``budget`` black-box evaluations.

        Equivalent to :meth:`prepare` + :func:`drive` +
        :meth:`_build_result`; the keyword arguments are forwarded to the
        driver.
        """
        self.prepare(evaluator, budget)
        drive(self, evaluator, budget, on_round=on_round,
              stop_when=stop_when, max_seconds=max_seconds)
        return self._build_result(evaluator, evaluator.aig.name,
                                  metadata=self.run_metadata())

    # ------------------------------------------------------------------
    # Ask/tell protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Propose up to ``n`` integer-encoded sequences to evaluate next.

        Returns an ``(m, K)`` array with ``1 <= m <= n`` (an optimiser may
        propose fewer than asked — e.g. a sequential BO round yields one
        candidate).  Rows proposing sequences shorter than ``K`` (greedy
        prefixes) are right-padded with ``-1`` sentinels; drivers must
        strip those before evaluation, which :meth:`_evaluate_batch` does.
        This is the *ask* half of the first-class contract every bundled
        optimiser implements; the default raises
        :class:`NotImplementedError` so legacy subclasses that override
        :meth:`optimise` wholesale still work.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement suggest()")

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Feed scored records for previously suggested rows back in.

        ``rows`` and ``records`` are positional pairs, in the order
        returned by :meth:`suggest`.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement observe()")

    @property
    def supports_batch(self) -> bool:
        """Whether this optimiser implements the suggest/observe protocol."""
        return type(self).suggest is not SequenceOptimiser.suggest

    # ------------------------------------------------------------------
    def _evaluate(self, evaluator: QoREvaluator, indices: Sequence[int]) -> float:
        """Evaluate an integer-encoded sequence; returns the QoR value."""
        names = self.space.to_names(indices)
        return evaluator.qor(names)

    def _evaluate_batch(
        self, evaluator: QoREvaluator, rows: np.ndarray
    ) -> List[SequenceEvaluation]:
        """Evaluate a batch of integer-encoded sequences positionally.

        Goes through :meth:`QoREvaluator.evaluate_many`, so uncached work
        runs on the evaluator's attached engine (if any) and accounting
        matches the equivalent sequence of single evaluations exactly.
        ``-1`` padding sentinels (variable-length proposals, see
        :meth:`suggest`) are stripped before conversion.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=int))
        if rows.size == 0:
            return []
        return evaluator.evaluate_many(
            [self.space.to_names([op for op in row if op >= 0]) for row in rows]
        )

    def _build_result(
        self,
        evaluator: QoREvaluator,
        circuit_name: str,
        metadata: Optional[Dict[str, object]] = None,
    ) -> OptimisationResult:
        """Package the evaluator's history into an :class:`OptimisationResult`.

        ``metadata`` (usually :meth:`run_metadata`) is attached to the
        result so optimiser-specific extras — trust-region restarts, GA
        generations, episode returns — survive into persisted records.
        """
        best = evaluator.best_so_far()
        if best is None:
            raise RuntimeError("optimiser finished without evaluating any sequence")
        history = [record.qor_improvement for record in evaluator.history]
        points = [(record.area, record.delay) for record in evaluator.history]
        return OptimisationResult(
            method=self.name,
            circuit=circuit_name,
            seed=self.seed,
            best_sequence=best.sequence,
            best_qor=best.qor,
            best_improvement=best.qor_improvement,
            best_area=best.area,
            best_delay=best.delay,
            num_evaluations=evaluator.num_evaluations,
            history=history,
            best_trajectory=evaluator.best_trajectory(),
            evaluated_points=points,
            metadata=dict(metadata or {}),
        )
