"""Common interface shared by every sequence optimiser in the repo.

BOiLS, SBO and all the baselines (random search, greedy, GA, RL) implement
the same contract: given a :class:`repro.qor.QoREvaluator` and an
evaluation budget, run and return an :class:`OptimisationResult`.  This is
what lets the experiment runners treat every method uniformly when
regenerating the paper's tables and figures.

Batch protocol
--------------
Optimisers that can propose several sequences at once additionally
implement the ``suggest``/``observe`` pair: :meth:`SequenceOptimiser.suggest`
returns up to ``n`` integer-encoded candidates and
:meth:`SequenceOptimiser.observe` feeds the scored records back.  Their
``optimise`` loops submit whole batches through
:meth:`QoREvaluator.evaluate_many`, which dispatches any uncached work to
an attached :class:`repro.engine.EvaluationEngine` worker pool — so the
same optimiser code runs serially or in parallel, with identical results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation


@dataclass
class OptimisationResult:
    """Outcome of one optimisation run on one circuit.

    Attributes
    ----------
    best_sequence:
        Best sequence found, as operation names.
    best_qor:
        Its QoR value (lower is better, Equation 1).
    best_improvement:
        Relative improvement over ``resyn2`` in percent — the number
        reported in the paper's Figure 3 table.
    best_area, best_delay:
        LUT count and LUT levels of the best sequence's mapping.
    num_evaluations:
        Distinct black-box evaluations consumed.
    history:
        Per-evaluation QoR improvement values, in evaluation order.
    best_trajectory:
        Best-so-far improvement after each evaluation (convergence curves).
    evaluated_points:
        ``(area, delay)`` pairs of every evaluated sequence (Pareto plots).
    metadata:
        Free-form extras recorded by individual optimisers.
    """

    method: str
    circuit: str
    seed: int
    best_sequence: Tuple[str, ...]
    best_qor: float
    best_improvement: float
    best_area: int
    best_delay: int
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    best_trajectory: List[float] = field(default_factory=list)
    evaluated_points: List[Tuple[int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)


class SequenceOptimiser(ABC):
    """Base class: one optimiser instance encapsulates its own settings."""

    #: Human-readable method name used in result tables.
    name: str = "optimiser"

    def __init__(self, space: Optional[SequenceSpace] = None, seed: int = 0) -> None:
        self.space = space if space is not None else SequenceSpace()
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @abstractmethod
    def optimise(self, evaluator: QoREvaluator, budget: int) -> OptimisationResult:
        """Run the optimiser for ``budget`` black-box evaluations."""

    # ------------------------------------------------------------------
    # Batch protocol (optional)
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Propose up to ``n`` integer-encoded sequences to evaluate next.

        Returns an ``(m, K)`` array with ``1 <= m <= n`` (an optimiser may
        propose fewer than asked — e.g. a sequential BO round yields one
        candidate).  Rows proposing sequences shorter than ``K`` (greedy
        prefixes) are right-padded with ``-1`` sentinels; drivers must
        strip those before evaluation, which :meth:`_evaluate_batch` does.
        Implemented by batch-capable optimisers; the default raises
        :class:`NotImplementedError`.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement suggest()")

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Feed scored records for previously suggested rows back in.

        ``rows`` and ``records`` are positional pairs, in the order
        returned by :meth:`suggest`.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement observe()")

    @property
    def supports_batch(self) -> bool:
        """Whether this optimiser implements the suggest/observe protocol."""
        return type(self).suggest is not SequenceOptimiser.suggest

    # ------------------------------------------------------------------
    def _evaluate(self, evaluator: QoREvaluator, indices: Sequence[int]) -> float:
        """Evaluate an integer-encoded sequence; returns the QoR value."""
        names = self.space.to_names(indices)
        return evaluator.qor(names)

    def _evaluate_batch(
        self, evaluator: QoREvaluator, rows: np.ndarray
    ) -> List[SequenceEvaluation]:
        """Evaluate a batch of integer-encoded sequences positionally.

        Goes through :meth:`QoREvaluator.evaluate_many`, so uncached work
        runs on the evaluator's attached engine (if any) and accounting
        matches the equivalent sequence of single evaluations exactly.
        ``-1`` padding sentinels (variable-length proposals, see
        :meth:`suggest`) are stripped before conversion.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=int))
        if rows.size == 0:
            return []
        return evaluator.evaluate_many(
            [self.space.to_names([op for op in row if op >= 0]) for row in rows]
        )

    def _build_result(self, evaluator: QoREvaluator, circuit_name: str) -> OptimisationResult:
        """Package the evaluator's history into an :class:`OptimisationResult`."""
        best = evaluator.best_so_far()
        if best is None:
            raise RuntimeError("optimiser finished without evaluating any sequence")
        history = [record.qor_improvement for record in evaluator.history]
        points = [(record.area, record.delay) for record in evaluator.history]
        return OptimisationResult(
            method=self.name,
            circuit=circuit_name,
            seed=self.seed,
            best_sequence=best.sequence,
            best_qor=best.qor,
            best_improvement=best.qor_improvement,
            best_area=best.area,
            best_delay=best.delay,
            num_evaluations=evaluator.num_evaluations,
            history=history,
            best_trajectory=evaluator.best_trajectory(),
            evaluated_points=points,
        )
