"""The ask/tell contract shared by every sequence optimiser in the repo.

BOiLS, SBO and all the baselines (random search, greedy, GA, RL) are thin
implementations of one first-class protocol:

* :meth:`SequenceOptimiser.suggest` — *ask*: propose up to ``n``
  integer-encoded candidate sequences;
* :meth:`SequenceOptimiser.observe` — *tell*: absorb the scored records
  for a previously suggested batch.

The budget loop itself lives in exactly one place, the generic
:func:`drive` driver: it asks, scores every batch through
:meth:`QoREvaluator.evaluate_many` (which dispatches uncached work to an
attached :class:`repro.engine.EvaluationEngine` worker pool — the same
optimiser code runs serially or in parallel, with identical results),
tells, and repeats until the evaluation budget is exhausted, the
optimiser has nothing left to propose, a callback stops the run early or
a wall-clock budget expires.

:meth:`SequenceOptimiser.optimise` is a convenience wrapper over
:func:`drive`: it calls the :meth:`SequenceOptimiser.prepare` hook,
drives the loop, and packages the evaluator history plus the optimiser's
:meth:`SequenceOptimiser.run_metadata` extras into an
:class:`OptimisationResult`.  Individual optimisers no longer own bespoke
budget loops.
"""

from __future__ import annotations

import time
from abc import ABC
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bo.space import SequenceSpace
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation


@dataclass
class OptimisationResult:
    """Outcome of one optimisation run on one circuit.

    Attributes
    ----------
    best_sequence:
        Best sequence found, as operation names.
    best_qor:
        Its QoR value (lower is better, Equation 1).
    best_improvement:
        Relative improvement over ``resyn2`` in percent — the number
        reported in the paper's Figure 3 table.
    best_area, best_delay:
        LUT count and LUT levels of the best sequence's mapping.
    num_evaluations:
        Distinct black-box evaluations consumed.
    history:
        Per-evaluation QoR improvement values, in evaluation order.
    best_trajectory:
        Best-so-far improvement after each evaluation (convergence curves).
    evaluated_points:
        ``(area, delay)`` pairs of every evaluated sequence (Pareto plots).
    metadata:
        Free-form extras recorded by individual optimisers.
    """

    method: str
    circuit: str
    seed: int
    best_sequence: Tuple[str, ...]
    best_qor: float
    best_improvement: float
    best_area: int
    best_delay: int
    num_evaluations: int
    history: List[float] = field(default_factory=list)
    best_trajectory: List[float] = field(default_factory=list)
    evaluated_points: List[Tuple[int, int]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class DriveProgress:
    """Snapshot handed to :func:`drive` callbacks after each round.

    Attributes
    ----------
    round_index:
        1-based ask/tell round just completed.
    num_evaluations:
        Budget consumed so far (the evaluator's distinct-evaluation count).
    budget:
        Total evaluation budget of the run.
    elapsed_seconds:
        Wall-clock time since :func:`drive` started.
    best:
        Best evaluation seen so far (never ``None`` after a round that
        scored at least one sequence).
    """

    round_index: int
    num_evaluations: int
    budget: int
    elapsed_seconds: float
    best: Optional[SequenceEvaluation]


#: Per-round progress callback; return value ignored.
DriveCallback = Callable[[DriveProgress], None]
#: Early-stop predicate; return ``True`` to end the run after this round.
StopCondition = Callable[[DriveProgress], bool]


# ----------------------------------------------------------------------
# Round-granular event stream
# ----------------------------------------------------------------------
def _best_summary(best: Optional[SequenceEvaluation]) -> Optional[Dict[str, object]]:
    if best is None:
        return None
    return {
        "qor": best.qor,
        "qor_improvement": best.qor_improvement,
        "area": best.area,
        "delay": best.delay,
    }


@dataclass(frozen=True)
class RunEvent:
    """Base of the typed event stream emitted by :func:`drive`.

    Every event carries the position of the run when it fired:
    ``round_index`` (1-based; for terminal events, the last completed
    round), the budget consumed so far, the total budget and the
    wall-clock seconds since the run (or its first segment, for resumed
    runs) started.  :meth:`to_dict` renders a compact JSON-serialisable
    summary suitable for streaming over a process pipe — deliberately
    *without* the per-round evaluation records, which stay local to the
    producing process (the store writes them to the trajectory JSONL).
    """

    kind: ClassVar[str] = "event"

    round_index: int
    num_evaluations: int
    budget: int
    elapsed_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "round_index": self.round_index,
            "num_evaluations": self.num_evaluations,
            "budget": self.budget,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class RoundStarted(RunEvent):
    """A round is in flight: a non-empty batch is about to be scored.

    Emitted after ``suggest`` proposed at least one candidate and before
    the (dominant-cost) black-box evaluation, so every ``RoundStarted``
    is matched by a ``RoundCompleted`` — an empty ``suggest`` goes
    straight to the terminal :class:`EarlyStopped` with no phantom
    round in the stream.
    """

    kind: ClassVar[str] = "round_started"


@dataclass(frozen=True)
class RoundCompleted(RunEvent):
    """A round finished (``observe`` done); the per-round checkpoint hook.

    ``records`` holds the *fresh* evaluations of the round, in recording
    order (memo re-visits are free and do not appear); ``best`` the
    incumbent after the round.  When this event fires the optimiser is at
    a consistent round boundary, so :meth:`SequenceOptimiser.state_dict`
    taken inside a ``RoundCompleted`` handler is a valid checkpoint.
    """

    kind: ClassVar[str] = "round_completed"

    best: Optional[SequenceEvaluation] = None
    records: Tuple[SequenceEvaluation, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload["best"] = _best_summary(self.best)
        payload["num_round_evaluations"] = len(self.records)
        return payload


@dataclass(frozen=True)
class IncumbentImproved(RunEvent):
    """The round just completed produced a new best evaluation."""

    kind: ClassVar[str] = "incumbent_improved"

    best: Optional[SequenceEvaluation] = None

    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload["best"] = _best_summary(self.best)
        return payload


@dataclass(frozen=True)
class BudgetExhausted(RunEvent):
    """Terminal event: the evaluation budget has been fully consumed."""

    kind: ClassVar[str] = "budget_exhausted"


@dataclass(frozen=True)
class EarlyStopped(RunEvent):
    """Terminal event: the run ended before the budget was consumed.

    ``reason`` is one of ``"optimiser_exhausted"`` (empty ``suggest`` —
    the search space or construction ran out), ``"stop_condition"`` (the
    ``stop_when`` predicate fired) or ``"wall_clock"`` (``max_seconds``
    elapsed).
    """

    kind: ClassVar[str] = "early_stopped"

    reason: str = "stop_condition"

    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload["reason"] = self.reason
        return payload


#: Event-stream callback; receives every :class:`RunEvent` of a run.
EventCallback = Callable[[RunEvent], None]


def _wall_clock() -> float:
    """The single wall-clock source for :func:`drive`.

    Feeds only ``elapsed_seconds`` event timestamps and the
    ``max_seconds`` budget check — never proposals, records or
    checkpoints, so results stay bit-identical across machines.
    """
    # repro: lint-ok[RPL002] event timestamps and the max_seconds budget; no path into results
    return time.monotonic()


def drive(
    optimiser: "SequenceOptimiser",
    evaluator: QoREvaluator,
    budget: int,
    *,
    on_round: Optional[DriveCallback] = None,
    stop_when: Optional[StopCondition] = None,
    max_seconds: Optional[float] = None,
    on_event: Optional[EventCallback] = None,
    start_round: int = 0,
    start_elapsed: float = 0.0,
) -> int:
    """Run one optimiser's ask/tell loop for ``budget`` evaluations.

    The single generic budget loop behind every optimiser in the repo:

    1. *ask* — ``optimiser.suggest(remaining_budget)``;
    2. *score* — the batch goes through
       :meth:`QoREvaluator.evaluate_many` (parallel when an engine is
       attached), with ``-1`` padding sentinels stripped;
    3. *tell* — ``optimiser.observe(rows, records)``;
    4. repeat while budget remains, stopping early when the optimiser
       proposes nothing (search space or construction exhausted), the
       ``stop_when`` predicate fires, or ``max_seconds`` of wall-clock
       time have elapsed.

    Memoised re-visits are free (they do not consume budget), exactly as
    in the historical per-optimiser loops.  Returns the total round
    count (``start_round`` plus the rounds executed by this call).

    ``on_event`` receives the typed round-granular stream: a
    :class:`RoundStarted` before each round, :class:`IncumbentImproved`
    and :class:`RoundCompleted` after ``observe``, and exactly one
    terminal :class:`BudgetExhausted` or :class:`EarlyStopped`.  Events
    observe; they cannot alter proposals or records — but an ``on_event``
    handler is the supported place to persist per-round trajectory lines
    and :meth:`SequenceOptimiser.state_dict` checkpoints, since every
    :class:`RoundCompleted` is a consistent round boundary.

    ``start_round``/``start_elapsed`` continue a checkpointed run: round
    indices and the wall clock (hence ``max_seconds``) resume where the
    interrupted segment left off, and the budget check runs against the
    restored evaluator's counters before any new round starts.

    Callbacks observe; they cannot alter proposals or records.  A
    ``stop_when``/``max_seconds`` stop is checked *after* observe, so the
    optimiser state stays consistent with the evaluator history.
    """
    if budget < 1:
        raise ValueError("budget must be at least 1")
    start = _wall_clock() - start_elapsed
    rounds = int(start_round)

    def _emit(event: RunEvent) -> None:
        if on_event is not None:
            on_event(event)

    stop_reason: Optional[str] = None
    observing = (on_round is not None or stop_when is not None
                 or on_event is not None)
    if rounds > 0 and (stop_when is not None or max_seconds is not None):
        # Resumed run: re-apply the stop conditions to the restored
        # state before executing anything.  The interrupted segment
        # checks them *after* each observe, so a checkpoint taken at the
        # very round where a stop fired must not buy the resumed run an
        # extra round.
        progress = DriveProgress(
            round_index=rounds,
            num_evaluations=evaluator.num_evaluations,
            budget=budget,
            elapsed_seconds=_wall_clock() - start,
            best=evaluator.best_so_far(),
        )
        if stop_when is not None and stop_when(progress):
            stop_reason = "stop_condition"
        elif max_seconds is not None and _wall_clock() - start >= max_seconds:
            stop_reason = "wall_clock"
    while stop_reason is None and evaluator.num_evaluations < budget:
        history_mark = len(evaluator.history)
        best_before = evaluator.best_so_far() if observing else None
        rows = np.asarray(optimiser.suggest(budget - evaluator.num_evaluations))
        if rows.size == 0:
            stop_reason = "optimiser_exhausted"
            break
        _emit(RoundStarted(
            round_index=rounds + 1,
            num_evaluations=evaluator.num_evaluations,
            budget=budget,
            elapsed_seconds=_wall_clock() - start,
        ))
        rows = np.atleast_2d(rows.astype(int))
        records = optimiser._evaluate_batch(evaluator, rows)
        optimiser.observe(rows, records)
        rounds += 1
        if observing:
            best = evaluator.best_so_far()
            elapsed = _wall_clock() - start
            if best is not None and (best_before is None
                                     or best.qor < best_before.qor):
                _emit(IncumbentImproved(
                    round_index=rounds,
                    num_evaluations=evaluator.num_evaluations,
                    budget=budget,
                    elapsed_seconds=elapsed,
                    best=best,
                ))
            _emit(RoundCompleted(
                round_index=rounds,
                num_evaluations=evaluator.num_evaluations,
                budget=budget,
                elapsed_seconds=elapsed,
                best=best,
                records=tuple(evaluator.history[history_mark:]),
            ))
            progress = DriveProgress(
                round_index=rounds,
                num_evaluations=evaluator.num_evaluations,
                budget=budget,
                elapsed_seconds=elapsed,
                best=best,
            )
            if on_round is not None:
                on_round(progress)
            if stop_when is not None and stop_when(progress):
                stop_reason = "stop_condition"
                break
        if max_seconds is not None and _wall_clock() - start >= max_seconds:
            stop_reason = "wall_clock"
            break
    terminal_kwargs = dict(
        round_index=rounds,
        num_evaluations=evaluator.num_evaluations,
        budget=budget,
        elapsed_seconds=_wall_clock() - start,
    )
    if stop_reason is None:
        _emit(BudgetExhausted(**terminal_kwargs))
    else:
        _emit(EarlyStopped(reason=stop_reason, **terminal_kwargs))
    return rounds


class SequenceOptimiser(ABC):
    """Base class: one optimiser instance encapsulates its own settings.

    Subclasses implement the ask/tell pair (:meth:`suggest` /
    :meth:`observe`) plus the optional :meth:`prepare` and
    :meth:`run_metadata` hooks; the budget loop is the shared
    :func:`drive` driver and :meth:`optimise` is a thin wrapper over it.
    """

    #: Human-readable method name used in result tables.
    name: str = "optimiser"

    def __init__(self, space: Optional[SequenceSpace] = None, seed: int = 0) -> None:
        self.space = space if space is not None else SequenceSpace()
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Run lifecycle hooks
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        """Reset per-run state before :func:`drive` starts (optional hook)."""

    def run_metadata(self) -> Dict[str, object]:
        """Optimiser-specific extras recorded on the run's result.

        Called once, after the drive loop finishes; whatever it returns is
        merged into :attr:`OptimisationResult.metadata` (and therefore
        into persisted :class:`repro.api.RunRecord`s).
        """
        return {}

    def optimise(
        self,
        evaluator: QoREvaluator,
        budget: int,
        *,
        on_round: Optional[DriveCallback] = None,
        stop_when: Optional[StopCondition] = None,
        max_seconds: Optional[float] = None,
        on_event: Optional[EventCallback] = None,
    ) -> OptimisationResult:
        """Run the optimiser for ``budget`` black-box evaluations.

        Equivalent to :meth:`prepare` + :func:`drive` +
        :meth:`_build_result`; the keyword arguments are forwarded to the
        driver.
        """
        self.prepare(evaluator, budget)
        drive(self, evaluator, budget, on_round=on_round,
              stop_when=stop_when, max_seconds=max_seconds, on_event=on_event)
        return self._build_result(evaluator, evaluator.aig.name,
                                  metadata=self.run_metadata())

    # ------------------------------------------------------------------
    # Checkpoint / restore contract
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of per-run state at a round boundary.

        Captures the optimiser's RNG state plus whatever per-method state
        the :meth:`_state_dict` hook reports (GP observations and
        hyperparameters, GA population, trust region, RL network and
        optimiser moments, …).  Taken inside a :class:`RoundCompleted`
        handler — i.e. after ``observe``, before the next ``suggest`` —
        the snapshot is a complete checkpoint: restoring it (together
        with the evaluator's history) and continuing :func:`drive`
        reproduces the uninterrupted run bit-for-bit.

        The payload is built from plain ints, floats, strings, lists and
        dicts only, so ``json.dumps`` round-trips it exactly (Python
        floats serialise via shortest-repr, which is bit-exact).
        """
        return {"rng": self.rng.bit_generator.state,
                "state": self._state_dict()}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto a prepared optimiser.

        Call :meth:`prepare` first (it builds the per-run scaffolding —
        e.g. the RL environment — that the snapshot then overwrites),
        then this method, then continue with :func:`drive` using the
        checkpoint's ``start_round``.
        """
        self.rng.bit_generator.state = state["rng"]
        self._load_state_dict(dict(state["state"]))  # type: ignore[arg-type]

    def _state_dict(self) -> Dict[str, object]:
        """Per-method state snapshot (see :meth:`state_dict`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the checkpoint "
            "protocol (_state_dict/_load_state_dict)")

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`_state_dict` snapshot (see :meth:`load_state_dict`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the checkpoint "
            "protocol (_state_dict/_load_state_dict)")

    @property
    def supports_checkpoint(self) -> bool:
        """Whether this optimiser implements the checkpoint protocol."""
        return type(self)._state_dict is not SequenceOptimiser._state_dict

    # ------------------------------------------------------------------
    # Ask/tell protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Propose up to ``n`` integer-encoded sequences to evaluate next.

        Returns an ``(m, K)`` array with ``1 <= m <= n`` (an optimiser may
        propose fewer than asked — e.g. a sequential BO round yields one
        candidate).  Rows proposing sequences shorter than ``K`` (greedy
        prefixes) are right-padded with ``-1`` sentinels; drivers must
        strip those before evaluation, which :meth:`_evaluate_batch` does.
        This is the *ask* half of the first-class contract every bundled
        optimiser implements; the default raises
        :class:`NotImplementedError` so legacy subclasses that override
        :meth:`optimise` wholesale still work.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement suggest()")

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Feed scored records for previously suggested rows back in.

        ``rows`` and ``records`` are positional pairs, in the order
        returned by :meth:`suggest`.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement observe()")

    @property
    def supports_batch(self) -> bool:
        """Whether this optimiser implements the suggest/observe protocol."""
        return type(self).suggest is not SequenceOptimiser.suggest

    # ------------------------------------------------------------------
    def _evaluate(self, evaluator: QoREvaluator, indices: Sequence[int]) -> float:
        """Evaluate an integer-encoded sequence; returns the QoR value."""
        names = self.space.to_names(indices)
        return evaluator.qor(names)

    def _evaluate_batch(
        self, evaluator: QoREvaluator, rows: np.ndarray
    ) -> List[SequenceEvaluation]:
        """Evaluate a batch of integer-encoded sequences positionally.

        Goes through :meth:`QoREvaluator.evaluate_many`, so uncached work
        runs on the evaluator's attached engine (if any) and accounting
        matches the equivalent sequence of single evaluations exactly.
        ``-1`` padding sentinels (variable-length proposals, see
        :meth:`suggest`) are stripped before conversion.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=int))
        if rows.size == 0:
            return []
        return evaluator.evaluate_many(
            [self.space.to_names([op for op in row if op >= 0]) for row in rows]
        )

    def _build_result(
        self,
        evaluator: QoREvaluator,
        circuit_name: str,
        metadata: Optional[Dict[str, object]] = None,
    ) -> OptimisationResult:
        """Package the evaluator's history into an :class:`OptimisationResult`.

        ``metadata`` (usually :meth:`run_metadata`) is attached to the
        result so optimiser-specific extras — trust-region restarts, GA
        generations, episode returns — survive into persisted records.
        """
        best = evaluator.best_so_far()
        if best is None:
            raise RuntimeError("optimiser finished without evaluating any sequence")
        history = [record.qor_improvement for record in evaluator.history]
        points = [(record.area, record.delay) for record in evaluator.history]
        return OptimisationResult(
            method=self.name,
            circuit=circuit_name,
            seed=self.seed,
            best_sequence=best.sequence,
            best_qor=best.qor,
            best_improvement=best.qor_improvement,
            best_area=best.area,
            best_delay=best.delay,
            num_evaluations=evaluator.num_evaluations,
            history=history,
            best_trajectory=evaluator.best_trajectory(),
            evaluated_points=points,
            metadata=dict(metadata or {}),
        )
