"""Standard Bayesian optimisation (SBO) baseline.

The paper compares BOiLS against "standard BO" built on a generic
continuous/categorical surrogate (their implementation follows HEBO,
reference [25]).  This baseline isolates the value of BOiLS's two
modifications: sequences are modelled with a *positional* categorical
kernel (no sub-sequence structure) and the acquisition is maximised by
unrestricted stochastic local search over the whole space (no trust
region).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.bo.acquisition import get_acquisition
from repro.bo.base import OptimisationResult, SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.gp.gp import GaussianProcess
from repro.gp.kernels.categorical import TransformedOverlapKernel
from repro.gp.kernels.continuous import SquaredExponentialKernel
from repro.qor.evaluator import QoREvaluator


class StandardBO(SequenceOptimiser):
    """GP-EI Bayesian optimisation with a generic (non-sequence) kernel.

    Parameters
    ----------
    kernel_type:
        ``"overlap"`` — transformed-overlap categorical kernel on the raw
        integer encoding (default); ``"onehot-se"`` — squared-exponential
        kernel on a one-hot encoding (closer to a vanilla continuous-BO
        port such as HEBO's default pipeline).
    """

    name = "SBO"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        num_initial: int = 20,
        acquisition: str = "ei",
        kernel_type: str = "overlap",
        fit_every: int = 1,
        adam_steps: int = 10,
        search_candidates: int = 300,
        noise_variance: float = 1e-4,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.num_initial = num_initial
        self.acquisition_name = acquisition
        self.kernel_type = kernel_type
        self.fit_every = max(1, fit_every)
        self.adam_steps = adam_steps
        self.search_candidates = search_candidates
        self.noise_variance = noise_variance

    # ------------------------------------------------------------------
    def _encode(self, X: np.ndarray) -> np.ndarray:
        """Kernel-specific feature encoding of integer sequences."""
        if self.kernel_type == "onehot-se":
            num_ops = self.space.num_operations
            one_hot = np.zeros((X.shape[0], X.shape[1] * num_ops), dtype=float)
            for position in range(X.shape[1]):
                one_hot[np.arange(X.shape[0]), position * num_ops + X[:, position]] = 1.0
            return one_hot
        return np.asarray(X, dtype=int)

    def _make_kernel(self):
        if self.kernel_type == "onehot-se":
            dim = self.space.sequence_length * self.space.num_operations
            return SquaredExponentialKernel(input_dim=dim, lengthscale=2.0), ["variance"]
        kernel = TransformedOverlapKernel(sequence_length=self.space.sequence_length)
        return kernel, ["lengthscale", "variance"]

    # ------------------------------------------------------------------
    def optimise(self, evaluator: QoREvaluator, budget: int) -> OptimisationResult:
        """Run standard BO for ``budget`` black-box evaluations."""
        space = self.space
        rng = self.rng
        acquisition_fn = get_acquisition(self.acquisition_name)

        num_initial = min(self.num_initial, max(1, budget))
        X = space.sample(num_initial, rng)
        y = np.array([-self._evaluate(evaluator, row) for row in X], dtype=float)
        evaluated: Set[Tuple[int, ...]] = {tuple(row.tolist()) for row in X}

        kernel, fit_params = self._make_kernel()
        gp = GaussianProcess(kernel, noise_variance=self.noise_variance)

        rounds = 0
        while evaluator.num_evaluations < budget:
            rounds += 1
            best_value = float(np.max(y))
            encoded = self._encode(X)
            if rounds % self.fit_every == 0 and len(y) >= 2:
                gp.fit_hyperparameters(encoded, y, num_steps=self.adam_steps,
                                       param_names=fit_params)
            else:
                gp.fit(encoded, y)

            def acquisition(candidates: np.ndarray) -> np.ndarray:
                mean, std = gp.predict(self._encode(candidates))
                if self.acquisition_name == "ucb":
                    return acquisition_fn(mean, std)
                return acquisition_fn(mean, std, best_value)

            # Global candidate pool: random samples plus hill-climbing
            # around the incumbent, with no trust-region restriction.
            incumbent = X[int(np.argmax(y))]
            candidates = [space.sample(self.search_candidates // 2, rng)]
            local = np.array(
                [space.random_neighbour(incumbent, rng,
                                        num_changes=int(rng.integers(1, 4)))
                 for _ in range(self.search_candidates // 2)],
                dtype=int,
            )
            candidates.append(local)
            pool = np.vstack(candidates)
            scores = acquisition(pool)
            order = np.argsort(-scores)
            chosen = None
            for idx in order:
                key = tuple(pool[idx].tolist())
                if key not in evaluated:
                    chosen = pool[idx]
                    break
            if chosen is None:
                chosen = space.sample(1, rng)[0]

            value = -self._evaluate(evaluator, chosen)
            evaluated.add(tuple(chosen.tolist()))
            X = np.vstack([X, chosen[None, :]])
            y = np.append(y, value)

        result = self._build_result(evaluator, evaluator.aig.name)
        result.metadata.update({"kernel_params": kernel.get_params(), "num_rounds": rounds})
        return result
