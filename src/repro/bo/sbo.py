"""Standard Bayesian optimisation (SBO) baseline.

The paper compares BOiLS against "standard BO" built on a generic
continuous/categorical surrogate (their implementation follows HEBO,
reference [25]).  This baseline isolates the value of BOiLS's two
modifications: sequences are modelled with a *positional* categorical
kernel (no sub-sequence structure) and the acquisition is maximised by
unrestricted stochastic local search over the whole space (no trust
region).

The solver implements the batch protocol
(:meth:`~repro.bo.base.SequenceOptimiser.suggest` /
:meth:`~repro.bo.base.SequenceOptimiser.observe`): the random initial
design is proposed as one batch and each acquisition round proposes up to
``batch_size`` distinct candidates from the scored pool, so an attached
:class:`repro.engine.EvaluationEngine` evaluates whole batches across
worker processes.  With the default ``batch_size=1`` the optimisation
trace matches the sequential algorithm.  Rounds that do not refit the
kernel hyperparameters condition the GP incrementally
(:meth:`repro.gp.GaussianProcess.update_or_fit`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bo.acquisition import get_acquisition
from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.gp.gp import GaussianProcess
from repro.gp.kernels.categorical import TransformedOverlapKernel
from repro.gp.kernels.continuous import SquaredExponentialKernel
from repro.gp.optim import RefitGate
from repro.qor.evaluator import QoREvaluator, SequenceEvaluation
from repro.registry import register_optimiser
from repro.serialise import decode_array, encode_array


@register_optimiser(
    "sbo", display_name="SBO",
    defaults={"num_initial": 5, "adam_steps": 5, "fit_every": 2},
)
class StandardBO(SequenceOptimiser):
    """GP-EI Bayesian optimisation with a generic (non-sequence) kernel.

    Parameters
    ----------
    kernel_type:
        ``"overlap"`` — transformed-overlap categorical kernel on the raw
        integer encoding (default); ``"onehot-se"`` — squared-exponential
        kernel on a one-hot encoding (closer to a vanilla continuous-BO
        port such as HEBO's default pipeline).
    batch_size:
        Black-box evaluations proposed per acquisition round; ``1``
        reproduces the sequential baseline.
    """

    name = "SBO"

    def __init__(
        self,
        space: Optional[SequenceSpace] = None,
        seed: int = 0,
        num_initial: int = 20,
        acquisition: str = "ei",
        kernel_type: str = "overlap",
        fit_every: int = 1,
        adam_steps: int = 10,
        search_candidates: int = 300,
        noise_variance: float = 1e-4,
        batch_size: int = 1,
        refit_gate: bool = False,
        refit_gate_tol: float = 1e-3,
        refit_gate_patience: int = 2,
    ) -> None:
        super().__init__(space=space, seed=seed)
        self.num_initial = num_initial
        self.acquisition_name = acquisition
        self.kernel_type = kernel_type
        self.fit_every = max(1, fit_every)
        self.adam_steps = adam_steps
        self.search_candidates = search_candidates
        self.noise_variance = noise_variance
        self.batch_size = max(1, batch_size)
        self.use_refit_gate = bool(refit_gate)
        self.refit_gate_tol = refit_gate_tol
        self.refit_gate_patience = refit_gate_patience
        self._reset_state()

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._evaluated: Set[Tuple[int, ...]] = set()
        self._kernel = None
        self._fit_param_names: List[str] = []
        self._gp: Optional[GaussianProcess] = None
        self._rounds = 0
        self._refit_gate: Optional[RefitGate] = (
            RefitGate(tol=self.refit_gate_tol,
                      patience=self.refit_gate_patience)
            if self.use_refit_gate else None
        )

    # ------------------------------------------------------------------
    def _encode(self, X: np.ndarray) -> np.ndarray:
        """Kernel-specific feature encoding of integer sequences."""
        if self.kernel_type == "onehot-se":
            num_ops = self.space.num_operations
            one_hot = np.zeros((X.shape[0], X.shape[1] * num_ops), dtype=float)
            for position in range(X.shape[1]):
                one_hot[np.arange(X.shape[0]), position * num_ops + X[:, position]] = 1.0
            return one_hot
        return np.asarray(X, dtype=int)

    def _make_kernel(self):
        if self.kernel_type == "onehot-se":
            dim = self.space.sequence_length * self.space.num_operations
            return SquaredExponentialKernel(input_dim=dim, lengthscale=2.0), ["variance"]
        kernel = TransformedOverlapKernel(sequence_length=self.space.sequence_length)
        return kernel, ["lengthscale", "variance"]

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def suggest(self, n: int = 1) -> np.ndarray:
        """Propose the next batch: initial design or acquisition picks."""
        n = max(1, int(n))
        if self._X is None:
            return self.space.sample(min(self.num_initial, n), self.rng)
        return self._suggest_candidates(min(n, self.batch_size))

    def _suggest_candidates(self, count: int) -> np.ndarray:
        assert self._X is not None and self._y is not None
        self._rounds += 1
        best_value = float(np.max(self._y))
        encoded = self._encode(self._X)
        refit_due = self._rounds % self.fit_every == 0 and len(self._y) >= 2
        if refit_due and (self._refit_gate is None
                          or self._refit_gate.should_refit()):
            fitted = self._gp.fit_hyperparameters(
                encoded, self._y, num_steps=self.adam_steps,
                param_names=self._fit_param_names)
            if self._refit_gate is not None:
                self._refit_gate.record(fitted)
        else:
            self._gp.update_or_fit(encoded, self._y)

        acquisition_fn = get_acquisition(self.acquisition_name)

        def acquisition(candidates: np.ndarray) -> np.ndarray:
            mean, std = self._gp.predict(self._encode(candidates))
            if self.acquisition_name == "ucb":
                return acquisition_fn(mean, std)
            return acquisition_fn(mean, std, best_value)

        # Global candidate pool: random samples plus hill-climbing
        # around the incumbent, with no trust-region restriction.
        incumbent = self._X[int(np.argmax(self._y))]
        candidates = [self.space.sample(self.search_candidates // 2, self.rng)]
        local = np.array(
            [self.space.random_neighbour(incumbent, self.rng,
                                         num_changes=int(self.rng.integers(1, 4)))
             for _ in range(self.search_candidates // 2)],
            dtype=int,
        )
        candidates.append(local)
        pool = np.vstack(candidates)
        scores = acquisition(pool)
        order = np.argsort(-scores)
        rows: List[np.ndarray] = []
        taken: Set[Tuple[int, ...]] = set(self._evaluated)
        for idx in order:
            if len(rows) >= count:
                break
            key = tuple(pool[idx].tolist())
            if key in taken:
                continue
            taken.add(key)
            rows.append(pool[idx])
        while len(rows) < count:
            # Pool exhausted (everything already evaluated): fall back to
            # fresh uniform draws, mirroring the sequential baseline.
            rows.append(self.space.sample(1, self.rng)[0])
        return np.array(rows, dtype=int)

    def observe(self, rows: np.ndarray, records: Sequence[SequenceEvaluation]) -> None:
        """Absorb scored rows into the GP data set."""
        rows = np.atleast_2d(np.asarray(rows, dtype=int))
        values = np.array([-record.qor for record in records], dtype=float)
        if self._X is None:
            self._X = rows.copy()
            self._y = values
            self._kernel, self._fit_param_names = self._make_kernel()
            self._gp = GaussianProcess(self._kernel, noise_variance=self.noise_variance)
        else:
            self._X = np.vstack([self._X, rows])
            self._y = np.append(self._y, values)
        for row in rows:
            self._evaluated.add(tuple(row.tolist()))

    # ------------------------------------------------------------------
    # Drive hooks
    # ------------------------------------------------------------------
    def prepare(self, evaluator: QoREvaluator, budget: int) -> None:
        self._reset_state()

    def run_metadata(self) -> dict:
        if self._kernel is None:
            metadata = {"num_rounds": self._rounds}
        else:
            metadata = {"kernel_params": self._kernel.get_params(),
                        "num_rounds": self._rounds}
        if self._refit_gate is not None:
            metadata["refit_gate_converged"] = self._refit_gate.converged
        return metadata

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        return {
            "rounds": self._rounds,
            "X": encode_array(self._X),
            "y": encode_array(self._y),
            "evaluated": sorted(list(key) for key in self._evaluated),
            "gp": self._gp.state_dict() if self._gp is not None else None,
            "refit_gate": (self._refit_gate.state_dict()
                           if self._refit_gate is not None else None),
        }

    def _load_state_dict(self, state: dict) -> None:
        self._reset_state()
        self._rounds = int(state["rounds"])
        self._X = decode_array(state["X"])
        self._y = decode_array(state["y"])
        self._evaluated = {tuple(int(op) for op in key)
                           for key in state["evaluated"]}
        if state["refit_gate"] is not None:
            self._refit_gate = RefitGate()
            self._refit_gate.load_state_dict(state["refit_gate"])
        if state["gp"] is not None:
            # Kernel scaffolding rebuilt from configuration; the GP
            # snapshot then restores the exact hyperparameters and the
            # Cholesky factor of the interrupted run.
            self._kernel, self._fit_param_names = self._make_kernel()
            self._gp = GaussianProcess(self._kernel,
                                       noise_variance=self.noise_variance)
            self._gp.load_state_dict(state["gp"])
