"""Reusable word-level building blocks for the circuit generators.

All blocks operate on *bit vectors*: Python lists of AIG literals with the
least-significant bit first.  They only use the :class:`repro.aig.AIG`
constructor API, so every generated circuit is a plain structurally-hashed
AIG ready for synthesis and mapping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aig.graph import AIG, CONST0, CONST1, Literal, lit_not

BitVector = List[Literal]


def constant_vector(value: int, width: int) -> BitVector:
    """Bit vector of a compile-time constant (LSB first)."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def full_adder(aig: AIG, a: Literal, b: Literal, cin: Literal) -> Tuple[Literal, Literal]:
    """One-bit full adder; returns ``(sum, carry_out)``."""
    axb = aig.add_xor(a, b)
    s = aig.add_xor(axb, cin)
    carry = aig.add_maj(a, b, cin)
    return s, carry


def ripple_carry_adder(
    aig: AIG, a: Sequence[Literal], b: Sequence[Literal], cin: Literal = CONST0
) -> Tuple[BitVector, Literal]:
    """Add two equal-width vectors; returns ``(sum_bits, carry_out)``."""
    if len(a) != len(b):
        raise ValueError("operand widths must match")
    sums: BitVector = []
    carry = cin
    for bit_a, bit_b in zip(a, b):
        s, carry = full_adder(aig, bit_a, bit_b, carry)
        sums.append(s)
    return sums, carry


def ripple_borrow_subtractor(
    aig: AIG, a: Sequence[Literal], b: Sequence[Literal]
) -> Tuple[BitVector, Literal]:
    """Compute ``a - b``; returns ``(difference_bits, no_borrow)``.

    ``no_borrow`` is 1 when ``a >= b`` (i.e. the subtraction did not wrap),
    which is exactly the condition restoring dividers and square-root units
    need.
    """
    if len(a) != len(b):
        raise ValueError("operand widths must match")
    # a - b = a + ~b + 1
    b_inverted = [lit_not(bit) for bit in b]
    diff, carry = ripple_carry_adder(aig, list(a), b_inverted, cin=CONST1)
    return diff, carry


def comparator_greater_equal(aig: AIG, a: Sequence[Literal], b: Sequence[Literal]) -> Literal:
    """Return a literal that is 1 iff the unsigned value ``a >= b``."""
    _, no_borrow = ripple_borrow_subtractor(aig, a, b)
    return no_borrow


def mux_vector(aig: AIG, sel: Literal, then_vec: Sequence[Literal],
               else_vec: Sequence[Literal]) -> BitVector:
    """Bitwise 2:1 multiplexer over two equal-width vectors."""
    if len(then_vec) != len(else_vec):
        raise ValueError("mux operand widths must match")
    return [aig.add_mux(sel, t, e) for t, e in zip(then_vec, else_vec)]


def barrel_shifter_block(
    aig: AIG, data: Sequence[Literal], shift: Sequence[Literal], left: bool = True,
    rotate: bool = False,
) -> BitVector:
    """Logarithmic barrel shifter (shift or rotate by a variable amount)."""
    current = list(data)
    width = len(current)
    for stage, sel in enumerate(shift):
        amount = 1 << stage
        if amount >= width and not rotate:
            shifted = [CONST0] * width
        else:
            amount %= width if width else 1
            if left:
                shifted = [
                    current[(i - amount) % width] if (rotate or i >= amount) else CONST0
                    for i in range(width)
                ]
            else:
                shifted = [
                    current[(i + amount) % width] if (rotate or i + amount < width) else CONST0
                    for i in range(width)
                ]
        current = mux_vector(aig, sel, shifted, current)
    return current


def array_multiplier(aig: AIG, a: Sequence[Literal], b: Sequence[Literal]) -> BitVector:
    """Unsigned array multiplier; result width is ``len(a) + len(b)``."""
    wa, wb = len(a), len(b)
    result_width = wa + wb
    accumulator = constant_vector(0, result_width)
    for j, b_bit in enumerate(b):
        partial = constant_vector(0, result_width)
        for i, a_bit in enumerate(a):
            if i + j < result_width:
                partial[i + j] = aig.add_and(a_bit, b_bit)
        accumulator, _ = ripple_carry_adder(aig, accumulator, partial)
    return accumulator


def zero_extend(vec: Sequence[Literal], width: int) -> BitVector:
    """Pad a vector with constant-zero bits up to ``width``."""
    result = list(vec)
    while len(result) < width:
        result.append(CONST0)
    return result[:width]


def shift_left_const(vec: Sequence[Literal], amount: int, width: int) -> BitVector:
    """Shift a vector left by a constant amount within ``width`` bits."""
    result = [CONST0] * width
    for i, bit in enumerate(vec):
        if 0 <= i + amount < width:
            result[i + amount] = bit
    return result


def shift_right_const(vec: Sequence[Literal], amount: int) -> BitVector:
    """Logical right shift by a constant amount (width preserved)."""
    width = len(vec)
    result = [CONST0] * width
    for i in range(width):
        if i + amount < width:
            result[i] = vec[i + amount]
    return result


def shift_right_arith_const(vec: Sequence[Literal], amount: int) -> BitVector:
    """Arithmetic (sign-extending) right shift by a constant amount.

    Needed wherever a two's-complement accumulator can go negative (e.g.
    the CORDIC y accumulator in the sine generator): the vacated high bits
    are filled with the sign bit instead of zero.
    """
    width = len(vec)
    if width == 0:
        return []
    sign = vec[-1]
    result = [sign] * width
    for i in range(width):
        if i + amount < width:
            result[i] = vec[i + amount]
    return result


def reduce_or(aig: AIG, vec: Sequence[Literal]) -> Literal:
    """OR-reduce a vector to a single literal."""
    return aig.add_or_multi(list(vec)) if vec else CONST0
