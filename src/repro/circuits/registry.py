"""Named registry of the ten benchmark circuits.

The registry maps the circuit names used throughout the paper's tables
(``adder``, ``bar``, ``div``, ``hyp``, ``log2``, ``max``, ``multiplier``,
``sin``, ``sqrt``, ``square``) to generator functions and default
parameters, and offers a width-scale knob so experiments can trade run
time for instance size uniformly across the suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.aig.graph import AIG
from repro.circuits import generators


@dataclass(frozen=True)
class CircuitSpec:
    """Description of a benchmark circuit.

    Attributes
    ----------
    name:
        Canonical short name (matches the EPFL suite naming).
    display_name:
        Human-readable name used in tables (matches the paper's rows).
    generator:
        Callable producing the AIG given a width.
    default_width:
        Bit-width used when none is requested.
    paper_width:
        Approximate datapath width of the original EPFL instance, recorded
        for documentation purposes.
    large:
        Whether the circuit belongs to the "large" subset used in the
        paper's Figure 3 middle/bottom rows.
    """

    name: str
    display_name: str
    generator: Callable[[int], AIG]
    default_width: int
    paper_width: int
    large: bool = False


_SPECS: List[CircuitSpec] = [
    CircuitSpec("adder", "Adder", generators.make_adder, 16, 128),
    CircuitSpec("bar", "Barrel Shifter", generators.make_barrel_shifter, 16, 128),
    CircuitSpec("div", "Divisor", generators.make_divisor, 8, 64, large=True),
    CircuitSpec("hyp", "Hypotenuse", generators.make_hypotenuse, 6, 128, large=True),
    CircuitSpec("log2", "Log2", generators.make_log2, 12, 32, large=True),
    CircuitSpec("max", "Max", generators.make_max, 16, 128),
    CircuitSpec("multiplier", "Multiplier", generators.make_multiplier, 8, 64, large=True),
    CircuitSpec("sin", "Sine", generators.make_sine, 8, 24),
    CircuitSpec("sqrt", "Square-root", generators.make_square_root, 10, 128),
    CircuitSpec("square", "Square", generators.make_square, 8, 64),
]

_BY_NAME: Dict[str, CircuitSpec] = {spec.name: spec for spec in _SPECS}
# Aliases matching the paper's display names and common variations.
_ALIASES: Dict[str, str] = {
    "barrel shifter": "bar",
    "barrel_shifter": "bar",
    "divisor": "div",
    "hypotenuse": "hyp",
    "hyp.": "hyp",
    "sine": "sin",
    "square-root": "sqrt",
    "square root": "sqrt",
    "mult": "multiplier",
}

CIRCUIT_NAMES: List[str] = [spec.name for spec in _SPECS]
"""Canonical circuit names, in the paper's table order."""

LARGE_CIRCUITS: List[str] = [spec.name for spec in _SPECS if spec.large]
"""The four large circuits used in Figure 3's middle and bottom rows."""


def list_circuits() -> List[CircuitSpec]:
    """All circuit specifications in canonical order."""
    return list(_SPECS)


def get_circuit_spec(name: str) -> CircuitSpec:
    """Look up a circuit spec by canonical name, display name or alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _BY_NAME:
        raise KeyError(f"unknown circuit {name!r}; available: {CIRCUIT_NAMES}")
    return _BY_NAME[key]


def _width_scale() -> float:
    """Global width multiplier, controlled by ``REPRO_WIDTH_SCALE``."""
    raw = os.environ.get("REPRO_WIDTH_SCALE", "1.0")
    try:
        return max(0.1, float(raw))
    except ValueError:
        return 1.0


def resolve_width(name: str, width: Optional[int] = None) -> int:
    """The effective bit-width :func:`get_circuit` will use.

    Resolves the default width and the ``REPRO_WIDTH_SCALE`` environment
    variable eagerly, so callers (e.g. picklable evaluator specs sent to
    worker processes) can pin the width at creation time.
    """
    if width is not None:
        return int(width)
    spec = get_circuit_spec(name)
    return max(2, int(round(spec.default_width * _width_scale())))


def get_circuit(name: str, width: Optional[int] = None) -> AIG:
    """Instantiate a benchmark circuit.

    Parameters
    ----------
    name:
        Canonical name, display name or alias.
    width:
        Bit-width override; defaults to ``spec.default_width`` scaled by the
        ``REPRO_WIDTH_SCALE`` environment variable.
    """
    spec = get_circuit_spec(name)
    return spec.generator(resolve_width(name, width))
