"""Named registry of the benchmark circuits.

The registry maps the circuit names used throughout the paper's tables
(``adder``, ``bar``, ``div``, ``hyp``, ``log2``, ``max``, ``multiplier``,
``sin``, ``sqrt``, ``square``) to generator functions and default
parameters, and offers a width-scale knob so experiments can trade run
time for instance size uniformly across the suite.

The name table is a :class:`repro.registry.Registry`, so user circuits
plug in without touching this module — either decorate a generator::

    from repro.circuits.registry import register_circuit

    @register_circuit("lfsr", display_name="LFSR", default_width=16)
    def make_lfsr(width: int) -> AIG:
        ...

or publish it from an installed package through the ``repro.circuits``
entry-point group (exporting the generator or a full
:class:`CircuitSpec`).  Registered circuits are first-class everywhere a
bundled one is: ``repro.api.Problem``, the CLI, grid campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.aig.graph import AIG
from repro.circuits import generators
from repro.registry import CIRCUITS, RegistryError


@dataclass(frozen=True)
class CircuitSpec:
    """Description of a benchmark circuit.

    Attributes
    ----------
    name:
        Canonical short name (matches the EPFL suite naming).
    display_name:
        Human-readable name used in tables (matches the paper's rows).
    generator:
        Callable producing the AIG given a width.
    default_width:
        Bit-width used when none is requested.
    paper_width:
        Approximate datapath width of the original EPFL instance, recorded
        for documentation purposes.
    large:
        Whether the circuit belongs to the "large" subset used in the
        paper's Figure 3 middle/bottom rows.
    """

    name: str
    display_name: str
    generator: Callable[[int], AIG]
    default_width: int
    paper_width: int
    large: bool = False


def register_circuit(
    name: str,
    *,
    display_name: Optional[str] = None,
    default_width: int = 8,
    paper_width: Optional[int] = None,
    large: bool = False,
    replace: bool = False,
):
    """Decorator registering a circuit generator under ``name``."""

    def _decorate(generator: Callable[[int], AIG]) -> Callable[[int], AIG]:
        spec = CircuitSpec(
            name=name,
            display_name=display_name if display_name is not None else name,
            generator=generator,
            default_width=default_width,
            paper_width=paper_width if paper_width is not None else default_width,
            large=large,
        )
        CIRCUITS.register(name, spec, replace=replace)
        return generator

    return _decorate


def _register_builtin(spec: CircuitSpec) -> None:
    CIRCUITS.register(spec.name, spec)


_BUILTIN_SPECS = [
    CircuitSpec("adder", "Adder", generators.make_adder, 16, 128),
    CircuitSpec("bar", "Barrel Shifter", generators.make_barrel_shifter, 16, 128),
    CircuitSpec("div", "Divisor", generators.make_divisor, 8, 64, large=True),
    CircuitSpec("hyp", "Hypotenuse", generators.make_hypotenuse, 6, 128, large=True),
    CircuitSpec("log2", "Log2", generators.make_log2, 12, 32, large=True),
    CircuitSpec("max", "Max", generators.make_max, 16, 128),
    CircuitSpec("multiplier", "Multiplier", generators.make_multiplier, 8, 64, large=True),
    CircuitSpec("sin", "Sine", generators.make_sine, 8, 24),
    CircuitSpec("sqrt", "Square-root", generators.make_square_root, 10, 128),
    CircuitSpec("square", "Square", generators.make_square, 8, 64),
]
for _spec in _BUILTIN_SPECS:
    _register_builtin(_spec)

# Aliases matching the paper's display names and common variations.
_ALIASES: Dict[str, str] = {
    "barrel shifter": "bar",
    "barrel_shifter": "bar",
    "divisor": "div",
    "hypotenuse": "hyp",
    "hyp.": "hyp",
    "sine": "sin",
    "square-root": "sqrt",
    "square root": "sqrt",
    "mult": "multiplier",
}

# Snapshot the bundled specs directly (not via CIRCUITS.items()): entry
# points may contribute bare generator callables that only _as_spec
# normalises, and iterating the registry here would also force the
# entry-point scan at import time.
CIRCUIT_NAMES: List[str] = [spec.name for spec in _BUILTIN_SPECS]
"""Canonical bundled circuit names, in the paper's table order."""

LARGE_CIRCUITS: List[str] = [spec.name for spec in _BUILTIN_SPECS if spec.large]
"""The four large circuits used in Figure 3's middle and bottom rows."""


def _as_spec(name: str, entry: object) -> CircuitSpec:
    """Normalise a registry entry (entry points may export a generator)."""
    if isinstance(entry, CircuitSpec):
        return entry
    if callable(entry):
        spec = CircuitSpec(name=name, display_name=name, generator=entry,
                           default_width=8, paper_width=8)
        CIRCUITS.register(name, spec, replace=True)
        return spec
    raise RegistryError(
        f"circuit {name!r} registered as {entry!r}; expected a CircuitSpec "
        "or a generator callable"
    )


def list_circuits() -> List[CircuitSpec]:
    """All circuit specifications, bundled ones first in table order."""
    return [_as_spec(name, entry) for name, entry in CIRCUITS.items()]


def get_circuit_spec(name: str) -> CircuitSpec:
    """Look up a circuit spec by canonical name, display name or alias.

    Registered names take precedence: the exact (case-sensitive) key is
    tried first, then the lowercase form, then the built-in alias table —
    so a user circuit is always reachable under the name it registered.
    Names of the form ``file:<path>`` (or bare paths with a recognised
    circuit-file suffix) resolve to a file-backed spec — see
    :mod:`repro.circuits.files`.
    """
    key = name.strip()
    if key not in CIRCUITS:
        # Imported lazily: repro.circuits.files imports this module.
        from repro.circuits import files

        if files.is_file_circuit_name(key):
            return files.file_circuit_spec(key)
        key = key.lower()
        if key not in CIRCUITS:
            key = _ALIASES.get(key, key)
    return _as_spec(key, CIRCUITS.get(key))


def _width_scale() -> float:
    """Global width multiplier, controlled by ``REPRO_WIDTH_SCALE``.

    Read through :mod:`repro.config` — the sanctioned environment
    layer — so the registry itself never touches ambient process state.
    """
    from repro.config import env_width_scale

    return env_width_scale()


def resolve_width(name: str, width: Optional[int] = None) -> int:
    """The effective bit-width :func:`get_circuit` will use.

    Resolves the default width and the ``REPRO_WIDTH_SCALE`` environment
    variable eagerly, so callers (e.g. picklable evaluator specs sent to
    worker processes) can pin the width at creation time.
    """
    spec = get_circuit_spec(name)
    if getattr(spec, "file_backed", False):
        # File circuits have no width knob; 0 is their pinned "width".
        return 0
    if width is not None:
        return int(width)
    return max(2, int(round(spec.default_width * _width_scale())))


def get_circuit(name: str, width: Optional[int] = None) -> AIG:
    """Instantiate a benchmark circuit.

    Parameters
    ----------
    name:
        Canonical name, display name or alias.
    width:
        Bit-width override; defaults to ``spec.default_width`` scaled by the
        ``REPRO_WIDTH_SCALE`` environment variable.
    """
    spec = get_circuit_spec(name)
    return spec.generator(resolve_width(name, width))
