"""EPFL-style arithmetic benchmark circuits as AIG generators.

The original BOiLS experiments run on the ten EPFL arithmetic benchmarks
(adder, barrel shifter, divisor, hypotenuse, log2, max, multiplier, sine,
square-root, square).  The benchmark files themselves are not bundled, so
this package provides structural generators that construct the same
arithmetic functions at configurable bit-widths.  The default widths are
chosen so that a pure-Python synthesis/mapping stack can evaluate hundreds
of sequences in minutes; pass larger widths to approach paper-scale
instances.
"""

from repro.circuits.blocks import (
    ripple_carry_adder,
    ripple_borrow_subtractor,
    comparator_greater_equal,
    barrel_shifter_block,
    array_multiplier,
)
from repro.circuits.generators import (
    make_adder,
    make_barrel_shifter,
    make_divisor,
    make_hypotenuse,
    make_log2,
    make_max,
    make_multiplier,
    make_sine,
    make_square,
    make_square_root,
)
from repro.circuits.registry import (
    CIRCUIT_NAMES,
    LARGE_CIRCUITS,
    CircuitSpec,
    get_circuit,
    get_circuit_spec,
    list_circuits,
)
from repro.circuits.files import (
    CircuitFileError,
    FileCircuitSpec,
    is_file_circuit_name,
    load_circuit_file,
)
from repro.circuits.fuzz import FUZZ_KINDS, FuzzSpec, random_aig
from repro.circuits.corpus import (
    CorpusEntry,
    CorpusError,
    CorpusManifest,
    build_corpus,
    corpus_problems,
    import_circuit,
)

__all__ = [
    "ripple_carry_adder",
    "ripple_borrow_subtractor",
    "comparator_greater_equal",
    "barrel_shifter_block",
    "array_multiplier",
    "make_adder",
    "make_barrel_shifter",
    "make_divisor",
    "make_hypotenuse",
    "make_log2",
    "make_max",
    "make_multiplier",
    "make_sine",
    "make_square",
    "make_square_root",
    "CIRCUIT_NAMES",
    "LARGE_CIRCUITS",
    "CircuitSpec",
    "get_circuit",
    "get_circuit_spec",
    "list_circuits",
    "CircuitFileError",
    "FileCircuitSpec",
    "is_file_circuit_name",
    "load_circuit_file",
    "FUZZ_KINDS",
    "FuzzSpec",
    "random_aig",
    "CorpusEntry",
    "CorpusError",
    "CorpusManifest",
    "build_corpus",
    "corpus_problems",
    "import_circuit",
]
