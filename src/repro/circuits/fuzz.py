"""Seeded random-AIG generators — the fuzzing side of the circuit corpus.

Three generator *kinds* cover structurally different regions of the
circuit space, so differential tests and corpus campaigns stress the
substrate fast paths (bitset cut enumeration, array traversals, the LUT
mapper) on inputs the ten arithmetic benchmarks never produce:

``layered``
    Wide, shallow DAGs: gates are assigned to layers and draw fanins
    mostly from the previous layer — the shape of datapath glue logic.
``windowed``
    Deep, narrow chains: each gate draws fanins from a sliding window
    over the most recent signals with a skew toward the newest, which
    yields long reconvergent chains (worst case for cut enumeration).
``arith``
    Arithmetic-like cones: random compositions of the real building
    blocks (ripple adders/subtractors, comparator-muxes, XOR folds)
    over randomly chosen signal slices — carry chains and majority
    structure like the EPFL suite, but in endless seeded variation.

Everything is deterministic in ``(kind, seed)`` plus the explicit size
parameters: the same :class:`FuzzSpec` always builds the identical AIG,
which is what lets a corpus manifest or a failing CI seed reproduce a
circuit exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.aig.graph import AIG, Literal, lit_not
from repro.circuits.blocks import (
    comparator_greater_equal,
    mux_vector,
    ripple_borrow_subtractor,
    ripple_carry_adder,
)

#: The generator kinds, in a stable order (corpus builds cycle through it).
FUZZ_KINDS: Tuple[str, ...] = ("layered", "windowed", "arith")

#: Fixed entropy domain separating fuzz streams from other RNG users.
_FUZZ_DOMAIN = 0x42015


@dataclass(frozen=True)
class FuzzSpec:
    """Deterministic recipe for one random AIG.

    Attributes
    ----------
    kind:
        One of :data:`FUZZ_KINDS`.
    seed:
        Instance seed; every derived random choice flows from it.
    num_inputs / num_gates / num_outputs:
        Approximate size targets.  Structural hashing and constant
        propagation may make the realised AIG slightly smaller.
    fanin_window:
        Window size for the ``windowed`` kind.
    skew:
        Recency bias exponent for the ``windowed`` kind (larger = deeper).
    """

    kind: str = "layered"
    seed: int = 0
    num_inputs: int = 8
    num_gates: int = 48
    num_outputs: int = 4
    fanin_window: int = 12
    skew: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FUZZ_KINDS:
            raise ValueError(
                f"unknown fuzz kind {self.kind!r}; expected one of {FUZZ_KINDS}")
        if self.num_inputs < 1 or self.num_gates < 1 or self.num_outputs < 1:
            raise ValueError("fuzz sizes must be positive")

    # ------------------------------------------------------------------
    def rng(self) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((_FUZZ_DOMAIN, int(self.seed))))

    def name(self) -> str:
        return f"fuzz-{self.kind}-s{self.seed}"

    def build(self) -> AIG:
        """Materialise the AIG this spec describes (deterministic)."""
        builder = _BUILDERS[self.kind]
        return builder(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dict(asdict(self))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzSpec":
        known = {f: payload[f] for f in cls.__dataclass_fields__ if f in payload}
        return cls(**known)  # type: ignore[arg-type]


def random_aig(kind: str = "layered", seed: int = 0, **params: object) -> AIG:
    """Convenience wrapper: ``FuzzSpec(kind, seed, **params).build()``."""
    return FuzzSpec(kind=kind, seed=seed, **params).build()  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _pick_outputs(aig: AIG, rng: np.random.Generator,
                  candidates: List[Literal], num_outputs: int) -> None:
    """Register outputs over the candidate pool, newest signals first.

    The most recently created signals are always covered so the deep
    part of the graph stays observable (otherwise cleanup would drop
    exactly the structures the fuzz kinds exist to produce).
    """
    pool = [lit for lit in candidates if lit > 1]
    if not pool:
        pool = candidates[:]
    chosen: List[Literal] = []
    for literal in reversed(pool):
        if len(chosen) >= num_outputs:
            break
        if literal not in chosen:
            chosen.append(literal)
    while len(chosen) < num_outputs:
        chosen.append(pool[int(rng.integers(0, len(pool)))])
    for literal in chosen:
        aig.add_po(literal ^ int(rng.integers(0, 2)))


def _build_layered(spec: FuzzSpec) -> AIG:
    rng = spec.rng()
    aig = AIG(name=spec.name())
    layers: List[List[Literal]] = [
        [aig.add_pi(name=f"x{i}") for i in range(spec.num_inputs)]]
    num_layers = max(2, int(rng.integers(2, max(3, spec.num_gates // 6 + 2))))
    per_layer = max(1, spec.num_gates // num_layers)
    remaining = spec.num_gates
    while remaining > 0:
        width = min(remaining, per_layer)
        previous = layers[-1]
        earlier = [lit for layer in layers[:-1] for lit in layer]
        current: List[Literal] = []
        for _ in range(width):
            a = previous[int(rng.integers(0, len(previous)))]
            # Mostly local structure, with occasional long skip edges.
            if earlier and rng.random() < 0.25:
                b = earlier[int(rng.integers(0, len(earlier)))]
            else:
                b = previous[int(rng.integers(0, len(previous)))]
            a ^= int(rng.integers(0, 2))
            b ^= int(rng.integers(0, 2))
            current.append(aig.add_and(a, b))
        layers.append(current)
        remaining -= width
    candidates = [lit for layer in layers for lit in layer]
    _pick_outputs(aig, rng, candidates, spec.num_outputs)
    return aig


def _build_windowed(spec: FuzzSpec) -> AIG:
    rng = spec.rng()
    aig = AIG(name=spec.name())
    signals: List[Literal] = [aig.add_pi(name=f"x{i}")
                              for i in range(spec.num_inputs)]
    window = max(2, spec.fanin_window)

    def pick() -> Literal:
        # Power-law recency bias: u**skew concentrates near 0 (= newest).
        span = min(window, len(signals))
        offset = int(span * rng.random() ** spec.skew)
        offset = min(offset, span - 1)
        literal = signals[len(signals) - 1 - offset]
        return literal ^ int(rng.integers(0, 2))

    for _ in range(spec.num_gates):
        a = pick()
        b = pick()
        # Identical fanin variables collapse under structural hashing
        # (a & a = a, a & ~a = 0), which would shear off exactly the
        # deep chains this kind exists to build; redraw a few times.
        for _ in range(4):
            if (a >> 1) != (b >> 1):
                break
            b = pick()
        gate = aig.add_and(a, b)
        if gate > 1:  # constants would poison every downstream pick
            signals.append(gate)
    _pick_outputs(aig, rng, signals, spec.num_outputs)
    return aig


def _build_arith(spec: FuzzSpec) -> AIG:
    rng = spec.rng()
    aig = AIG(name=spec.name())
    inputs = [aig.add_pi(name=f"x{i}") for i in range(spec.num_inputs)]
    # Work over short bit-vectors sliced from the inputs; block outputs
    # join the pool so cones compose (adder feeding comparator feeding
    # mux — the carry/majority structure of the arithmetic suite).
    vector_width = max(2, min(6, spec.num_inputs))
    pool: List[List[Literal]] = []
    for start in range(0, spec.num_inputs, vector_width):
        chunk = inputs[start:start + vector_width]
        while len(chunk) < vector_width:
            chunk = chunk + [inputs[int(rng.integers(0, len(inputs)))]]
        pool.append(chunk)

    def vector() -> List[Literal]:
        base = pool[int(rng.integers(0, len(pool)))]
        if rng.random() < 0.3:  # occasional bit-rotated variant
            shift = int(rng.integers(1, vector_width))
            base = base[shift:] + base[:shift]
        return list(base)

    # Bounded attempts, not `while num_ands < target`: a degenerate pool
    # (e.g. a single input signal) constant-folds every block to existing
    # literals, and an unbounded loop would never terminate.
    for _ in range(8 * spec.num_gates + 16):
        if aig.num_ands >= spec.num_gates:
            break
        op = int(rng.integers(0, 4))
        a, b = vector(), vector()
        if op == 0:
            total, carry = ripple_carry_adder(aig, a, b)
            result = total[:-1] + [carry] if len(total) > 1 else total
        elif op == 1:
            difference, no_borrow = ripple_borrow_subtractor(aig, a, b)
            result = difference[:-1] + [no_borrow] if len(difference) > 1 \
                else difference
        elif op == 2:
            is_ge = comparator_greater_equal(aig, a, b)
            result = mux_vector(aig, is_ge, a, b)
        else:
            result = [aig.add_xor(x, y) for x, y in zip(a, b)]
            if rng.random() < 0.5:
                result[0] = lit_not(result[0])
        pool.append(result)
    candidates = [lit for vec in pool[len(pool) // 2:] for lit in vec]
    _pick_outputs(aig, rng, candidates or inputs, spec.num_outputs)
    return aig


_BUILDERS = {
    "layered": _build_layered,
    "windowed": _build_windowed,
    "arith": _build_arith,
}
