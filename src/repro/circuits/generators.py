"""Generators for the ten EPFL-style arithmetic benchmark circuits.

Each ``make_*`` function returns an :class:`repro.aig.AIG` implementing the
named arithmetic function at a configurable bit-width.  The functions mirror
the EPFL arithmetic suite used by the BOiLS paper: adder, barrel shifter,
divisor, hypotenuse, log2, max, multiplier, sine, square-root and square.
The default widths are reduced relative to the original suite (which uses
64–256-bit datapaths) so that the pure-Python synthesis stack can evaluate
full optimisation runs quickly; the structure — carry chains, partial
product arrays, shift/subtract iterations — is the same, which is what the
synthesis operations interact with.
"""

from __future__ import annotations

from typing import List

from repro.aig.graph import AIG, CONST0, CONST1, Literal, lit_not
from repro.circuits import blocks
from repro.circuits.blocks import (
    BitVector,
    array_multiplier,
    barrel_shifter_block,
    comparator_greater_equal,
    constant_vector,
    mux_vector,
    ripple_borrow_subtractor,
    ripple_carry_adder,
    shift_left_const,
    zero_extend,
)


def _input_vector(aig: AIG, prefix: str, width: int) -> BitVector:
    return [aig.add_pi(name=f"{prefix}{i}") for i in range(width)]


def _output_vector(aig: AIG, prefix: str, bits: BitVector) -> None:
    for i, bit in enumerate(bits):
        aig.add_po(bit, name=f"{prefix}{i}")


# ----------------------------------------------------------------------
# 1. Adder
# ----------------------------------------------------------------------
def make_adder(width: int = 16) -> AIG:
    """Ripple-carry adder of two ``width``-bit operands (EPFL ``adder``)."""
    aig = AIG(name=f"adder_{width}")
    a = _input_vector(aig, "a", width)
    b = _input_vector(aig, "b", width)
    total, carry = ripple_carry_adder(aig, a, b)
    _output_vector(aig, "s", total)
    aig.add_po(carry, name="cout")
    return aig


# ----------------------------------------------------------------------
# 2. Barrel shifter
# ----------------------------------------------------------------------
def make_barrel_shifter(width: int = 16) -> AIG:
    """Logarithmic barrel shifter (EPFL ``bar``): rotate ``width`` bits left."""
    if width < 2:
        raise ValueError("barrel shifter needs width >= 2")
    shift_bits = max(1, (width - 1).bit_length())
    aig = AIG(name=f"bar_{width}")
    data = _input_vector(aig, "d", width)
    shift = _input_vector(aig, "s", shift_bits)
    result = barrel_shifter_block(aig, data, shift, left=True, rotate=True)
    _output_vector(aig, "q", result)
    return aig


# ----------------------------------------------------------------------
# 3. Divisor
# ----------------------------------------------------------------------
def make_divisor(width: int = 8) -> AIG:
    """Restoring array divider (EPFL ``div``): quotient and remainder."""
    aig = AIG(name=f"div_{width}")
    dividend = _input_vector(aig, "n", width)
    divisor = _input_vector(aig, "d", width)

    remainder: BitVector = constant_vector(0, width)
    quotient: List[Literal] = [CONST0] * width
    # Classic restoring division: shift in dividend bits MSB-first, compare
    # the partial remainder with the divisor, subtract when possible.
    for step in range(width - 1, -1, -1):
        shifted = [dividend[step]] + remainder[:-1]
        difference, no_borrow = ripple_borrow_subtractor(aig, shifted, divisor)
        quotient[step] = no_borrow
        remainder = mux_vector(aig, no_borrow, difference, shifted)

    _output_vector(aig, "q", quotient)
    _output_vector(aig, "r", remainder)
    return aig


# ----------------------------------------------------------------------
# 4. Hypotenuse
# ----------------------------------------------------------------------
def make_hypotenuse(width: int = 6) -> AIG:
    """Hypotenuse unit (EPFL ``hyp``): ``floor(sqrt(a^2 + b^2))``."""
    aig = AIG(name=f"hyp_{width}")
    a = _input_vector(aig, "a", width)
    b = _input_vector(aig, "b", width)
    a_squared = array_multiplier(aig, a, a)
    b_squared = array_multiplier(aig, b, b)
    total, carry = ripple_carry_adder(aig, a_squared, b_squared)
    total = total + [carry]
    root = _integer_square_root(aig, total)
    _output_vector(aig, "h", root)
    return aig


# ----------------------------------------------------------------------
# 5. Log2
# ----------------------------------------------------------------------
def make_log2(width: int = 12, frac_bits: int = 4) -> AIG:
    """Fixed-point base-2 logarithm (EPFL ``log2``).

    Produces ``floor(log2(x))`` as the integer part plus ``frac_bits``
    fractional bits obtained by iterative squaring of the normalised
    mantissa — the standard shift-and-square digit-recurrence algorithm.
    """
    aig = AIG(name=f"log2_{width}")
    x = _input_vector(aig, "x", width)

    int_bits = max(1, (width - 1).bit_length())
    # Integer part: index of the most significant set bit (priority encoder).
    msb_index: BitVector = constant_vector(0, int_bits)
    found = CONST0
    for position in range(width - 1, -1, -1):
        is_here = aig.add_and(x[position], lit_not(found))
        found = aig.add_or(found, x[position])
        position_bits = constant_vector(position, int_bits)
        msb_index = mux_vector(aig, is_here, position_bits, msb_index)

    # Normalised mantissa: x shifted left so the MSB sits at the top bit.
    # Implemented with a barrel shifter driven by (width - 1 - msb_index).
    width_minus_one = constant_vector(width - 1, int_bits)
    shift_amount, _ = ripple_borrow_subtractor(aig, width_minus_one, msb_index)
    mantissa = barrel_shifter_block(aig, x, shift_amount, left=True, rotate=False)

    # Fractional bits by repeated squaring of the top mantissa bits.
    frac: List[Literal] = []
    current = mantissa[-max(4, frac_bits + 2):]  # keep a few guard bits
    for _ in range(frac_bits):
        squared = array_multiplier(aig, current, current)
        # If the square's top bit (>= 2.0 in fixed point) is set, the next
        # log digit is 1 and we renormalise by taking the upper half,
        # otherwise the digit is 0 and we drop one bit of headroom.
        top = squared[-1]
        frac.append(top)
        upper = squared[len(current):]
        lower = squared[len(current) - 1:-1]
        current = mux_vector(aig, top, upper, lower)

    _output_vector(aig, "int", msb_index)
    _output_vector(aig, "frac", list(reversed(frac)))
    aig.add_po(found, name="valid")
    return aig


# ----------------------------------------------------------------------
# 6. Max
# ----------------------------------------------------------------------
def make_max(width: int = 16, num_words: int = 4) -> AIG:
    """Maximum of ``num_words`` unsigned words (EPFL ``max``)."""
    aig = AIG(name=f"max_{width}x{num_words}")
    words = [_input_vector(aig, f"w{j}_", width) for j in range(num_words)]
    current = words[0]
    for candidate in words[1:]:
        is_ge = comparator_greater_equal(aig, current, candidate)
        current = mux_vector(aig, is_ge, current, candidate)
    _output_vector(aig, "m", current)
    return aig


# ----------------------------------------------------------------------
# 7. Multiplier
# ----------------------------------------------------------------------
def make_multiplier(width: int = 8) -> AIG:
    """Unsigned array multiplier (EPFL ``multiplier``)."""
    aig = AIG(name=f"mult_{width}")
    a = _input_vector(aig, "a", width)
    b = _input_vector(aig, "b", width)
    product = array_multiplier(aig, a, b)
    _output_vector(aig, "p", product)
    return aig


# ----------------------------------------------------------------------
# 8. Sine
# ----------------------------------------------------------------------
def make_sine(width: int = 8, iterations: int = 6) -> AIG:
    """CORDIC-style sine approximation (EPFL ``sin``).

    Performs ``iterations`` CORDIC rotation stages in fixed point: each
    stage conditionally adds or subtracts an arctangent constant from the
    residual angle and cross-couples shifted copies of the (x, y)
    accumulators.  The output is the y accumulator (proportional to
    ``sin(angle)``).
    """
    aig = AIG(name=f"sin_{width}")
    angle = _input_vector(aig, "a", width)

    acc_width = width + 2
    # Arctangent constants in fixed point (angle scaled so that the full
    # input range maps onto [0, pi/2)).
    import math

    scale = (1 << width) / (math.pi / 2)
    x_vec: BitVector = constant_vector(int(0.607252935 * (1 << width)), acc_width)
    y_vec: BitVector = constant_vector(0, acc_width)
    z_vec: BitVector = zero_extend(angle, acc_width)

    for i in range(iterations):
        angle_constant = int(round(math.atan(2.0 ** -i) * scale)) & ((1 << acc_width) - 1)
        const_vec = constant_vector(angle_constant, acc_width)
        # Rotation direction: sign of the residual angle (two's complement MSB).
        negative = z_vec[-1]
        # Arithmetic shifts: the y accumulator can transiently go negative
        # when the rotation overshoots near the top of the input range.
        x_shift = blocks.shift_right_arith_const(x_vec, i)
        y_shift = blocks.shift_right_arith_const(y_vec, i)

        x_plus, _ = ripple_carry_adder(aig, x_vec, y_shift)
        x_minus, _ = ripple_borrow_subtractor(aig, x_vec, y_shift)
        y_plus, _ = ripple_carry_adder(aig, y_vec, x_shift)
        y_minus, _ = ripple_borrow_subtractor(aig, y_vec, x_shift)
        z_plus, _ = ripple_carry_adder(aig, z_vec, const_vec)
        z_minus, _ = ripple_borrow_subtractor(aig, z_vec, const_vec)

        # If the residual angle is negative rotate clockwise, else
        # counter-clockwise.
        x_vec = mux_vector(aig, negative, x_plus, x_minus)
        y_vec = mux_vector(aig, negative, y_minus, y_plus)
        z_vec = mux_vector(aig, negative, z_plus, z_minus)

    _output_vector(aig, "sin", y_vec[:width])
    return aig


# ----------------------------------------------------------------------
# 9. Square root
# ----------------------------------------------------------------------
def _integer_square_root(aig: AIG, value: BitVector) -> BitVector:
    """Digit-recurrence (restoring) integer square root of a bit vector."""
    in_width = len(value)
    out_width = (in_width + 1) // 2
    root: BitVector = constant_vector(0, out_width)
    # Remainder needs room for the radicand plus the trial subtrahend.
    rem_width = in_width + 2
    remainder: BitVector = constant_vector(0, rem_width)

    for step in range(out_width - 1, -1, -1):
        # Shift in the next two radicand bits (MSB first).
        bit_high = value[2 * step + 1] if 2 * step + 1 < in_width else CONST0
        bit_low = value[2 * step]
        remainder = [bit_low, bit_high] + remainder[:-2]
        # Trial subtrahend: (root << 2) | 1, aligned in remainder width.
        trial = shift_left_const(root, 2, rem_width)
        trial[0] = CONST1
        difference, no_borrow = ripple_borrow_subtractor(aig, remainder, trial)
        remainder = mux_vector(aig, no_borrow, difference, remainder)
        root = shift_left_const(root, 1, out_width)
        root[0] = no_borrow
    return root


def make_square_root(width: int = 10) -> AIG:
    """Restoring integer square root (EPFL ``sqrt``)."""
    aig = AIG(name=f"sqrt_{width}")
    x = _input_vector(aig, "x", width)
    root = _integer_square_root(aig, x)
    _output_vector(aig, "r", root)
    return aig


# ----------------------------------------------------------------------
# 10. Square
# ----------------------------------------------------------------------
def make_square(width: int = 8) -> AIG:
    """Squarer (EPFL ``square``): ``x * x`` via the partial-product array."""
    aig = AIG(name=f"square_{width}")
    x = _input_vector(aig, "x", width)
    product = array_multiplier(aig, x, x)
    _output_vector(aig, "p", product)
    return aig
