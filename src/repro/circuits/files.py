"""File-backed circuits: any on-disk AIGER/BLIF/bench file as a circuit.

A file circuit is addressed by the name ``file:<path>`` (a bare path
ending in a recognised suffix also works) anywhere a registered circuit
name is accepted — :class:`repro.api.Problem`, campaigns, the CLI.
:func:`repro.circuits.registry.get_circuit_spec` routes such names here,
where they resolve to a :class:`FileCircuitSpec`: a
:class:`~repro.circuits.registry.CircuitSpec` whose generator loads the
file (the width argument is ignored; file circuits have no width knob —
their resolved width is pinned to 0).

Every spec carries the file's SHA-256 content hash.  The hash travels
inside :class:`repro.engine.spec.EvaluatorSpec` across the process-pool
pipe, where workers verify it before building an evaluator, and it keys
the persistent QoR cache — so cache entries stay valid when the file
moves and are invalidated the moment its content changes.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.aig.graph import AIG
from repro.circuits.registry import CircuitSpec

#: Prefix marking a circuit name as file-backed.
FILE_PREFIX = "file:"

#: Recognised suffix -> format key.
CIRCUIT_SUFFIXES = {
    ".aag": "aiger-ascii",
    ".aig": "aiger-binary",
    ".blif": "blif",
    ".bench": "bench",
}


class CircuitFileError(ValueError):
    """Raised when a circuit file cannot be resolved, read or verified."""


def _loader(format_key: str) -> Callable[[Path], AIG]:
    # Imported lazily so pulling in repro.circuits does not drag every
    # parser module along.
    if format_key in ("aiger-ascii", "aiger-binary"):
        from repro.aig.aiger import read_aiger
        return read_aiger
    if format_key == "blif":
        from repro.aig.blif import read_blif
        return read_blif
    if format_key == "bench":
        from repro.aig.bench import read_bench
        return read_bench
    raise CircuitFileError(f"unknown circuit file format {format_key!r}")


def file_format_for(path: Union[str, Path]) -> str:
    """Format key for a circuit file path, by suffix."""
    suffix = Path(path).suffix.lower()
    try:
        return CIRCUIT_SUFFIXES[suffix]
    except KeyError:
        raise CircuitFileError(
            f"unrecognised circuit file suffix {suffix!r} for {path}; "
            f"supported: {', '.join(sorted(CIRCUIT_SUFFIXES))}") from None


def is_file_circuit_name(name: str) -> bool:
    """``True`` when ``name`` addresses an on-disk circuit file."""
    candidate = name.strip()
    if candidate.startswith(FILE_PREFIX):
        return True
    return (Path(candidate).suffix.lower() in CIRCUIT_SUFFIXES
            and ("/" in candidate or Path(candidate).exists()))


def file_circuit_path(name: str) -> Path:
    """Resolved absolute path of a file-circuit name."""
    candidate = name.strip()
    if candidate.startswith(FILE_PREFIX):
        candidate = candidate[len(FILE_PREFIX):]
    return Path(candidate).expanduser().resolve()


def hash_circuit_file(path: Union[str, Path]) -> str:
    """SHA-256 hex digest of a circuit file's raw bytes."""
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()
    except OSError as error:
        raise CircuitFileError(f"cannot read circuit file {path}: {error}") from None


def load_circuit_file(
    path: Union[str, Path],
    expected_hash: Optional[str] = None,
) -> AIG:
    """Load a circuit file, optionally verifying its content hash.

    A hash mismatch means the file changed since the spec referencing it
    was built (e.g. between a run and its resume) — silently continuing
    would mix results from two different circuits, so it is an error.
    """
    path = Path(path)
    if not path.is_file():
        raise CircuitFileError(f"circuit file {path} does not exist")
    if expected_hash is not None:
        actual = hash_circuit_file(path)
        if actual != expected_hash:
            raise CircuitFileError(
                f"circuit file {path} changed on disk: content hash "
                f"{actual[:12]}… does not match the expected "
                f"{expected_hash[:12]}…")
    try:
        return _loader(file_format_for(path))(path)
    except CircuitFileError:
        raise
    except ValueError as error:
        raise CircuitFileError(f"cannot parse circuit file {path}: {error}") from None


_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def slugify(stem: str) -> str:
    """Filename/cell-id-safe slug of an arbitrary circuit name stem."""
    slug = _UNSAFE.sub("-", stem).strip("-.")
    return slug or "circuit"


def file_slug(stem: str, content_hash: str) -> str:
    """The canonical cell-id slug of a file circuit: stem + hash prefix.

    Relocation-stable (the path is not part of it) and content-bound.
    One definition shared by :attr:`FileCircuitSpec.slug` and
    :attr:`repro.api.Problem.key` so cell ids never diverge.
    """
    return f"{slugify(stem)}-{content_hash[:8]}"


@dataclass(frozen=True)
class _FileLoader:
    """Picklable generator for a file circuit: path + pinned hash."""

    path: str
    content_hash: str

    def __call__(self, width: int = 0) -> AIG:
        return load_circuit_file(self.path, expected_hash=self.content_hash)


@dataclass(frozen=True)
class FileCircuitSpec(CircuitSpec):
    """A :class:`CircuitSpec` backed by an on-disk circuit file."""

    path: str = ""
    format: str = ""
    content_hash: str = ""

    @property
    def file_backed(self) -> bool:
        return True

    @property
    def slug(self) -> str:
        """Relocation-stable short identifier: stem + content-hash prefix.

        Used where the circuit "name" becomes part of a filename or cell
        id — the absolute path in :attr:`name` is neither safe nor
        stable for that.
        """
        return file_slug(Path(self.path).stem, self.content_hash)


# ----------------------------------------------------------------------
# Spec cache: keyed by (path, mtime_ns, size) so an unchanged file is
# hashed once, while edits are picked up automatically.
# ----------------------------------------------------------------------
_SPEC_CACHE: Dict[Tuple[str, int, int], FileCircuitSpec] = {}


def file_circuit_spec(name: str) -> FileCircuitSpec:
    """Resolve a file-circuit name to its :class:`FileCircuitSpec`."""
    path = file_circuit_path(name)
    if not path.is_file():
        raise CircuitFileError(f"circuit file {path} does not exist")
    stat = path.stat()
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    spec = _SPEC_CACHE.get(key)
    if spec is None:
        content_hash = hash_circuit_file(path)
        spec = FileCircuitSpec(
            name=f"{FILE_PREFIX}{path}",
            display_name=path.stem,
            generator=_FileLoader(str(path), content_hash),
            default_width=0,
            paper_width=0,
            large=False,
            path=str(path),
            format=file_format_for(path),
            content_hash=content_hash,
        )
        _SPEC_CACHE[key] = spec
    return spec
