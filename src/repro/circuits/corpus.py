"""Circuit corpora: manifest-bearing directories of benchmark files.

A *corpus* is a plain directory of circuit files (any mix of AIGER,
BLIF and ``.bench``) plus a ``corpus.json`` manifest recording, for
every entry, its file, format, SHA-256 content hash, circuit statistics
and provenance (generated from a :class:`~repro.circuits.fuzz.FuzzSpec`
or imported from an external file).  Corpora turn the circuit axis of a
campaign into an unbounded, reproducible workload space:

* :func:`build_corpus` materialises N seeded random circuits (mixed
  generator kinds and file formats) deterministically from one seed;
* :func:`import_circuit` copies an external benchmark file in, after
  validating that it parses;
* :func:`corpus_problems` expands a corpus into
  :class:`repro.api.Problem` instances (every entry becomes a
  file-backed circuit), which is what ``repro run --corpus`` and
  :meth:`repro.api.Campaign.from_corpus` build on.

Entries are verified against their recorded content hash when a corpus
is expanded into problems — a corpus directory is a statement about
*exact* circuits, not just file names.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.aig.graph import AIG
from repro.circuits.fuzz import FUZZ_KINDS, FuzzSpec
from repro.circuits.files import (
    CIRCUIT_SUFFIXES,
    FILE_PREFIX,
    CircuitFileError,
    file_format_for,
    hash_circuit_file,
    load_circuit_file,
    slugify,
)

#: Manifest filename inside a corpus directory.
MANIFEST_NAME = "corpus.json"

#: Manifest schema version, bumped on incompatible layout changes.
CORPUS_FORMAT_VERSION = 1

#: Format key -> file suffix used when materialising generated circuits;
#: derived from the loader-side table so the two can never diverge.
FORMAT_SUFFIXES = {format_key: suffix
                   for suffix, format_key in CIRCUIT_SUFFIXES.items()}


class CorpusError(ValueError):
    """Raised when a corpus directory or manifest is invalid."""


@dataclass(frozen=True)
class CorpusEntry:
    """One circuit of a corpus: file, identity and provenance."""

    name: str
    file: str  # path relative to the corpus root
    format: str
    sha256: str
    stats: Dict[str, int] = field(default_factory=dict)
    source: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "file": self.file,
            "format": self.format,
            "sha256": self.sha256,
            "stats": dict(self.stats),
            "source": dict(self.source),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CorpusEntry":
        return cls(
            name=str(payload["name"]),
            file=str(payload["file"]),
            format=str(payload.get("format", "")),
            sha256=str(payload.get("sha256", "")),
            stats={str(k): int(v) for k, v in dict(payload.get("stats", {})).items()},  # type: ignore[arg-type]
            source=dict(payload.get("source", {})),  # type: ignore[arg-type]
        )


@dataclass
class CorpusManifest:
    """The parsed ``corpus.json`` of a corpus directory."""

    root: Path
    seed: Optional[int] = None
    entries: List[CorpusEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def entry(self, name: str) -> CorpusEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise CorpusError(
            f"corpus {self.root} has no entry {name!r}; available: "
            f"{[e.name for e in self.entries]}")

    def entry_path(self, entry: CorpusEntry) -> Path:
        return self.root / entry.file

    def circuit_name(self, entry: CorpusEntry) -> str:
        """The ``file:<path>`` circuit name of an entry."""
        return f"{FILE_PREFIX}{self.entry_path(entry).resolve()}"

    def verify_entry(self, entry: CorpusEntry) -> None:
        """Check the entry's file exists and matches its recorded hash."""
        path = self.entry_path(entry)
        if not path.is_file():
            raise CorpusError(f"corpus entry {entry.name!r}: missing file {path}")
        actual = hash_circuit_file(path)
        if entry.sha256 and actual != entry.sha256:
            raise CorpusError(
                f"corpus entry {entry.name!r}: {path} changed on disk "
                f"(hash {actual[:12]}… != recorded {entry.sha256[:12]}…)")

    # ------------------------------------------------------------------
    def save(self) -> Path:
        payload = {
            "format_version": CORPUS_FORMAT_VERSION,
            "seed": self.seed,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path = self.root / MANIFEST_NAME
        # Atomic replace: a kill mid-save must leave the previous
        # manifest intact, never a torn one.
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=str(self.root),
            prefix=f".{MANIFEST_NAME}.", delete=False)
        try:
            with handle:
                handle.write(json.dumps(payload, indent=2, allow_nan=False) + "\n")
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load_or_create(cls, root: Union[str, Path],
                       seed: Optional[int] = None) -> "CorpusManifest":
        """Load an existing manifest, or start a fresh one.

        Only a *missing* ``corpus.json`` yields a fresh manifest; a
        malformed or newer-format one propagates its error — silently
        replacing it would orphan every previously recorded entry.
        """
        root = Path(root)
        if (root / MANIFEST_NAME).is_file():
            return cls.load(root)
        return cls(root=root, seed=seed)

    @classmethod
    def load(cls, root: Union[str, Path]) -> "CorpusManifest":
        root = Path(root)
        path = root / MANIFEST_NAME
        if not path.is_file():
            raise CorpusError(
                f"{root} is not a corpus directory (no {MANIFEST_NAME}); "
                "create one with `repro corpus build` or `repro circuits "
                "import`")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise CorpusError(f"malformed {path}: {error}") from None
        version = int(payload.get("format_version", CORPUS_FORMAT_VERSION))
        if version > CORPUS_FORMAT_VERSION:
            raise CorpusError(
                f"corpus format version {version} is newer than this repro "
                f"build supports ({CORPUS_FORMAT_VERSION})")
        seed = payload.get("seed")
        return cls(
            root=root,
            seed=int(seed) if seed is not None else None,
            entries=[CorpusEntry.from_dict(entry)
                     for entry in payload.get("entries", [])],
        )


def _unique_name(base: str, taken: set, root: Optional[Path] = None,
                 file_suffix: str = "") -> str:
    """A fresh entry name: unused in the manifest *and* on disk.

    The filesystem check matters because a corpus directory may hold
    hand-placed, not-yet-imported circuit files — generating or
    importing over one of those would silently destroy it.
    """
    name = base
    counter = 1
    while (name in taken
           or (root is not None and (root / f"{name}{file_suffix}").exists())):
        counter += 1
        name = f"{base}-{counter}"
    taken.add(name)
    return name


def _write_circuit(aig: AIG, path: Path, format_key: str) -> None:
    if format_key == "aiger-ascii":
        from repro.aig.aiger import write_aiger_string
        path.write_text(write_aiger_string(aig, binary=False), encoding="ascii")
    elif format_key == "aiger-binary":
        from repro.aig.aiger import write_aiger_string
        path.write_bytes(write_aiger_string(aig, binary=True))  # type: ignore[arg-type]
    elif format_key == "blif":
        from repro.aig.blif import write_blif
        write_blif(aig, path)
    elif format_key == "bench":
        from repro.aig.bench import write_bench
        write_bench(aig, path)
    else:
        raise CorpusError(f"unknown corpus file format {format_key!r}")


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
def build_corpus(
    root: Union[str, Path],
    count: int = 12,
    seed: int = 0,
    kinds: Sequence[str] = FUZZ_KINDS,
    formats: Sequence[str] = ("aiger-ascii", "blif", "bench"),
    num_inputs: Tuple[int, int] = (5, 10),
    num_gates: Tuple[int, int] = (24, 96),
    num_outputs: Tuple[int, int] = (2, 6),
) -> CorpusManifest:
    """Materialise ``count`` seeded random circuits into a corpus.

    Deterministic in its arguments: the same call always produces the
    same files byte-for-byte (entry ``i`` uses the derived instance seed
    from ``SeedSequence((seed, i))``, cycling through ``kinds`` and
    ``formats``).  The directory may already hold a corpus — new entries
    are appended under fresh names, so a corpus can be grown
    incrementally or mixed with imported files.
    """
    if count < 1:
        raise CorpusError("corpus build count must be positive")
    kinds = tuple(kinds) or FUZZ_KINDS
    formats = tuple(formats) or ("aiger-ascii",)
    for kind in kinds:
        if kind not in FUZZ_KINDS:
            raise CorpusError(
                f"unknown generator kind {kind!r}; expected one of {FUZZ_KINDS}")
    for format_key in formats:
        if format_key not in FORMAT_SUFFIXES:
            raise CorpusError(
                f"unknown circuit format {format_key!r}; expected one of "
                f"{sorted(FORMAT_SUFFIXES)}")

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest = CorpusManifest.load_or_create(root, seed=seed)
    taken = {entry.name for entry in manifest.entries}

    for index in range(count):
        rng = np.random.default_rng(np.random.SeedSequence((int(seed), index)))
        instance_seed = int(rng.integers(0, 2 ** 31))
        kind = kinds[index % len(kinds)]
        format_key = formats[index % len(formats)]
        spec = FuzzSpec(
            kind=kind,
            seed=instance_seed,
            num_inputs=int(rng.integers(num_inputs[0], num_inputs[1] + 1)),
            num_gates=int(rng.integers(num_gates[0], num_gates[1] + 1)),
            num_outputs=int(rng.integers(num_outputs[0], num_outputs[1] + 1)),
        )
        # Writers serialise the cleaned (reachable-only) graph; record
        # the stats of what actually lands in the file.
        aig = spec.build().cleanup()
        name = _unique_name(f"{kind}-{seed:03d}-{index:03d}", taken,
                            root, FORMAT_SUFFIXES[format_key])
        filename = f"{name}{FORMAT_SUFFIXES[format_key]}"
        _write_circuit(aig, root / filename, format_key)
        manifest.entries.append(CorpusEntry(
            name=name,
            file=filename,
            format=format_key,
            sha256=hash_circuit_file(root / filename),
            stats=aig.stats(),
            source={"kind": kind, "fuzz": spec.to_dict()},
        ))
    manifest.save()
    return manifest


def import_circuit(
    root: Union[str, Path],
    source_path: Union[str, Path],
    name: Optional[str] = None,
) -> CorpusEntry:
    """Copy an external circuit file into a corpus (validating it parses).

    The file is parsed before anything is copied, so a corpus never
    accumulates entries that cannot actually be loaded.  Returns the new
    manifest entry.
    """
    source_path = Path(source_path)
    aig = load_circuit_file(source_path)  # raises CircuitFileError if bad
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest = CorpusManifest.load_or_create(root)
    taken = {entry.name for entry in manifest.entries}
    file_suffix = source_path.suffix.lower()
    base_name = slugify(name or source_path.stem)
    if source_path.resolve().parent == root.resolve():
        # Importing a file already inside the corpus directory: adopt it
        # in place rather than treating its own name as a collision.
        entry_name = base_name
        if entry_name in taken:
            entry_name = _unique_name(base_name, taken, root, file_suffix)
        else:
            taken.add(entry_name)
    else:
        entry_name = _unique_name(base_name, taken, root, file_suffix)
    filename = f"{entry_name}{file_suffix}"
    destination = root / filename
    if source_path.resolve() != destination.resolve():
        shutil.copyfile(source_path, destination)
    entry = CorpusEntry(
        name=entry_name,
        file=filename,
        format=file_format_for(destination),
        sha256=hash_circuit_file(destination),
        stats=aig.stats(),
        source={"kind": "imported", "original": str(source_path.resolve())},
    )
    manifest.entries.append(entry)
    manifest.save()
    return entry


# ----------------------------------------------------------------------
# Batch verification
# ----------------------------------------------------------------------
def verify_corpus(
    root: Union[str, Path],
    names: Optional[Sequence[str]] = None,
) -> List[Tuple[CorpusEntry, Optional[str]]]:
    """Re-check every entry of a corpus manifest against disk.

    For each entry (or each selected ``names``) the file's existence and
    content hash are verified, the circuit is re-parsed, and its
    structural stats are compared against the manifest's recorded stats.
    Returns ``(entry, problem)`` pairs where ``problem`` is ``None`` for
    a clean entry or a one-line description of the mismatch — no
    campaign expansion, no evaluator construction, just the integrity
    sweep behind ``repro corpus verify``.
    """
    manifest = CorpusManifest.load(root)
    if not manifest.entries:
        raise CorpusError(f"corpus {manifest.root} has no entries")
    selected = (manifest.entries if names is None
                else [manifest.entry(name) for name in names])
    results: List[Tuple[CorpusEntry, Optional[str]]] = []
    for entry in selected:
        problem: Optional[str] = None
        try:
            manifest.verify_entry(entry)
            aig = load_circuit_file(manifest.entry_path(entry))
        except (CorpusError, CircuitFileError) as error:
            problem = str(error)
        else:
            if entry.stats:
                actual = aig.stats()
                mismatched = {
                    key: (recorded, actual.get(key))
                    for key, recorded in entry.stats.items()
                    if key in actual and int(actual[key]) != int(recorded)
                }
                if mismatched:
                    problem = (f"stats mismatch: " + ", ".join(
                        f"{key} {got} != recorded {want}"
                        for key, (want, got) in sorted(mismatched.items())))
        results.append((entry, problem))
    return results


# ----------------------------------------------------------------------
# Expansion into problems
# ----------------------------------------------------------------------
def corpus_problems(
    root: Union[str, Path],
    names: Optional[Sequence[str]] = None,
    lut_size: int = 6,
    sequence_length: int = 20,
    objective: object = "eq1",
    verify: bool = True,
    backend: object = "native",
):
    """Expand a corpus into :class:`repro.api.Problem` instances.

    One problem per entry (or per selected ``names``), each named after
    its manifest entry so cell ids stay short and human-readable.  With
    ``verify`` (the default) every entry's file is checked against the
    recorded content hash first.
    """
    # Imported lazily: repro.api imports repro.circuits at module level.
    from repro.api.problem import Problem

    manifest = CorpusManifest.load(root)
    if not manifest.entries:
        raise CorpusError(f"corpus {manifest.root} has no entries")
    selected = (manifest.entries if names is None
                else [manifest.entry(name) for name in names])
    problems = []
    for entry in selected:
        if verify:
            manifest.verify_entry(entry)
        problems.append(Problem(
            circuit=manifest.circuit_name(entry),
            lut_size=lut_size,
            sequence_length=sequence_length,
            objective=objective,
            name=entry.name,
            # Pin the *manifest's* hash, not a fresh re-read from disk:
            # the corpus is a statement about exact circuits, and this
            # closes the verify-then-rehash window (and saves a hash).
            circuit_hash=entry.sha256 or None,
            backend=backend,
        ))
    return tuple(problems)
