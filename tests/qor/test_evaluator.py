"""Tests for the QoR evaluator (Equation 1)."""

import pytest

from repro.circuits import make_adder
from repro.qor import QoREvaluator
from repro.synth.flows import RESYN2_SEQUENCE


class TestReference:
    def test_reference_qor_is_two(self, adder_evaluator):
        assert adder_evaluator.reference_qor == pytest.approx(2.0)

    def test_reference_sequence_defaults_to_resyn2(self, adder_evaluator):
        assert list(adder_evaluator.reference_sequence) == RESYN2_SEQUENCE

    def test_resyn2_itself_scores_qor_two(self, adder_evaluator):
        record = adder_evaluator.evaluate(RESYN2_SEQUENCE)
        assert record.qor == pytest.approx(2.0)
        assert record.qor_improvement == pytest.approx(0.0)

    def test_custom_reference(self, small_adder):
        evaluator = QoREvaluator(small_adder, reference_sequence=["balance"])
        record = evaluator.evaluate(["balance"])
        assert record.qor == pytest.approx(2.0)

    def test_initial_result_recorded(self, adder_evaluator):
        assert adder_evaluator.initial_result.area > 0
        assert adder_evaluator.initial_result.delay > 0


class TestEvaluation:
    def test_qor_formula(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        record = evaluator.evaluate(["rewrite", "balance"])
        expected = (record.area / evaluator.reference_area
                    + record.delay / evaluator.reference_delay)
        assert record.qor == pytest.approx(expected)

    def test_improvement_formula(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        record = evaluator.evaluate(["rewrite"])
        expected = (2.0 - record.qor) / 2.0 * 100.0
        assert record.qor_improvement == pytest.approx(expected)

    def test_accepts_indices_and_mnemonics(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        by_name = evaluator.evaluate(["balance"])
        by_index = evaluator.evaluate([6])
        by_mnemonic = evaluator.evaluate(["Bl"])
        assert by_name.qor == by_index.qor == by_mnemonic.qor

    def test_empty_sequence_evaluates_initial_circuit(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        record = evaluator.evaluate([])
        assert record.area == evaluator.initial_result.area
        assert record.delay == evaluator.initial_result.delay


class TestCachingAndHistory:
    def test_cache_hits_do_not_count(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        evaluator.evaluate(["balance", "rewrite"])
        count = evaluator.num_evaluations
        evaluator.evaluate(["balance", "rewrite"])
        assert evaluator.num_evaluations == count

    def test_cache_disabled(self, small_adder):
        evaluator = QoREvaluator(small_adder, cache=False)
        evaluator.evaluate(["balance"])
        evaluator.evaluate(["balance"])
        assert evaluator.num_evaluations == 2

    def test_history_and_best(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        evaluator.evaluate(["balance"])
        evaluator.evaluate(["rewrite", "refactor"])
        best = evaluator.best_so_far()
        assert best is not None
        assert best.qor == min(r.qor for r in evaluator.history)

    def test_best_trajectory_monotone(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        for seq in (["balance"], ["rewrite"], ["fraig"], ["dsdb", "rewrite"]):
            evaluator.evaluate(seq)
        trajectory = evaluator.best_trajectory()
        assert all(b >= a for a, b in zip(trajectory, trajectory[1:]))
        assert len(trajectory) == 4

    def test_reset_history_keeps_cache(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        evaluator.evaluate(["balance"])
        evaluator.reset_history()
        assert evaluator.num_evaluations == 0
        assert evaluator.history == []
        # Cached: re-evaluating does not bump the counter.
        evaluator.evaluate(["balance"])
        assert evaluator.num_evaluations == 0

    def test_best_so_far_empty(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        assert evaluator.best_so_far() is None

    def test_negative_qor_helper(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        assert evaluator.negative_qor(["balance"]) == pytest.approx(
            -evaluator.qor(["balance"])
        )


class TestDeferredPersistentWrites:
    """Batched persistent-cache commits (used by the grid runner)."""

    @pytest.fixture()
    def cache(self, tmp_path):
        from repro.engine.cache import PersistentQoRCache

        with PersistentQoRCache(tmp_path) as cache:
            yield cache

    def test_flush_commits_in_one_batch(self, small_adder, cache):
        evaluator = QoREvaluator(small_adder, persistent_cache=cache)
        evaluator.defer_persistent_writes(True)
        evaluator.evaluate(["balance"])
        evaluator.evaluate(["rewrite"])
        evaluator.evaluate(["balance"])  # memo hit: not re-buffered
        assert len(cache) == 0
        assert evaluator.num_pending_persistent_writes == 2
        assert evaluator.flush_persistent_writes() == 2
        assert len(cache) == 2
        assert evaluator.num_pending_persistent_writes == 0

    def test_deferred_matches_eager_accounting(self, small_adder, tmp_path):
        from repro.engine.cache import PersistentQoRCache

        counters = {}
        for mode in ("eager", "deferred"):
            with PersistentQoRCache(tmp_path / mode) as cache:
                evaluator = QoREvaluator(small_adder, persistent_cache=cache)
                evaluator.defer_persistent_writes(mode == "deferred")
                for seq in (["balance"], ["rewrite"], ["balance"]):
                    evaluator.evaluate(seq)
                evaluator.flush_persistent_writes()
                counters[mode] = (evaluator.num_evaluations,
                                  evaluator.num_computed,
                                  evaluator.num_persistent_hits,
                                  len(cache))
        assert counters["eager"] == counters["deferred"]

    def test_pending_rows_served_as_persistent_hits(self, small_adder, cache):
        evaluator = QoREvaluator(small_adder, persistent_cache=cache)
        evaluator.defer_persistent_writes(True)
        evaluator.evaluate(["balance"])
        evaluator.reset_history(clear_cache=True)
        # The memo is gone and the row is not yet committed; the pending
        # buffer must serve it with persistent-hit accounting.
        evaluator.evaluate(["balance"])
        assert evaluator.num_persistent_hits == 1
        assert evaluator.num_computed == 0

    def test_disabling_deferral_flushes(self, small_adder, cache):
        evaluator = QoREvaluator(small_adder, persistent_cache=cache)
        evaluator.defer_persistent_writes(True)
        evaluator.evaluate(["fraig"])
        evaluator.defer_persistent_writes(False)
        assert len(cache) == 1
        evaluator.evaluate(["dsdb"])  # eager again
        assert len(cache) == 2

    def test_flush_without_persistent_cache_reports_zero(self, small_adder):
        """Regression: no cache attached => nothing buffered, flush == 0.

        ``flush_persistent_writes()`` used to report the buffered row
        count even with ``persistent_cache=None`` — rows that were never
        (and could never be) written.  Deferral must be a no-op without a
        cache and the flush must report 0 rows.
        """
        evaluator = QoREvaluator(small_adder)  # no persistent cache
        evaluator.defer_persistent_writes(True)
        evaluator.evaluate(["balance"])
        evaluator.evaluate(["rewrite"])
        assert evaluator.num_pending_persistent_writes == 0
        assert evaluator.flush_persistent_writes() == 0
        # Accounting is unaffected: both evaluations were computed.
        assert evaluator.num_evaluations == 2
        assert evaluator.num_computed == 2


class TestTransportedStatsValidation:
    """Hand-off pairs (reference_stats/initial_stats) are validated."""

    def test_valid_hand_off_is_bit_identical(self, small_adder):
        cold = QoREvaluator(small_adder)
        warm = QoREvaluator(
            small_adder,
            reference_stats=(cold.reference_area, cold.reference_delay),
            initial_stats=(cold.initial_result.area,
                           cold.initial_result.delay),
        )
        assert warm.reference_area == cold.reference_area
        assert warm.reference_delay == cold.reference_delay
        assert warm.initial_result == cold.initial_result
        assert (warm.evaluate(["rewrite", "balance"])
                == cold.evaluate(["rewrite", "balance"]))

    @pytest.mark.parametrize("field", ["reference_stats", "initial_stats"])
    def test_negative_values_rejected(self, small_adder, field):
        with pytest.raises(ValueError, match="non-negative"):
            QoREvaluator(small_adder, **{field: (7, -2)})

    @pytest.mark.parametrize("field", ["reference_stats", "initial_stats"])
    def test_non_integer_values_rejected(self, small_adder, field):
        with pytest.raises(ValueError, match="integer"):
            QoREvaluator(small_adder, **{field: (7.5, 2)})

    @pytest.mark.parametrize("field", ["reference_stats", "initial_stats"])
    def test_non_numeric_values_rejected(self, small_adder, field):
        with pytest.raises(ValueError, match="integer"):
            QoREvaluator(small_adder, **{field: ("7", "2")})

    @pytest.mark.parametrize("bad", [(7,), (7, 2, 9), "xy", 12])
    def test_wrong_shape_rejected(self, small_adder, bad):
        with pytest.raises(ValueError):
            QoREvaluator(small_adder, reference_stats=bad)

    def test_reference_clamped_to_at_least_one(self, small_adder):
        # Zero denominators would make Equation 1 blow up; the reference
        # pair is clamped ≥ 1 exactly like the measured path.
        evaluator = QoREvaluator(small_adder, reference_stats=(0, 0))
        assert evaluator.reference_area == 1
        assert evaluator.reference_delay == 1

    def test_initial_zero_is_allowed(self, small_adder):
        # The initial pair is only reported, never a denominator; a
        # constant-only circuit legitimately maps to zero LUTs.
        evaluator = QoREvaluator(small_adder, initial_stats=(0, 0))
        assert evaluator.initial_result.area == 0
        assert evaluator.initial_result.delay == 0

    def test_integer_valued_floats_accepted(self, small_adder):
        cold = QoREvaluator(small_adder)
        warm = QoREvaluator(
            small_adder,
            reference_stats=(float(cold.reference_area),
                             float(cold.reference_delay)),
        )
        assert warm.reference_area == cold.reference_area
        assert isinstance(warm.reference_area, int)
